"""Legacy setup shim: enables `pip install -e .` on environments without
the `wheel` package (offline build environments)."""

from setuptools import setup

setup()
