"""CI smoke run for the population layer.

Simulates a 200-client heterogeneous fleet twice — serially and with
``jobs=4`` — and fails unless the two runs are byte-identical:

* the overall and per-segment aggregate snapshots;
* the population metrics snapshots;
* the population manifests, compared as canonical JSON after
  ``strip_wall_clock`` removes the only fields allowed to differ.

Also interrupts the fleet (journals the first half of the clients),
then resumes from the checkpoint under ``jobs=4`` and verifies the
resumed rollup matches the uninterrupted one exactly.  Leaves both
manifests in the artifact directory.

Usage::

    PYTHONPATH=src python scripts/population_smoke.py --out population-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.exec import SerialExecutor, SweepCheckpoint
from repro.experiments.config import ExperimentConfig
from repro.obs.manifest import strip_wall_clock
from repro.obs.metrics import MetricsRegistry
from repro.population import (
    Choice,
    PopulationSpec,
    SegmentSpec,
    Uniform,
    UniformInt,
    expand,
    run_population,
)

JOBS = 4
CLIENTS = 200


def smoke_spec() -> PopulationSpec:
    """A 200-client heterogeneous fleet over the reduced smoke database."""
    base = ExperimentConfig(
        disk_sizes=(50, 200, 250),
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=400,
        seed=7,
    )
    return PopulationSpec(
        name="population-smoke",
        base=base,
        seed=13,
        segments=(
            SegmentSpec(
                "mixed-caches", 100,
                cache_size=UniformInt(10, 80),
                policy=Choice(("LRU", "LIX")),
            ),
            SegmentSpec(
                "noisy", 60,
                noise=Uniform(0.0, 0.45),
                offset=UniformInt(0, 50),
            ),
            SegmentSpec(
                "drifting", 40,
                drift_rotations=Uniform(0.0, 2.0),
                think_time=Uniform(0.5, 4.0),
            ),
        ),
    )


def canonical(path: Path) -> str:
    document = json.loads(path.read_text())
    return json.dumps(strip_wall_clock(document), sort_keys=True, indent=2)


def snapshots(result) -> str:
    blocks = {"overall": result.overall.snapshot()}
    for name, aggregate in result.segments.items():
        blocks[name] = aggregate.snapshot()
    return json.dumps(strip_wall_clock(blocks), sort_keys=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="population-artifacts",
        help="artifact directory (default: population-artifacts)",
    )
    parser.add_argument(
        "--jobs", type=int, default=JOBS,
        help=f"worker count for the parallel arm (default: {JOBS})",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    spec = smoke_spec()
    assert spec.num_clients == CLIENTS
    serial_manifest = out / "population-serial.json"
    parallel_manifest = out / "population-parallel.json"

    print(f"== serial fleet ({spec.num_clients} clients) ==")
    serial_metrics = MetricsRegistry()
    serial = run_population(
        spec,
        jobs=1,
        metrics=serial_metrics,
        manifest=str(serial_manifest),
    )
    print(serial.summary())

    print(f"== parallel fleet (jobs={args.jobs}) ==")
    parallel_metrics = MetricsRegistry()
    parallel = run_population(
        spec,
        jobs=args.jobs,
        metrics=parallel_metrics,
        manifest=str(parallel_manifest),
    )

    failures = []
    if snapshots(serial) != snapshots(parallel):
        failures.append("aggregate snapshots diverged")
    if serial_metrics.snapshot() != parallel_metrics.snapshot():
        failures.append("metrics snapshots diverged")
    if canonical(serial_manifest) != canonical(parallel_manifest):
        failures.append(
            "population manifests diverged (beyond wall-clock fields)"
        )

    print("== checkpoint resume ==")
    journal = out / "population-checkpoint.jsonl"
    half = expand(spec)[: spec.num_clients // 2]
    SerialExecutor().run(half, checkpoint=SweepCheckpoint(str(journal)))
    resume = SweepCheckpoint(str(journal))
    if resume.resumed != len(half):
        failures.append(
            f"journal replay resumed {resume.resumed}/{len(half)} clients"
        )
    resumed = run_population(spec, jobs=args.jobs, checkpoint=resume)
    if snapshots(resumed) != snapshots(serial):
        failures.append("checkpoint resume diverged from the live fleet")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    print(f"serial == parallel (jobs={args.jobs}) across "
          f"{spec.num_clients} clients: aggregates, metrics, manifests")
    print(f"checkpoint resume reproduced the fleet from {journal.name} "
          f"({resume.resumed} clients journalled)")
    print("artifacts in", out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
