"""CI smoke run for the columnar batch engine.

Three gates, one per contract the engine makes
(``src/repro/batch/fleet.py``):

* **Exactness** — a single-client ``--engine batch`` plan must be
  byte-identical to ``fast`` across channel counts C ∈ {1, 2, 4}:
  result stats, collected samples, retune counters, and the full
  traced record stream (including ``client.retune`` instants).
* **Statistical equivalence** — a 1000-client homogeneous batch fleet
  (phase-table kernel) must sit within the 4-sigma sampling-error
  tolerance of the per-client path, with identical client/request
  accounting.
* **Invariants** — a strict :class:`~repro.obs.monitor.MonitorSuite`
  over a multi-client columnar run must observe interleaved per-client
  records and finish with zero violations, and profiled tier counts
  must reconcile with the engine's miss counters.
* **Sub-segmentation** — a heterogeneous multi-channel fleet whose
  segments draw from finite-support distributions (Choice/UniformInt)
  must bucket into homogeneous columnar sub-segments and fold
  byte-identically to the per-client plan path.

Leaves the batch fleet manifest in the artifact directory.

Usage::

    PYTHONPATH=src python scripts/batch_smoke.py --out batch-artifacts
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.batch.fleet import run_fleet
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.monitor import MonitorSuite
from repro.obs.profile import Profiler
from repro.obs.trace import MemorySink, Tracer
from repro.population import (
    Choice,
    PopulationSpec,
    SegmentSpec,
    UniformInt,
    run_population,
)

KERNEL_CLIENTS = 1000


def single_config(**overrides):
    defaults = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=20,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=400,
        seed=13,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def kernel_spec(clients: int, engine: str) -> PopulationSpec:
    return PopulationSpec(
        name="batch-smoke",
        base=single_config(cache_size=1, policy="LRU", num_requests=600),
        seed=21,
        engine=engine,
        segments=(SegmentSpec("uniform", clients),),
    )


def check(condition: bool, message: str, failures: list) -> None:
    print(f"  {'ok  ' if condition else 'FAIL'} {message}")
    if not condition:
        failures.append(message)


def gate_exactness(failures: list) -> None:
    for channels in (1, 2, 4):
        print(f"single-client exactness, C={channels} (batch vs fast):")
        overrides = {} if channels == 1 else {"channels": channels}
        traces = {}
        results = {}
        for engine in ("fast", "batch"):
            sink = MemorySink(capacity=200_000)
            results[engine] = run_experiment(
                single_config(**overrides), engine=engine,
                collect_responses=True, tracer=Tracer(sink),
            )
            traces[engine] = [
                (record.time, record.kind, record.fields)
                for record in sink.records
            ]
        fast, batch = results["fast"], results["batch"]
        check(batch.mean_response_time == fast.mean_response_time,
              "mean response time identical", failures)
        check(batch.hit_rate == fast.hit_rate, "hit rate identical",
              failures)
        check(batch.samples == fast.samples,
              "per-request samples identical", failures)
        check(batch.retunes == fast.retunes,
              f"retune counters identical ({fast.retunes})", failures)
        check(
            (batch.measured_requests, batch.warmup_requests)
            == (fast.measured_requests, fast.warmup_requests),
            "request accounting identical", failures,
        )
        check(traces["batch"] == traces["fast"]
              and len(traces["batch"]) > 0,
              f"traced record streams identical "
              f"({len(traces['fast'])} records)", failures)
        if channels > 1:
            retunes = sum(
                1 for r in traces["batch"] if r[1] == "client.retune"
            )
            check(retunes > 0,
                  f"retune records present ({retunes})", failures)


def gate_statistical(failures: list, out: Path) -> None:
    print(f"{KERNEL_CLIENTS}-client fleet equivalence (kernel vs "
          "per-client):")
    per_client = run_population(kernel_spec(KERNEL_CLIENTS, "fast"))
    batch = run_population(
        kernel_spec(KERNEL_CLIENTS, "batch"),
        manifest=str(out / "batch_fleet_manifest.json"),
    )
    scalar_stats = per_client.overall.response_means
    batch_stats = batch.overall.response_means
    tolerance = 4.0 * scalar_stats.stddev * math.sqrt(
        2.0 / KERNEL_CLIENTS
    )
    difference = abs(batch_stats.mean - scalar_stats.mean)
    check(batch.overall.clients == per_client.overall.clients,
          "client counts identical", failures)
    check(
        batch.overall.measured_requests
        == per_client.overall.measured_requests,
        "measured-request totals identical", failures,
    )
    check(difference <= tolerance,
          f"fleet means within sampling error "
          f"(|{batch_stats.mean:.2f} - {scalar_stats.mean:.2f}| = "
          f"{difference:.3f} <= {tolerance:.3f})", failures)
    check(abs(batch.overall.hit_rate - per_client.overall.hit_rate) < 0.01,
          "hit rates within 1%", failures)


def gate_invariants(failures: list) -> None:
    print("strict monitors + profiler reconciliation on a columnar run:")
    monitors = MonitorSuite(mode="strict")
    profile = Profiler(enabled=True)
    spec = PopulationSpec(
        name="batch-smoke-monitored",
        base=single_config(num_requests=300),
        seed=29,
        engine="batch",
        segments=(SegmentSpec("uniform", 8),),
    )
    result = run_fleet(spec, monitors=monitors, profile=profile)
    check(monitors.ok and monitors.runs == 1,
          f"strict invariants clean over {monitors.observed} records",
          failures)
    document = profile.snapshot()
    tier_total = sum(document["tiers"].values())
    misses = document["counters"]["engine.batch.misses"]
    check(tier_total == misses,
          f"tier attribution reconciles ({tier_total} queries == "
          f"{misses} misses)", failures)
    check(
        document["counters"]["requests.measured"]
        == result.overall.measured_requests,
        "profiled request counts match the rollup", failures,
    )


def gate_subsegmentation(failures: list) -> None:
    print("sub-segmented heterogeneous fleet (C=2, finite support):")
    monitors = MonitorSuite(mode="strict")
    spec = PopulationSpec(
        name="batch-smoke-subseg",
        base=single_config(num_requests=300, channels=2),
        seed=41,
        segments=(
            SegmentSpec("varied", 6,
                        cache_size=UniformInt(5, 30),
                        policy=Choice(("LRU", "LIX", "P"))),
            SegmentSpec("uniform", 4),
        ),
    )
    fleet = run_fleet(spec, kernel="never", monitors=monitors)
    scalar = run_population(spec)
    fleet_doc = fleet.overall.snapshot()
    scalar_doc = scalar.overall.snapshot()
    fleet_doc.pop("total_wall_seconds")
    scalar_doc.pop("total_wall_seconds")
    check(fleet_doc == scalar_doc,
          "fleet fold byte-identical to per-client plans", failures)
    check(monitors.ok,
          f"strict invariants clean over {monitors.observed} records",
          failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="batch-artifacts",
                        help="artifact directory")
    arguments = parser.parse_args()
    out = Path(arguments.out)
    out.mkdir(parents=True, exist_ok=True)

    failures: list = []
    gate_exactness(failures)
    gate_statistical(failures, out)
    gate_invariants(failures)
    gate_subsegmentation(failures)

    if failures:
        print(f"batch smoke: {len(failures)} gate(s) failed",
              file=sys.stderr)
        return 1
    print("batch smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
