"""CI lint gate: SARIF artifact plus the incremental-cache contract.

Runs the whole-program linter twice over the full tree:

1. **cold** — against a cleared cache directory: every file is parsed,
   the cross-module phase runs from scratch, and the findings are
   written to ``lint-results.sarif`` for upload to code scanning;
2. **warm** — immediately again: the run must re-parse *nothing*
   (``parsed == 0``, every file a cache hit, cross-module phase served
   from cache) and must not be slower than the cold run.

Any lint finding, a cache miss on the warm run, or a warm run slower
than the cold one fails the job.  Wall time is measured through the
sanctioned ``repro.obs.clock`` gateway — this script *is* a timing
harness, the one place wall-clock belongs.

Usage::

    PYTHONPATH=src python scripts/lint_ci.py [--out lint-results.sarif]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import (  # noqa: E402
    LintStats,
    format_diagnostics,
    lint_paths,
    load_config,
)
from repro.obs.clock import perf_counter  # noqa: E402

LINT_TREES = ("src", "tests", "scripts", "benchmarks")


def run_once(cache_dir: Path):
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    stats = LintStats()
    started = perf_counter()
    diagnostics = lint_paths(
        [REPO_ROOT / tree for tree in LINT_TREES],
        config,
        cache_dir=cache_dir,
        stats=stats,
    )
    return diagnostics, stats, perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("lint-results.sarif"),
        help="where to write the SARIF log (default: lint-results.sarif)",
    )
    args = parser.parse_args(argv)

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-lint-ci-"))
    try:
        cold_diags, cold_stats, cold_seconds = run_once(cache_dir)
        print(f"cold: {cold_stats.describe()} ({cold_seconds:.3f}s)")

        args.out.write_text(
            format_diagnostics(cold_diags, "sarif") + "\n", encoding="utf-8"
        )
        print(f"SARIF log written to {args.out}")

        warm_diags, warm_stats, warm_seconds = run_once(cache_dir)
        print(f"warm: {warm_stats.describe()} ({warm_seconds:.3f}s)")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    failures = []
    if cold_diags:
        failures.append(
            "lint findings:\n" + format_diagnostics(cold_diags, "text")
        )
    if warm_diags != cold_diags:
        failures.append("warm run diagnostics differ from cold run")
    if warm_stats.parsed != 0:
        failures.append(
            f"warm run re-parsed {warm_stats.parsed} file(s); "
            "the cache must serve every unchanged file"
        )
    if warm_stats.cache_hits != warm_stats.files:
        failures.append(
            f"warm run hit cache on {warm_stats.cache_hits}/"
            f"{warm_stats.files} files"
        )
    if not warm_stats.project_from_cache:
        failures.append("warm run re-ran the cross-module phase")
    if warm_seconds > cold_seconds:
        failures.append(
            f"warm run ({warm_seconds:.3f}s) slower than cold "
            f"({cold_seconds:.3f}s); the cache is not paying for itself"
        )

    if failures:
        print("\nFAIL:\n" + "\n".join(f"- {f}" for f in failures))
        return 1
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(f"PASS: clean tree, warm run parsed nothing ({speedup:.1f}x faster)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
