#!/bin/sh
# Pre-commit gate for the broadcast-disks reproduction.
#
# Runs the simulation-correctness linter and the tier-1 test suite —
# the same two checks CI runs — so a commit that would fail CI never
# leaves the machine.
#
# Install as a git hook:
#     ln -s ../../scripts/pre-commit.sh .git/hooks/pre-commit
# or run ad hoc:
#     scripts/pre-commit.sh
set -eu

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

echo "== repro.lint (static analysis, incremental) =="
# The content-hash cache under .repro-lint-cache/ makes the warm path
# fast enough for every commit: unchanged files are never re-parsed,
# and an edit re-analyzes only the file plus its reverse dependencies.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.lint \
    --stats src tests scripts benchmarks

echo "== tier-1 tests =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "pre-commit checks passed"
