"""CI smoke run for the plan/executor stack.

Runs a reduced Figure-5 grid (D5, Δ=0..3, plus a noisy variant) twice —
once with ``SerialExecutor`` and once with ``ParallelExecutor(jobs=2)``
— and fails unless the two runs are byte-identical:

* per-point mean response times and collected samples;
* per-run metrics snapshots folded into the registry;
* the aggregated sweep manifests, compared as canonical JSON after
  ``strip_wall_clock`` removes the only fields allowed to differ.

Also replays the serial run from its checkpoint journal and verifies
the resumed sweep reproduces the original exactly without re-executing
anything.  Leaves both manifests in the artifact directory.

Usage::

    PYTHONPATH=src python scripts/parallel_smoke.py --out parallel-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.exec import SerialExecutor, SweepCheckpoint, plan_sweep
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import sweep_results
from repro.obs.manifest import strip_wall_clock
from repro.obs.metrics import MetricsRegistry

JOBS = 2


def smoke_grid():
    """A reduced Figure 5 slice plus one noisy point (shared layouts)."""
    base = dict(
        disk_sizes=(50, 200, 250),
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=600,
        seed=7,
    )
    configs = [
        ExperimentConfig(delta=delta, label=f"smoke Δ={delta}", **base)
        for delta in range(4)
    ]
    configs.append(
        ExperimentConfig(delta=3, noise=0.45, label="smoke Δ=3 noisy", **base)
    )
    return configs


def canonical(path: Path) -> str:
    document = json.loads(path.read_text())
    return json.dumps(strip_wall_clock(document), sort_keys=True, indent=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="parallel-artifacts",
        help="artifact directory (default: parallel-artifacts)",
    )
    parser.add_argument(
        "--jobs", type=int, default=JOBS,
        help=f"worker count for the parallel arm (default: {JOBS})",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    configs = smoke_grid()
    serial_manifest = out / "serial-manifest.json"
    parallel_manifest = out / "parallel-manifest.json"

    print(f"== serial sweep ({len(configs)} points) ==")
    serial_metrics = MetricsRegistry()
    serial = sweep_results(
        configs,
        metrics=serial_metrics,
        manifest=str(serial_manifest),
        collect_responses=True,
    )

    print(f"== parallel sweep (jobs={args.jobs}) ==")
    parallel_metrics = MetricsRegistry()
    parallel = sweep_results(
        configs,
        jobs=args.jobs,
        metrics=parallel_metrics,
        manifest=str(parallel_manifest),
        collect_responses=True,
    )

    failures = []
    if [r.mean_response_time for r in serial] != [
        r.mean_response_time for r in parallel
    ]:
        failures.append("mean response times diverged")
    if [r.samples for r in serial] != [r.samples for r in parallel]:
        failures.append("collected samples diverged")
    if serial_metrics.snapshot() != parallel_metrics.snapshot():
        failures.append("metrics snapshots diverged")
    if canonical(serial_manifest) != canonical(parallel_manifest):
        failures.append("sweep manifests diverged (beyond wall-clock fields)")

    print("== checkpoint replay ==")
    journal = out / "smoke-checkpoint.jsonl"
    plans = plan_sweep(configs, collect_responses=True)
    SerialExecutor().run(plans, checkpoint=SweepCheckpoint(str(journal)))
    replay = SweepCheckpoint(str(journal))
    replayed = SerialExecutor().run(plans, checkpoint=replay)
    if replay.resumed != len(configs):
        failures.append(
            f"journal replay resumed {replay.resumed}/{len(configs)} plans"
        )
    if [r.mean_response_time for r in replayed] != [
        r.mean_response_time for r in serial
    ]:
        failures.append("checkpoint replay diverged from the live run")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    print(f"serial == parallel (jobs={args.jobs}) across "
          f"{len(configs)} points: means, samples, metrics, manifests")
    print(f"checkpoint replay reproduced the sweep from {journal.name}")
    print("artifacts in", out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
