"""CI smoke run for multi-channel broadcast programs.

Four gates, one per contract the channel layer makes
(``src/repro/core/channels.py``):

* **C=1 byte-identity** — a one-channel program must reduce exactly to
  the legacy single-channel pipeline: identical slot lists and
  byte-identical fast-engine measurements, with zero retunes and no
  channel block on the result.
* **Engine agreement** — the fast, process, and reference engines must
  agree sample-for-sample (and retune-for-retune) on multi-channel
  runs.
* **Invariants** — a strict :class:`~repro.obs.monitor.MonitorSuite`
  over C=4 runs (fast *and* process engines) must observe per-channel
  delivery records and finish with zero violations.
* **Bandwidth split pays** — in the Figure-5-style study, the C=2 and
  C=4 curves must sit strictly below C=1 at every Δ.

The study's deterministic speedups are written to
``BENCH_multichannel.json`` and checked against the committed
``results/bench_history.jsonl`` baseline; ``--record`` appends the
fresh entry (used once, when the baseline is established or
intentionally moved).

Usage::

    PYTHONPATH=src python scripts/multichannel_smoke.py --out mc-artifacts
    PYTHONPATH=src python scripts/multichannel_smoke.py --record
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.channels import build_program
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import multichannel_study
from repro.experiments.runner import run_experiment
from repro.obs.monitor import MonitorSuite
from repro.obs.regress import render_text, run_gate

#: Bench parameters: fixed, so the document is deterministic and CI
#: reproduces the committed BENCH_multichannel.json byte-for-byte.
BENCH_SEED = 42
BENCH_REQUESTS = 800
BENCH_DELTAS = (3, 5, 7)
BENCH_CHANNELS = (1, 2, 4)
BENCH_PRESET = "D5"


def config(**overrides):
    defaults = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=500,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def check(condition: bool, message: str, failures: list) -> None:
    print(f"  {'ok  ' if condition else 'FAIL'} {message}")
    if not condition:
        failures.append(message)


def gate_identity(failures: list) -> None:
    print("C=1 byte-identity (program vs legacy schedule):")
    for sizes, delta in (((2, 4, 8), 3), ((50, 200, 250), 5)):
        layout = DiskLayout.from_delta(sizes, delta)
        program = build_program(layout, 1)
        legacy = _multidisk_program(layout)
        check(program.channels[0].slots == legacy.slots,
              f"slot lists identical for {sizes} Δ={delta} "
              f"({legacy.period} slots)", failures)
    implicit = run_experiment(config(), engine="fast",
                              collect_responses=True)
    explicit = run_experiment(config(channels=1), engine="fast",
                              collect_responses=True)
    check(implicit.samples == explicit.samples,
          "fast-engine samples identical (channels=1 vs default)",
          failures)
    check(implicit.mean_response_time == explicit.mean_response_time,
          "mean response identical", failures)
    check(explicit.retunes == 0 and explicit.channel_utilisation is None,
          "no tuner state on a single-channel run", failures)


def gate_engine_agreement(failures: list) -> None:
    print("engine agreement on C=2 and C=4 (fast vs process vs "
          "reference):")
    for channels in (2, 4):
        cfg = config(channels=channels)
        results = {
            engine: run_experiment(cfg, engine=engine,
                                   collect_responses=True)
            for engine in ("fast", "process", "fast-reference")
        }
        fast = results["fast"]
        check(fast.retunes > 0,
              f"C={channels}: tuner exercised ({fast.retunes} retunes)",
              failures)
        for engine in ("process", "fast-reference"):
            other = results[engine]
            check(
                other.samples == fast.samples
                and other.retunes == fast.retunes,
                f"C={channels}: {engine} byte-identical to fast",
                failures,
            )


def gate_invariants(failures: list) -> None:
    print("strict monitors over C=4 runs:")
    for engine in ("fast", "process"):
        monitors = MonitorSuite(mode="strict")
        result = run_experiment(
            config(channels=4, num_requests=300), engine=engine,
            monitors=monitors,
        )
        check(monitors.ok and monitors.runs == 1,
              f"{engine}: invariants clean over {monitors.observed} "
              f"records ({result.retunes} retunes)", failures)


def gate_study(failures: list, out: Path) -> dict:
    print("Figure-5-style study (C=1 vs C=2 vs C=4):")
    data = multichannel_study(
        num_requests=BENCH_REQUESTS,
        seed=BENCH_SEED,
        deltas=BENCH_DELTAS,
        channel_counts=BENCH_CHANNELS,
        preset=BENCH_PRESET,
    )
    baseline = data.series["C=1"]
    points = []
    for position, delta in enumerate(BENCH_DELTAS):
        row = {"delta": delta}
        for channels in BENCH_CHANNELS:
            row[f"c{channels}_mean"] = data.series[f"C={channels}"][position]
            row[f"c{channels}_retunes_per_request"] = \
                data.series[f"C={channels} retunes/req"][position]
        points.append(row)
        for channels in BENCH_CHANNELS[1:]:
            value = data.series[f"C={channels}"][position]
            check(value < baseline[position],
                  f"Δ={delta}: C={channels} beats C=1 "
                  f"({value:.1f} < {baseline[position]:.1f} bu)",
                  failures)
    summary = {
        f"c{channels}": {
            "speedup": (
                sum(baseline) / sum(data.series[f"C={channels}"])
            ),
        }
        for channels in BENCH_CHANNELS[1:]
    }
    document = {
        "benchmark": "multichannel",
        "params": {
            "preset": BENCH_PRESET,
            "deltas": list(BENCH_DELTAS),
            "channel_counts": list(BENCH_CHANNELS),
            "num_requests": BENCH_REQUESTS,
            "seed": BENCH_SEED,
            "retune_cost": 1.0,
        },
        "summary": summary,
        "points": points,
    }
    (out / "multichannel_study.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return document


def gate_bench(document: dict, failures: list, record: bool) -> None:
    print("benchmark regression gate (deterministic speedups):")
    bench_path = _ROOT / "BENCH_multichannel.json"
    bench_path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    report, _fresh = run_gate(
        [str(bench_path)],
        history_path=str(_ROOT / "results" / "bench_history.jsonl"),
        record=record,
    )
    print("    " + render_text(report).replace("\n", "\n    "))
    check(report["status"] == "ok",
          "speedups within the recorded baseline band", failures)
    if record and report.get("recorded"):
        print(f"  recorded {report['recorded']} history entry(ies)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="mc-artifacts",
                        help="artifact directory")
    parser.add_argument("--record", action="store_true",
                        help="append the fresh bench entry to the history")
    arguments = parser.parse_args()
    out = Path(arguments.out)
    out.mkdir(parents=True, exist_ok=True)

    failures: list = []
    gate_identity(failures)
    gate_engine_agreement(failures)
    gate_invariants(failures)
    document = gate_study(failures, out)
    gate_bench(document, failures, arguments.record)

    if failures:
        print(f"multichannel smoke: {len(failures)} gate(s) failed",
              file=sys.stderr)
        return 1
    print("multichannel smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
