"""CI smoke run for the observability stack.

Exercises the whole repro.obs surface end to end and leaves the
artifacts CI uploads:

* a reduced Figure-5 sweep (D5, Δ=0..3) with tracing, profiling, and
  strict invariant monitors **on**, writing a JSONL trace
  (``fig5-smoke.jsonl``), an aggregated sweep manifest
  (``fig5-smoke-manifest.json``), and the profile snapshot
  (``fig5-smoke-profile.json``) — and asserting that the profiler's
  timing-tier counts reconcile exactly with the build cache's
  :meth:`~repro.core.schedule.BroadcastSchedule.timing_stats` totals
  and with the engine's own miss count;
* the same grid re-run under the ``fast-reference`` engine with strict
  monitors, so both hot loops are checked against the paper's
  invariants on every CI run;
* a process-engine multidisk run with ``observe_every_slot()`` so the
  trace carries every ``channel.deliver`` slot
  (``broadcast-smoke.jsonl``), then the ``repro.obs summary`` §2.1
  fixed-gap check over it — the run fails unless every page's
  inter-arrival variance is exactly zero — and the ``repro.obs
  analyze`` attribution document (``broadcast-analyze.json``).

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py --out obs-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cache.base import PolicyContext
from repro.cache.registry import make_policy
from repro.core.programs import ProgramSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import sweep_results
from repro.experiments.simengine import ClientSpec, ProcessEngine
from repro.obs.analyze import analyze
from repro.obs.cli import main as obs_main
from repro.obs.cli import summarise
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import MonitorSuite
from repro.obs.profile import Profiler
from repro.obs.trace import JsonlSink, Tracer, read_jsonl
from repro.sim.rng import RandomStreams
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import generate_trace
from repro.workload.zipf import ZipfRegionDistribution


def _fig5_configs():
    return [
        ExperimentConfig(
            disk_sizes=(50, 200, 250),
            delta=delta,
            cache_size=50,
            policy="LIX",
            access_range=100,
            region_size=10,
            num_requests=600,
            seed=7,
            label=f"fig5-smoke Δ={delta}",
        )
        for delta in range(4)
    ]


def traced_fig5_sweep(out: Path) -> None:
    """The reduced fig5 sweep: traced, profiled, strictly monitored."""
    configs = _fig5_configs()
    trace_path = out / "fig5-smoke.jsonl"
    manifest_path = out / "fig5-smoke-manifest.json"
    profile_path = out / "fig5-smoke-profile.json"
    metrics = MetricsRegistry()
    profile = Profiler()
    monitors = MonitorSuite(mode="strict")
    with Tracer(JsonlSink(str(trace_path))) as tracer:
        results = sweep_results(
            configs,
            tracer=tracer,
            metrics=metrics,
            manifest=str(manifest_path),
            profile=profile,
            monitors=monitors,
            progress=lambda done, total, result: print(
                f"  [{done}/{total}] {result.summary()}"
            ),
        )
    assert len(results) == len(configs)
    assert monitors.ok, monitors.snapshot()

    # The profiler's tier attribution must reconcile exactly with the
    # schedules' own dispatch counters (via the sweep manifest's
    # build-cache block) and with the engine's miss count: every miss
    # resolves through exactly one next_arrival tier.
    manifest = json.loads(manifest_path.read_text())
    cache_queries = manifest["build_cache"]["queries"]
    assert cache_queries == profile.snapshot()["tiers"], (
        f"tier counts diverge: build cache {cache_queries} "
        f"vs profiler {profile.snapshot()['tiers']}"
    )
    misses = profile.counters.get("engine.fast.misses", 0)
    assert profile.tier_total == misses, (
        f"tier total {profile.tier_total} != engine misses {misses}"
    )
    profile_path.write_text(
        json.dumps(profile.snapshot(), indent=2, sort_keys=True) + "\n"
    )
    records = sum(1 for _ in read_jsonl(str(trace_path)))
    print(f"  trace    : {trace_path} ({records} records)")
    print(f"  manifest : {manifest_path} "
          f"({metrics.snapshot()['runs']} runs aggregated)")
    print(f"  profile  : {profile_path} "
          f"(tier counts reconcile with timing_stats: {cache_queries})")
    print(f"  monitors : strict, {monitors.runs} runs, 0 violations")


def strict_reference_grid() -> None:
    """The fig5 grid under fast-reference with strict monitors."""
    monitors = MonitorSuite(mode="strict")
    results = sweep_results(
        _fig5_configs(), engine="fast-reference", monitors=monitors
    )
    assert len(results) == 4
    assert monitors.ok, monitors.snapshot()
    print(f"  fast-reference: strict monitors over {monitors.runs} runs, "
          f"{monitors.observed} records checked, 0 violations")


def traced_broadcast(out: Path) -> Path:
    """A process-engine run observing every broadcast slot."""
    layout, schedule = ProgramSpec(
        sizes=(2, 4, 8), rel_freqs=(4, 2, 1)
    ).build()
    trace_path = out / "broadcast-smoke.jsonl"
    with Tracer(JsonlSink(str(trace_path))) as tracer:
        engine = ProcessEngine(schedule, layout, tracer=tracer)
        engine.channel.observe_every_slot()
        distribution = ZipfRegionDistribution(
            access_range=14, region_size=2, theta=0.95
        )
        engine.add_client(
            ClientSpec(
                mapping=LogicalPhysicalMapping(layout),
                cache=make_policy("LRU", 4, PolicyContext(num_disks=3)),
                trace=generate_trace(
                    distribution, 400, RandomStreams(3).stream("requests")
                ),
            )
        )
        engine.run()
    print(f"  trace    : {trace_path}")
    return trace_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="obs-artifacts",
        help="artifact directory (default: obs-artifacts)",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    print("== traced + profiled + monitored fig5 smoke sweep ==")
    traced_fig5_sweep(out)

    print("== strict monitors on the fast-reference engine ==")
    strict_reference_grid()

    print("== traced broadcast (every slot observed) ==")
    broadcast_trace = traced_broadcast(out)

    print("== repro.obs summary (§2.1 fixed-gap check) ==")
    code = obs_main(["summary", str(broadcast_trace)])
    if code != 0:
        print(f"summary CLI exited {code}", file=sys.stderr)
        return 1
    summary = summarise(list(read_jsonl(str(broadcast_trace))))
    broadcast = summary.get("broadcast")
    if broadcast is None or not broadcast["fixed_interarrival"]:
        print("FAIL: multidisk inter-arrival gaps are not fixed "
              f"(max variance {broadcast and broadcast['max_gap_variance']})",
              file=sys.stderr)
        return 1
    (out / "broadcast-summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    print("== repro.obs analyze (attribution tables) ==")
    code = obs_main([
        "analyze", str(broadcast_trace), "--disk-sizes", "2,4,8",
    ])
    if code != 0:
        print(f"analyze CLI exited {code}", file=sys.stderr)
        return 1
    analysis = analyze(
        list(read_jsonl(str(broadcast_trace))), disk_sizes=(2, 4, 8)
    )
    if "slot_utilization" not in analysis:
        print("FAIL: full-slot trace produced no slot_utilization section",
              file=sys.stderr)
        return 1
    (out / "broadcast-analyze.json").write_text(
        json.dumps(analysis, indent=2, sort_keys=True) + "\n"
    )
    print("fixed inter-arrival gaps confirmed; artifacts in", out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
