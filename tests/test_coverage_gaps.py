"""Direct tests for APIs previously exercised only indirectly."""

import pytest

from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.index.onem import build_one_m_broadcast
from repro.index.tree import DispatchTree
from repro.index.integrate import index_schedule
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.server.channel import BroadcastChannel
from repro.sim.kernel import Simulator, all_processed
from repro.sim.resources import Resource


class TestResourceCancel:
    def test_cancel_queued_request(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        resource.request()          # granted immediately
        queued = resource.request() # waits
        assert resource.cancel(queued) is True
        resource.release()
        sim.run()
        assert not queued.processed  # never granted
        assert resource.in_use == 0

    def test_cancel_granted_request_returns_false(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        granted = resource.request()
        assert resource.cancel(granted) is False
        resource.release()  # caller still owns the unit


class TestAllProcessed:
    def test_true_only_after_every_event_fires(self):
        sim = Simulator()
        events = [sim.timeout(1.0), sim.timeout(2.0)]
        assert not all_processed(events)
        sim.run(until=1.5)
        assert not all_processed(events)
        sim.run()
        assert all_processed(events)


class TestExtraWarmupProperty:
    def test_zero_without_cache(self):
        config = ExperimentConfig(cache_size=1, num_requests=1000)
        assert config.extra_warmup == 0

    def test_zero_with_explicit_warmup(self):
        config = ExperimentConfig(
            cache_size=100, warmup_requests=50, num_requests=1000
        )
        assert config.extra_warmup == 0

    def test_scales_with_factor(self):
        config = ExperimentConfig(
            cache_size=100, num_requests=1000, steady_state_factor=3.0
        )
        assert config.extra_warmup == 3000

    def test_factor_zero_disables_shakeout(self):
        config = ExperimentConfig(
            cache_size=100, num_requests=1000, steady_state_factor=0.0
        )
        assert config.extra_warmup == 0


class TestDispatchTreeInternals:
    def test_lookup_path_depth(self):
        tree = DispatchTree(list(range(16)), fanout=2)
        path = tree.lookup_path(5)
        assert len(path) == tree.depth
        assert path[0] is tree.root
        assert path[-1].is_bottom

    def test_lookup_path_absent_key(self):
        tree = DispatchTree([0, 2, 4], fanout=2)
        assert tree.lookup_path(99) is None

    def test_child_for_boundaries(self):
        tree = DispatchTree([0, 2, 4], fanout=4)
        bottom = tree.lookup_path(0)[-1]
        assert bottom.child_for(0) == 0
        assert bottom.child_for(4) == 2
        assert bottom.child_for(1) is None


class TestNumDataBuckets:
    def test_flat_cycle_counts_keys(self):
        broadcast = build_one_m_broadcast(list(range(10)), m=2, fanout=4)
        assert broadcast.num_data_buckets == 10

    def test_multidisk_cycle_counts_repeats(self):
        layout = DiskLayout.from_delta((2, 4, 8), delta=1)
        indexed = index_schedule(multidisk_program(layout), m=1, fanout=4)
        # Hot pages repeat: data buckets exceed distinct keys.
        assert indexed.num_data_buckets > len(indexed.keys)
        expected = sum(
            size * freq for size, freq in layout
        )
        assert indexed.num_data_buckets == expected


class TestChannelServerInterface:
    def test_has_demand_and_next_interesting_time(self):
        sim = Simulator()
        channel = BroadcastChannel(sim, BroadcastSchedule([0, 1, 2]))
        assert not channel.has_demand()
        assert channel.next_interesting_time(0.0) is None
        channel.wait_for(2)
        assert channel.has_demand()
        assert channel.next_interesting_time(0.0) == 3.0

    def test_deliver_at_pops_waiters(self):
        sim = Simulator()
        channel = BroadcastChannel(sim, BroadcastSchedule([0, 1, 2]))
        event = channel.wait_for(0)
        channel.deliver_at(1.0)
        sim.run()
        assert event.processed
        assert not channel.has_demand()

    def test_deliver_at_padding_instant_is_noop(self):
        from repro.core.chunks import EMPTY_SLOT

        sim = Simulator()
        channel = BroadcastChannel(
            sim, BroadcastSchedule([0, EMPTY_SLOT, 2])
        )
        channel.wait_for(2)
        channel.deliver_at(2.0)  # the padding slot's completion
        assert channel.has_demand()  # waiter untouched

    def test_demand_event_reused_until_triggered(self):
        sim = Simulator()
        channel = BroadcastChannel(sim, BroadcastSchedule([0]))
        first = channel.demand_event()
        assert channel.demand_event() is first
        channel.wait_for(0)  # triggers the demand signal
        second = channel.demand_event()
        assert second is not first


class TestExtensionFiguresSmoke:
    """Tiny-scale smoke runs of the extension figure entry points."""

    def test_volatility_study(self):
        from repro.experiments.figures import volatility_study

        data = volatility_study(
            num_requests=300, update_intervals=(1e6,), cache_size=100
        )
        assert len(data.series["stale frac (no reports)"]) == 1

    def test_indexing_tradeoff(self):
        from repro.experiments.figures import indexing_tradeoff

        data = indexing_tradeoff(
            num_data_buckets=64, ms=(1, 2), probes=100, fanout=4
        )
        assert len(data.series["access (sim)"]) == 2

    def test_indexed_multidisk_study(self):
        from repro.experiments.figures import indexed_multidisk_study

        data = indexed_multidisk_study(probes=150)
        assert len(data.x_values) == 2

    def test_query_study(self):
        from repro.experiments.figures import query_study

        data = query_study(query_sizes=(1, 3), trials=50, num_pages=60)
        sequential = data.series["sequential"]
        opportunistic = data.series["opportunistic"]
        assert opportunistic[1] <= sequential[1]

    def test_shaping_ablation(self):
        from repro.experiments.figures import shaping_ablation

        data = shaping_ablation(num_requests=400, max_disks=2)
        assert "optimised" in data.x_values

    def test_prefetch_comparison(self):
        from repro.experiments.figures import prefetch_comparison

        data = prefetch_comparison(
            num_requests=150, deltas=(1,), cache_size=100
        )
        assert len(data.series["PT prefetch"]) == 1
