"""Unit tests for the broadcast channel and server processes."""

import pytest

from repro.core.schedule import BroadcastSchedule
from repro.server.channel import BroadcastChannel
from repro.server.server import BroadcastServer
from repro.sim.kernel import Simulator


def make_system(slots):
    sim = Simulator()
    schedule = BroadcastSchedule(slots)
    channel = BroadcastChannel(sim, schedule)
    server = BroadcastServer(sim, schedule, channel)
    return sim, schedule, channel, server


class TestWaitFor:
    def test_waiter_woken_at_completion(self):
        sim, _schedule, channel, _server = make_system([0, 1, 2])
        event = channel.wait_for(1)
        sim.run_until_event(event)
        assert sim.now == 2.0
        assert event.value == 2.0

    def test_request_exactly_at_completion_gets_next_cycle(self):
        sim, _schedule, channel, _server = make_system([0, 1, 2])
        first = channel.wait_for(0)
        sim.run_until_event(first)
        assert sim.now == 1.0
        second = channel.wait_for(0)
        sim.run_until_event(second)
        assert sim.now == 4.0

    def test_multiple_waiters_same_page(self):
        sim, _schedule, channel, _server = make_system([0, 1])
        events = [channel.wait_for(0) for _ in range(3)]
        sim.run(until=2.0)
        assert all(event.processed for event in events)
        assert {event.value for event in events} == {1.0}

    def test_waiters_for_different_pages(self):
        sim, _schedule, channel, _server = make_system([0, 1, 2])
        event_2 = channel.wait_for(2)
        event_0 = channel.wait_for(0)
        sim.run(until=5.0)
        assert event_0.value == 1.0
        assert event_2.value == 3.0

    def test_late_registration_of_earlier_due_time(self):
        # Server is already sleeping toward a later waiter when a new
        # waiter with an earlier due time registers: it must re-plan.
        sim, _schedule, channel, _server = make_system([0, 1, 2, 3])
        late = channel.wait_for(3)  # due 4.0
        early_holder = []

        def register_early():
            early_holder.append(channel.wait_for(1))  # due 2.0

        sim.schedule(1.5, register_early)
        sim.run(until=6.0)
        assert early_holder[0].value == 2.0
        assert late.value == 4.0


class TestServerEfficiency:
    def test_server_skips_unobserved_slots(self):
        sim, _schedule, channel, server = make_system(list(range(100)))
        event = channel.wait_for(99)
        sim.run_until_event(event)
        # Jumped straight to slot 99's completion: one delivery.
        assert server.slots_transmitted <= 2

    def test_server_parks_when_idle(self):
        sim, _schedule, channel, server = make_system([0, 1])
        event = channel.wait_for(0)
        sim.run_until_event(event)
        transmitted = server.slots_transmitted
        sim.run(until=1000.0)  # no demand: nothing else transmitted
        assert server.slots_transmitted == transmitted


class TestSnooping:
    def test_snooper_sees_every_page(self):
        sim, _schedule, channel, _server = make_system([5, 7, 9])
        seen = []
        channel.snoop(lambda time, page: seen.append((time, page)))
        sim.run(until=3.0)
        assert seen == [(1.0, 5), (2.0, 7), (3.0, 9)]

    def test_snooper_and_waiter_coexist(self):
        sim, _schedule, channel, _server = make_system([5, 7])
        seen = []
        channel.snoop(lambda time, page: seen.append(page))
        event = channel.wait_for(7)
        sim.run_until_event(event)
        assert seen == [5, 7]

    def test_unsnoop_stops_deliveries(self):
        sim, _schedule, channel, server = make_system([5, 7])
        seen = []
        callback = lambda time, page: seen.append(page)  # noqa: E731
        channel.snoop(callback)
        sim.run(until=1.0)
        channel.unsnoop(callback)
        sim.run(until=10.0)
        assert seen == [5]

    def test_snooper_skips_padding_slots(self):
        from repro.core.chunks import EMPTY_SLOT

        sim, _schedule, channel, _server = make_system([5, EMPTY_SLOT, 9])
        seen = []
        channel.snoop(lambda time, page: seen.append(page))
        sim.run(until=3.0)
        assert seen == [5, 9]

    def test_deliveries_counted(self):
        sim, _schedule, channel, _server = make_system([0, 1])
        channel.snoop(lambda time, page: None)
        sim.run(until=4.0)
        assert channel.deliveries == 4
