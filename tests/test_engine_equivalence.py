"""Integration: the fast engine and the process engine must agree.

The strongest correctness check in the suite: both engines consume the
same pre-drawn trace through the same policy and must produce identical
response times for every single request, across policies and parameter
corners (noise, offset, padding slots, flat and skewed layouts).
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def small_config(**overrides):
    base = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        noise=0.0,
        offset=0,
        access_range=100,
        region_size=10,
        num_requests=400,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def assert_engines_agree(config):
    fast = run_experiment(config, engine="fast", collect_responses=True)
    process = run_experiment(config, engine="process", collect_responses=True)
    assert fast.samples == process.samples
    assert fast.hit_rate == process.hit_rate
    assert fast.access_locations == process.access_locations


class TestEngineEquivalence:
    @pytest.mark.parametrize("policy", ["LRU", "L", "LIX", "P", "PIX", "2Q"])
    def test_policies(self, policy):
        assert_engines_agree(small_config(policy=policy))

    def test_no_cache(self):
        assert_engines_agree(small_config(cache_size=1, policy="LRU"))

    def test_with_noise_and_offset(self):
        assert_engines_agree(small_config(noise=0.45, offset=50, seed=23))

    def test_flat_broadcast(self):
        assert_engines_agree(small_config(delta=0))

    def test_layout_with_padding_slots(self):
        # 3 pages on a 2x disk forces a padded chunk.
        assert_engines_agree(
            small_config(
                disk_sizes=(3, 7),
                delta=1,
                access_range=10,
                region_size=2,
                cache_size=3,
                offset=0,
            )
        )

    def test_zero_think_time(self):
        assert_engines_agree(small_config(think_time=0.0))

    def test_fractional_think_time(self):
        assert_engines_agree(small_config(think_time=1.7))

    def test_high_delta(self):
        assert_engines_agree(small_config(delta=7))

    def test_two_disk_layout(self):
        assert_engines_agree(
            small_config(disk_sizes=(90, 410), delta=4, offset=50)
        )
