"""Integration: the fast engine and the process engine must agree.

The strongest correctness check in the suite: both engines consume the
same pre-drawn trace through the same policy and must produce identical
response times for every single request, across policies and parameter
corners (noise, offset, padding slots, flat and skewed layouts).
"""

import random

import pytest

from repro.cache.base import PolicyContext
from repro.cache.lru import LRUPolicy
from repro.core.chunks import EMPTY_SLOT
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.exec import execute_plan, plan_for
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import FastEngine
from repro.experiments.runner import _warmup_trace_allowance, run_experiment
from repro.experiments.simengine import run_single_client
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace, generate_trace


def small_config(**overrides):
    base = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        noise=0.0,
        offset=0,
        access_range=100,
        region_size=10,
        num_requests=400,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def assert_engines_agree(config):
    fast = run_experiment(config, engine="fast", collect_responses=True)
    process = run_experiment(config, engine="process", collect_responses=True)
    assert fast.samples == process.samples
    assert fast.hit_rate == process.hit_rate
    assert fast.access_locations == process.access_locations


class TestEngineEquivalence:
    @pytest.mark.parametrize("policy", ["LRU", "L", "LIX", "P", "PIX", "2Q"])
    def test_policies(self, policy):
        assert_engines_agree(small_config(policy=policy))

    def test_no_cache(self):
        assert_engines_agree(small_config(cache_size=1, policy="LRU"))

    def test_with_noise_and_offset(self):
        assert_engines_agree(small_config(noise=0.45, offset=50, seed=23))

    def test_flat_broadcast(self):
        assert_engines_agree(small_config(delta=0))

    def test_layout_with_padding_slots(self):
        # 3 pages on a 2x disk forces a padded chunk.
        assert_engines_agree(
            small_config(
                disk_sizes=(3, 7),
                delta=1,
                access_range=10,
                region_size=2,
                cache_size=3,
                offset=0,
            )
        )

    def test_zero_think_time(self):
        assert_engines_agree(small_config(think_time=0.0))

    def test_fractional_think_time(self):
        assert_engines_agree(small_config(think_time=1.7))

    def test_high_delta(self):
        assert_engines_agree(small_config(delta=7))

    def test_two_disk_layout(self):
        assert_engines_agree(
            small_config(disk_sizes=(90, 410), delta=4, offset=50)
        )


# Irregular spacing for every page (no count divides the period
# evenly in an arithmetic progression), so the fast engine's fixed-gap
# shortcut declines and misses go through the wait tables — the path
# §2.2 programs never reach.
IRREGULAR_SLOTS = [
    0, 1, 0, 2, 0, EMPTY_SLOT, 1, 3, 2, 0, 3, EMPTY_SLOT, 1, 2,
]


class TestOptimizedPathCrossValidation:
    """ISSUE 5: the optimized timing paths vs the process engine."""

    def _run_both(self, *, wait_table_budget):
        schedule = BroadcastSchedule(
            IRREGULAR_SLOTS, wait_table_budget=wait_table_budget
        )
        layout = DiskLayout.flat(4)
        rng = random.Random(3)
        trace = RequestTrace.from_pages(
            [rng.randrange(4) for _ in range(300)]
        )
        fast = FastEngine(
            schedule,
            LogicalPhysicalMapping(layout),
            layout,
            LRUPolicy(2, PolicyContext()),
            think_time=0.7,
        ).run_trace(trace, collect_responses=True)
        process = run_single_client(
            schedule=BroadcastSchedule(
                IRREGULAR_SLOTS, wait_table_budget=wait_table_budget
            ),
            layout=layout,
            mapping=LogicalPhysicalMapping(layout),
            cache=LRUPolicy(2, PolicyContext()),
            trace=trace,
            think_time=0.7,
            collect_responses=True,
        )
        return schedule, fast, process

    def test_wait_tables_vs_process_engine(self):
        schedule, fast, process = self._run_both(
            wait_table_budget=64 * 1024
        )
        assert fast.samples == process.samples
        assert fast.counters.hits == process.counters.hits
        assert fast.final_time == process.final_time
        stats = schedule.timing_stats()
        # The fast run really did take the wait-table path.
        assert stats["wait_tables"] == 4
        assert all(
            schedule.fixed_gap(page) is None for page in schedule.pages
        )

    def test_memory_budget_fallback_vs_process_engine(self):
        schedule, fast, process = self._run_both(wait_table_budget=0)
        assert fast.samples == process.samples
        assert fast.counters.hits == process.counters.hits
        stats = schedule.timing_stats()
        # Over budget: every page declined, bisection served the run.
        assert stats["wait_tables"] == 0
        assert stats["wait_tables_declined"] == 4

    def test_budget_does_not_change_measurements(self):
        _schedule, tabled, _ = self._run_both(wait_table_budget=64 * 1024)
        _schedule, declined, _ = self._run_both(wait_table_budget=0)
        assert tabled.samples == declined.samples
        assert tabled.final_time == declined.final_time

    def test_fast_reference_plan_engine_agrees(self):
        config = small_config(num_requests=300)
        fast = execute_plan(plan_for(config, collect_responses=True))
        reference = execute_plan(
            plan_for(config, engine="fast-reference", collect_responses=True)
        )
        assert fast.samples == reference.samples
        assert fast.mean_response_time == reference.mean_response_time
        assert fast.hit_rate == reference.hit_rate


def _build_run_inputs(config):
    layout = config.build_layout()
    schedule = config.build_schedule(layout)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    cache = config.build_policy(schedule, mapping, distribution, layout)
    trace = generate_trace(
        distribution,
        config.num_requests + _warmup_trace_allowance(config),
        streams.stream("requests"),
    )
    return layout, schedule, mapping, cache, trace


class TestFinalTime:
    """The process engine must report the real simulator clock.

    Regression: ``run_experiment(engine="process")`` used to hard-code
    ``final_time=0.0`` instead of reading the kernel's clock.
    """

    def test_client_report_carries_final_time(self):
        config = small_config()
        layout, schedule, mapping, cache, trace = _build_run_inputs(config)
        report = run_single_client(
            schedule=schedule, layout=layout, mapping=mapping, cache=cache,
            trace=trace, think_time=config.think_time,
            extra_warmup=config.extra_warmup,
        )
        assert report.final_time > 0.0

    def test_final_time_matches_fast_engine(self):
        config = small_config()
        layout, schedule, mapping, cache, trace = _build_run_inputs(config)
        fast = FastEngine(
            schedule=schedule, mapping=mapping, layout=layout, cache=cache,
            think_time=config.think_time,
        )
        fast_outcome = fast.run_trace(
            trace, extra_warmup=config.extra_warmup
        )
        layout, schedule, mapping, cache, trace = _build_run_inputs(config)
        report = run_single_client(
            schedule=schedule, layout=layout, mapping=mapping, cache=cache,
            trace=trace, think_time=config.think_time,
            extra_warmup=config.extra_warmup,
        )
        assert report.final_time == fast_outcome.final_time

    def test_process_plan_results_agree_with_fast(self):
        # The plan path threads the clock through EngineOutcome for
        # both engines; the per-request agreement above makes every
        # derived measurement identical too.
        config = small_config()
        fast = execute_plan(plan_for(config, engine="fast"))
        process = execute_plan(plan_for(config, engine="process"))
        assert fast.mean_response_time == process.mean_response_time
        assert fast.hit_rate == process.hit_rate
