"""Integration: the fast engine and the process engine must agree.

The strongest correctness check in the suite: both engines consume the
same pre-drawn trace through the same policy and must produce identical
response times for every single request, across policies and parameter
corners (noise, offset, padding slots, flat and skewed layouts).
"""

import pytest

from repro.exec import execute_plan, plan_for
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import FastEngine
from repro.experiments.runner import _warmup_trace_allowance, run_experiment
from repro.experiments.simengine import run_single_client
from repro.workload.trace import generate_trace


def small_config(**overrides):
    base = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        noise=0.0,
        offset=0,
        access_range=100,
        region_size=10,
        num_requests=400,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def assert_engines_agree(config):
    fast = run_experiment(config, engine="fast", collect_responses=True)
    process = run_experiment(config, engine="process", collect_responses=True)
    assert fast.samples == process.samples
    assert fast.hit_rate == process.hit_rate
    assert fast.access_locations == process.access_locations


class TestEngineEquivalence:
    @pytest.mark.parametrize("policy", ["LRU", "L", "LIX", "P", "PIX", "2Q"])
    def test_policies(self, policy):
        assert_engines_agree(small_config(policy=policy))

    def test_no_cache(self):
        assert_engines_agree(small_config(cache_size=1, policy="LRU"))

    def test_with_noise_and_offset(self):
        assert_engines_agree(small_config(noise=0.45, offset=50, seed=23))

    def test_flat_broadcast(self):
        assert_engines_agree(small_config(delta=0))

    def test_layout_with_padding_slots(self):
        # 3 pages on a 2x disk forces a padded chunk.
        assert_engines_agree(
            small_config(
                disk_sizes=(3, 7),
                delta=1,
                access_range=10,
                region_size=2,
                cache_size=3,
                offset=0,
            )
        )

    def test_zero_think_time(self):
        assert_engines_agree(small_config(think_time=0.0))

    def test_fractional_think_time(self):
        assert_engines_agree(small_config(think_time=1.7))

    def test_high_delta(self):
        assert_engines_agree(small_config(delta=7))

    def test_two_disk_layout(self):
        assert_engines_agree(
            small_config(disk_sizes=(90, 410), delta=4, offset=50)
        )


def _build_run_inputs(config):
    layout = config.build_layout()
    schedule = config.build_schedule(layout)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    cache = config.build_policy(schedule, mapping, distribution, layout)
    trace = generate_trace(
        distribution,
        config.num_requests + _warmup_trace_allowance(config),
        streams.stream("requests"),
    )
    return layout, schedule, mapping, cache, trace


class TestFinalTime:
    """The process engine must report the real simulator clock.

    Regression: ``run_experiment(engine="process")`` used to hard-code
    ``final_time=0.0`` instead of reading the kernel's clock.
    """

    def test_client_report_carries_final_time(self):
        config = small_config()
        layout, schedule, mapping, cache, trace = _build_run_inputs(config)
        report = run_single_client(
            schedule=schedule, layout=layout, mapping=mapping, cache=cache,
            trace=trace, think_time=config.think_time,
            extra_warmup=config.extra_warmup,
        )
        assert report.final_time > 0.0

    def test_final_time_matches_fast_engine(self):
        config = small_config()
        layout, schedule, mapping, cache, trace = _build_run_inputs(config)
        fast = FastEngine(
            schedule=schedule, mapping=mapping, layout=layout, cache=cache,
            think_time=config.think_time,
        )
        fast_outcome = fast.run_trace(
            trace, extra_warmup=config.extra_warmup
        )
        layout, schedule, mapping, cache, trace = _build_run_inputs(config)
        report = run_single_client(
            schedule=schedule, layout=layout, mapping=mapping, cache=cache,
            trace=trace, think_time=config.think_time,
            extra_warmup=config.extra_warmup,
        )
        assert report.final_time == fast_outcome.final_time

    def test_process_plan_results_agree_with_fast(self):
        # The plan path threads the clock through EngineOutcome for
        # both engines; the per-request agreement above makes every
        # derived measurement identical too.
        config = small_config()
        fast = execute_plan(plan_for(config, engine="fast"))
        process = execute_plan(plan_for(config, engine="process"))
        assert fast.mean_response_time == process.mean_response_time
        assert fast.hit_rate == process.hit_rate
