"""Trace-bus tests: kernel/channel/client/cache hooks, sinks, no-op path.

The load-bearing assertions:

* the ``Simulator.trace`` hook emits exactly one ``sim.event`` record
  per processed event (``events_processed`` agrees with the trace);
* a multi-disk schedule traced slot-by-slot shows zero per-page gap
  variance (§2.1 fixed inter-arrival);
* traced and untraced runs produce byte-identical measurements (both
  engines), so observability can never perturb the reproduction.
"""

from __future__ import annotations

import pytest

from repro.cache.base import PolicyContext, TracedCache
from repro.cache.registry import make_policy
from repro.experiments.runner import run_experiment
from repro.experiments.simengine import ClientSpec, ProcessEngine
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TraceRecord,
    Tracer,
    read_jsonl,
    trace_schedule,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import generate_trace
from repro.workload.zipf import ZipfRegionDistribution


def _counts(records):
    by_kind = {}
    for record in records:
        kind = record.kind if isinstance(record, TraceRecord) else record["kind"]
        by_kind[kind] = by_kind.get(kind, 0) + 1
    return by_kind


class TestSimulatorTraceHook:
    def test_events_processed_matches_trace_records(self):
        """One ``sim.event`` record per dispatched event, no more, no less."""
        sink = MemorySink()
        sim = Simulator()
        sim.trace = Tracer(sink)
        fired = []
        # A small scripted simulation: chained timeouts plus a process.
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.5, lambda: sim.schedule(1.0, lambda: fired.append("b")))

        def worker(sim):
            yield sim.timeout(2.0)
            yield sim.timeout(3.0)

        sim.process(worker(sim))
        sim.run()
        assert fired == ["a", "b"]
        assert sim.events_processed > 0
        records = sink.records
        assert len(records) == sim.events_processed
        assert all(record.kind == "sim.event" for record in records)
        # Record times are the dispatch instants, in non-decreasing order.
        times = [record.time for record in records]
        assert times == sorted(times)

    def test_no_tracer_is_default_and_harmless(self):
        sim = Simulator()
        assert sim.trace is None
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_disabled_tracer_emits_nothing(self):
        sink = MemorySink()
        sim = Simulator()
        sim.trace = Tracer(sink, enabled=False)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1
        assert len(sink) == 0


class TestSinks:
    def test_memory_sink_ring_buffer(self):
        sink = MemorySink(capacity=3)
        tracer = Tracer(sink)
        for index in range(5):
            tracer.emit("k", float(index), i=index)
        assert tracer.emitted == 5
        assert [record.fields["i"] for record in sink.records] == [2, 3, 4]

    def test_memory_sink_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit("client.hit", 1.5, page=3)
            tracer.emit("channel.deliver", 2.0, page=7)
        records = list(read_jsonl(path))
        assert records == [
            {"t": 1.5, "kind": "client.hit", "page": 3},
            {"t": 2.0, "kind": "channel.deliver", "page": 7},
        ]

    def test_multiple_sinks_see_every_record(self, tmp_path):
        memory = MemorySink()
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(memory, JsonlSink(path))
        tracer.emit("k", 0.5, x=1)
        tracer.close()
        assert len(memory) == 1
        assert len(list(read_jsonl(path))) == 1


class TestScheduleTracing:
    def test_multidisk_gaps_are_fixed(self, tiny_schedule):
        """§2.1: every page of the multidisk program has fixed gaps."""
        sink = MemorySink()
        tracer = Tracer(sink)
        emitted = trace_schedule(tiny_schedule, tracer, periods=3)
        assert emitted == len(sink)
        arrivals = {}
        for record in sink.records:
            arrivals.setdefault(record.fields["page"], []).append(record.time)
        assert len(arrivals) == 14  # 2 + 4 + 8 pages
        for page, times in arrivals.items():
            gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
            assert len(gaps) == 1, (page, gaps)

    def test_rejects_zero_periods(self, tiny_schedule):
        with pytest.raises(ValueError):
            trace_schedule(tiny_schedule, Tracer(), periods=0)


class TestChannelAndClientHooks:
    def _run_process(self, tracer, observe_all=False):
        from repro.core.disks import DiskLayout
        from repro.core.programs import _multidisk_program as multidisk_program

        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        schedule = multidisk_program(layout)
        engine = ProcessEngine(schedule, layout, tracer=tracer)
        if observe_all:
            engine.channel.observe_every_slot()
        distribution = ZipfRegionDistribution(
            access_range=14, region_size=2, theta=0.95
        )
        trace = generate_trace(
            distribution, 150, RandomStreams(3).stream("requests")
        )
        engine.add_client(
            ClientSpec(
                mapping=LogicalPhysicalMapping(layout),
                cache=make_policy("LRU", 4, PolicyContext(num_disks=3)),
                trace=trace,
            )
        )
        reports = engine.run()
        return engine, reports[0]

    def test_client_records_match_report(self):
        sink = MemorySink()
        engine, report = self._run_process(Tracer(sink))
        counts = _counts(sink.records)
        assert counts["client.request"] == 150
        # Hits + misses partition the requests.
        assert counts["client.hit"] + counts["client.miss"] == 150
        assert counts["client.miss"] == counts["client.wait"]
        # sim.event records agree with the kernel's own counter.
        assert counts["sim.event"] == engine.sim.events_processed

    def test_observe_every_slot_records_full_broadcast(self):
        sink = MemorySink()
        engine, _report = self._run_process(Tracer(sink), observe_all=True)
        delivers = [r for r in sink.records if r.kind == "channel.deliver"]
        # Every slot delivered: gap variance is exactly zero per page.
        arrivals = {}
        for record in delivers:
            arrivals.setdefault(record.fields["page"], []).append(record.time)
        for times in arrivals.values():
            gaps = {b - a for a, b in zip(times, times[1:])}
            assert len(gaps) <= 1

    def test_tracing_does_not_change_results(self):
        _engine, untraced = self._run_process(None)
        _engine, traced = self._run_process(Tracer(MemorySink()))
        assert traced.response.mean == untraced.response.mean
        assert traced.counters.hits == untraced.counters.hits
        assert traced.counters.misses == untraced.counters.misses


class TestTracedCache:
    def _cache(self, tracer, capacity=2):
        return TracedCache(
            make_policy("LRU", capacity, PolicyContext()), tracer
        )

    def test_delegates_and_records(self):
        sink = MemorySink()
        cache = self._cache(Tracer(sink))
        assert not cache.lookup(1, 0.0)
        assert cache.admit(1, 1.0) is None
        assert cache.lookup(1, 2.0)
        assert cache.admit(2, 3.0) is None
        victim = cache.admit(3, 4.0)  # capacity 2: LRU evicts page 1
        assert victim == 1
        assert 1 not in cache
        assert len(cache) == 2
        assert sorted(cache.pages()) == [2, 3]
        counts = _counts(sink.records)
        assert counts == {
            "cache.lookup": 2, "cache.admit": 3, "cache.evict": 1,
        }
        evict = [r for r in sink.records if r.kind == "cache.evict"][0]
        assert evict.fields == {"page": 1, "admitted": 3}

    def test_discard_recorded_at_last_seen_time(self):
        sink = MemorySink()
        cache = self._cache(Tracer(sink))
        cache.admit(5, 7.5)
        assert cache.discard(5)
        assert not cache.discard(5)
        discards = [r for r in sink.records if r.kind == "cache.discard"]
        assert [d.fields["resident"] for d in discards] == [True, False]
        assert discards[0].time == 7.5

    def test_transparent_when_tracer_disabled(self):
        sink = MemorySink()
        cache = self._cache(Tracer(sink, enabled=False))
        cache.admit(1, 0.0)
        assert cache.is_full is False
        assert len(sink) == 0


class TestRunExperimentTracing:
    def test_fast_and_process_traces_agree_on_client_kinds(self, mini_config):
        config = mini_config.with_(num_requests=200)
        fast_sink, process_sink = MemorySink(), MemorySink()
        fast = run_experiment(config, tracer=Tracer(fast_sink))
        process = run_experiment(
            config, engine="process", tracer=Tracer(process_sink)
        )
        assert fast.mean_response_time == process.mean_response_time
        fast_counts = _counts(fast_sink.records)
        process_counts = _counts(process_sink.records)
        for kind in ("client.request", "client.hit", "client.miss",
                     "client.wait", "cache.admit", "cache.evict"):
            assert fast_counts.get(kind) == process_counts.get(kind), kind

    def test_traced_run_is_byte_identical_to_untraced(self, mini_config):
        config = mini_config.with_(num_requests=200)
        untraced = run_experiment(config)
        traced = run_experiment(config, tracer=Tracer(MemorySink()))
        assert traced.mean_response_time == untraced.mean_response_time
        assert traced.hit_rate == untraced.hit_rate
        assert traced.access_locations == untraced.access_locations


class _ExplodingSink:
    """A sink that raises after accepting ``healthy`` records."""

    def __init__(self, healthy=0, close_raises=False):
        self.healthy = healthy
        self.close_raises = close_raises
        self.seen = 0
        self.closed = False

    def write(self, record):
        if self.seen >= self.healthy:
            raise OSError("disk full")
        self.seen += 1

    def close(self):
        self.closed = True
        if self.close_raises:
            raise OSError("flush failed")


class TestSinkQuarantine:
    def test_failing_sink_detached_with_one_warning(self):
        good = MemorySink()
        bad = _ExplodingSink(healthy=2)
        tracer = Tracer(good, bad)
        for t in range(2):
            tracer.emit("sim.event", float(t))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            tracer.emit("sim.event", 2.0)
        # The bad sink is gone; subsequent emissions warn no more and
        # the healthy sink misses nothing.
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            tracer.emit("sim.event", 3.0)
        assert tracer.quarantined == 1
        assert len(good) == 4
        assert bad.seen == 2

    def test_emit_delivers_to_later_sinks_before_quarantining(self):
        # The failing sink sits first: the record must still reach the
        # healthy sink behind it in the same emit call.
        good = MemorySink()
        tracer = Tracer(_ExplodingSink(healthy=0), good)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            tracer.emit("sim.event", 0.0)
        assert len(good) == 1
        assert tracer.quarantined == 1

    def test_close_failure_quarantines_but_closes_the_rest(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        jsonl = JsonlSink(str(path))
        bad = _ExplodingSink(healthy=1, close_raises=True)
        tracer = Tracer(bad, jsonl)
        tracer.emit("sim.event", 0.0)
        with pytest.warns(RuntimeWarning, match="close"):
            tracer.close()
        assert tracer.quarantined == 1
        assert bad.closed  # its close ran (and raised)
        assert len(list(read_jsonl(str(path)))) == 1  # flushed cleanly

    def test_unwritable_jsonl_sink_quarantines_not_crashes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.close()  # writes now raise ValueError on the closed handle
        tracer = Tracer(sink)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            tracer.emit("sim.event", 0.0)
        assert tracer.quarantined == 1
        assert tracer.emitted == 1

    def test_unopenable_jsonl_path_fails_fast(self, tmp_path):
        # Construction (unlike a mid-run write) should fail loudly: the
        # caller asked for a trace at a path that cannot exist.
        with pytest.raises(OSError):
            JsonlSink(str(tmp_path / "no-such-dir" / "trace.jsonl"))
