"""Tests for the multi-client process simulation (extension).

The broadcast's headline property: serving N clients costs the server
nothing — every client sees the same timing it would see alone, because
there is no contention on a broadcast medium.
"""

import pytest

from repro.cache.base import PolicyContext
from repro.cache.lru import LRUPolicy
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.experiments.simengine import ClientSpec, ProcessEngine, run_clients
from repro.errors import SimulationError
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


def make_spec(layout, trace, offset=0, cache=2, name="client"):
    return ClientSpec(
        mapping=LogicalPhysicalMapping(layout, offset=offset),
        cache=LRUPolicy(cache, PolicyContext()),
        trace=trace,
        think_time=2.0,
        warmup_requests=0,
        collect_responses=True,
        name=name,
    )


@pytest.fixture
def layout():
    return DiskLayout((2, 6), (3, 1))


class TestMultiClient:
    def test_reports_in_spec_order(self, layout):
        schedule = multidisk_program(layout)
        reports = run_clients(
            schedule,
            layout,
            [
                make_spec(layout, RequestTrace.from_pages([0, 1]), name="a"),
                make_spec(layout, RequestTrace.from_pages([7, 6]), name="b"),
            ],
        )
        assert len(reports) == 2
        assert reports[0].response.count == 2

    def test_broadcast_scales_to_many_clients_for_free(self, layout):
        # A client alone and the same client among 8 others must measure
        # identical response times: broadcast has no contention.
        schedule = multidisk_program(layout)
        trace = RequestTrace.from_pages([7, 3, 0, 5, 7, 2])

        alone = run_clients(
            schedule, layout, [make_spec(layout, trace)]
        )[0]

        crowd_specs = [make_spec(layout, trace, name="target")]
        for index in range(8):
            other_trace = RequestTrace.from_pages(
                [(index + j) % 8 for j in range(6)]
            )
            crowd_specs.append(
                make_spec(layout, other_trace, name=f"other{index}")
            )
        crowded = run_clients(schedule, layout, crowd_specs)[0]

        assert alone.samples == crowded.samples

    def test_clients_with_different_offsets_see_different_costs(self, layout):
        # A client whose hot pages were pushed to the slow disk (offset)
        # waits longer for them than an aligned client.
        schedule = multidisk_program(layout)
        trace = RequestTrace.from_pages([0] * 30)
        aligned, shifted = run_clients(
            schedule,
            layout,
            [
                make_spec(layout, trace, offset=0, cache=1),
                make_spec(layout, trace, offset=2, cache=1),
            ],
        )
        assert aligned.response.mean < shifted.response.mean

    def test_engine_requires_clients(self, layout):
        engine = ProcessEngine(multidisk_program(layout), layout)
        with pytest.raises(SimulationError):
            engine.run()

    def test_heterogeneous_cache_sizes(self, layout):
        schedule = multidisk_program(layout)
        trace = RequestTrace.from_pages([0, 1, 0, 1, 0, 1, 0, 1])
        small, large = run_clients(
            schedule,
            layout,
            [
                make_spec(layout, trace, cache=1),
                make_spec(layout, trace, cache=4),
            ],
        )
        assert large.counters.hit_rate > small.counters.hit_rate
