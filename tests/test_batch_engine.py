"""The columnar batch engine: exact where promised, fast where allowed.

Two correctness regimes (``src/repro/batch/fleet.py`` docstring):

* single-client ``--engine batch`` runs and ``run_fleet(kernel="never")``
  fleets are **byte-identical** to the scalar ``fast`` path — stats,
  samples, and the traced record stream;
* the cache-less phase-table kernel draws from group-level streams, so
  it is held to the BENCH_population contract instead: equal within
  sampling error.

Plus the rails around the engine: registry fallback for unbatchable
policies, fleet fallback for heterogeneous segments, monitor keying on
interleaved per-client records, and the process-pool clamp that stops
small fleets from paying for workers they cannot feed.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.monitor import MonitorSuite
from repro.obs.profile import Profiler
from repro.obs.trace import MemorySink, Tracer
from repro.population import (
    Choice,
    Constant,
    PopulationSpec,
    SegmentSpec,
    Uniform,
    UniformInt,
    run_population,
)
from repro.population.run import _MIN_CLIENTS_PER_WORKER, _effective_jobs


def config(**overrides):
    defaults = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=20,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=300,
        seed=13,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def homogeneous_spec(clients=8, *, name="batch-fleet", seed=29, **overrides):
    engine = overrides.pop("engine", "batch")
    return PopulationSpec(
        name=name,
        base=config(**overrides),
        seed=seed,
        engine=engine,
        segments=(SegmentSpec("uniform", clients),),
    )


def snapshot(result):
    """Aggregate snapshots with wall-clock fields removed."""
    documents = [result.overall.snapshot()] + [
        result.segments[name].snapshot() for name in sorted(result.segments)
    ]
    for document in documents:
        document.pop("total_wall_seconds")
    return documents


# ---------------------------------------------------------------------------
# Regime 1: byte-identity with the scalar fast engine
# ---------------------------------------------------------------------------

class TestSingleClientExactness:
    """``--engine batch`` on one plan is the fast engine, column-wise."""

    @pytest.mark.parametrize("policy", ["LRU", "P", "PIX", "L", "LIX"])
    def test_stats_identical_across_policies(self, policy):
        base = config(policy=policy)
        fast = run_experiment(base, engine="fast", collect_responses=True)
        batch = run_experiment(base, engine="batch", collect_responses=True)
        assert batch.mean_response_time == fast.mean_response_time
        assert batch.measured_requests == fast.measured_requests
        assert batch.warmup_requests == fast.warmup_requests
        assert batch.hit_rate == fast.hit_rate
        assert batch.samples == fast.samples

    @pytest.mark.parametrize("overrides", [
        dict(cache_size=1),
        dict(cache_size=8, policy="P"),
        dict(noise=0.3, seed=41),
        dict(drift_rotations=1.5),
        dict(think_time=2.5),
        dict(warmup_requests=40),
    ])
    def test_stats_identical_across_configs(self, overrides):
        base = config(**overrides)
        fast = run_experiment(base, engine="fast")
        batch = run_experiment(base, engine="batch")
        assert batch.mean_response_time == fast.mean_response_time
        assert batch.hit_rate == fast.hit_rate
        assert batch.measured_requests == fast.measured_requests

    def test_traced_record_streams_identical(self):
        streams = {}
        for engine in ("fast", "batch"):
            sink = MemorySink()
            run_experiment(config(num_requests=150), engine=engine,
                           tracer=Tracer(sink))
            streams[engine] = [
                (r.time, r.kind, r.fields) for r in sink.records
            ]
        assert streams["batch"] == streams["fast"]
        assert len(streams["batch"]) > 0

    def test_unbatchable_policy_falls_back_to_fast(self):
        # LRU-K has no columnar formulation; the batch plan engine must
        # silently delegate rather than fail.
        base = config(policy="LRU-K", num_requests=150)
        fast = run_experiment(base, engine="fast")
        batch = run_experiment(base, engine="batch")
        assert batch.mean_response_time == fast.mean_response_time


class TestFleetExactness:
    """``kernel="never"`` fleets fold identically to run_population."""

    def mixed_spec(self):
        return PopulationSpec(
            name="mixed-fleet",
            base=config(num_requests=200),
            seed=17,
            segments=(
                SegmentSpec("uniform", 5),
                SegmentSpec("tuned", 4,
                            cache_size=Constant(8), policy=Constant("P"),
                            noise=Constant(0.25)),
                SegmentSpec("varied", 3,
                            cache_size=UniformInt(5, 40),
                            policy=Choice(("LRU", "LIX"))),
                SegmentSpec("drifting", 2,
                            drift_rotations=Uniform(0.5, 1.5)),
            ),
        )

    def test_batch_fleet_matches_per_client_fold(self):
        from repro.batch.fleet import run_fleet

        spec = self.mixed_spec()
        scalar = run_population(spec)
        fleet = run_fleet(spec, kernel="never")
        assert snapshot(fleet) == snapshot(scalar)

    def test_run_population_dispatches_batch_engine(self):
        spec = homogeneous_spec(6, num_requests=200, engine="batch")
        via_population = run_population(spec)
        scalar = run_population(
            homogeneous_spec(6, num_requests=200, engine="fast")
        )
        assert snapshot(via_population) == snapshot(scalar)

    def test_plan_machinery_falls_back_to_plans(self):
        # keep_results needs per-client ExperimentResults, which the
        # fleet path never materialises — run_population must take the
        # plan path and still agree.
        spec = homogeneous_spec(4, num_requests=200, engine="batch")
        kept = run_population(spec, keep_results=True)
        assert kept.results is not None and len(kept.results) == 4
        assert snapshot(kept) == snapshot(run_population(spec))

    def test_multichannel_fleet_matches_per_client_fold(self):
        from repro.batch.fleet import run_fleet

        spec = PopulationSpec(
            name="tuned-fleet",
            base=config(num_requests=200, channels=4),
            seed=23,
            segments=(SegmentSpec("uniform", 6),),
        )
        fleet = run_fleet(spec, kernel="never")
        assert snapshot(fleet) == snapshot(run_population(spec))

    def test_finite_support_segments_avoid_plan_fallback(self, monkeypatch):
        # Choice/UniformInt segments sub-segment into homogeneous buckets
        # that all ride the columnar engine: the per-client plan fallback
        # must never fire, and the fold must stay byte-identical.
        from repro.batch import fleet as fleet_module

        calls = []
        original = fleet_module.execute_plan

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(fleet_module, "execute_plan", counting)
        spec = PopulationSpec(
            name="subseg-fleet",
            base=config(num_requests=200, channels=2),
            seed=31,
            segments=(
                SegmentSpec("varied", 5,
                            cache_size=UniformInt(5, 30),
                            policy=Choice(("LRU", "LIX", "P"))),
            ),
        )
        result = fleet_module.run_fleet(spec, kernel="never")
        assert calls == []
        assert snapshot(result) == snapshot(run_population(spec))

    def test_continuous_segments_still_take_plan_fallback(self, monkeypatch):
        # Uniform has continuous support — no finite bucketing exists, so
        # those clients must run through per-client plans.
        from repro.batch import fleet as fleet_module

        calls = []
        original = fleet_module.execute_plan

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(fleet_module, "execute_plan", counting)
        spec = PopulationSpec(
            name="drift-fleet",
            base=config(num_requests=200),
            seed=37,
            segments=(
                SegmentSpec("drifting", 3,
                            drift_rotations=Uniform(0.5, 1.5)),
            ),
        )
        result = fleet_module.run_fleet(spec, kernel="never")
        assert len(calls) == 3
        assert snapshot(result) == snapshot(run_population(spec))


# ---------------------------------------------------------------------------
# Regime 2: the phase-table kernel, statistically
# ---------------------------------------------------------------------------

class TestKernelStatistical:
    KERNEL = dict(cache_size=1, policy="LRU", think_time=2.0,
                  num_requests=400)

    def test_kernel_matches_columnar_within_sampling_error(self):
        from repro.batch.fleet import run_fleet

        spec = homogeneous_spec(200, **self.KERNEL)
        auto = run_fleet(spec, kernel="auto")
        exact = run_fleet(spec, kernel="never")
        assert auto.overall.clients == exact.overall.clients == 200
        assert auto.overall.measured_requests == \
            exact.overall.measured_requests
        assert auto.overall.warmup_requests == exact.overall.warmup_requests
        stats_a, stats_e = auto.overall.response_means, \
            exact.overall.response_means
        tolerance = 6.0 * math.sqrt(
            stats_a.stderr ** 2 + stats_e.stderr ** 2
        )
        assert abs(stats_a.mean - stats_e.mean) < tolerance
        assert abs(auto.overall.hit_rate - exact.overall.hit_rate) < 0.01

    def test_kernel_declines_ineligible_configs(self):
        from repro.batch.fleet import _kernel_eligible

        assert _kernel_eligible(config(**self.KERNEL))
        assert not _kernel_eligible(config(**{**self.KERNEL,
                                              "cache_size": 20}))
        assert not _kernel_eligible(config(**{**self.KERNEL,
                                              "policy": "PIX"}))
        assert not _kernel_eligible(config(**{**self.KERNEL,
                                              "think_time": 2.5}))
        assert not _kernel_eligible(config(**{**self.KERNEL, "noise": 0.2}))
        assert not _kernel_eligible(config(**{**self.KERNEL,
                                              "drift_rotations": 1.0}))
        assert not _kernel_eligible(config(**{**self.KERNEL,
                                              "warmup_requests": 10}))
        # Multi-channel programs fold the retune penalty into integer
        # phase tables, so fractional costs disqualify the kernel.
        assert _kernel_eligible(config(**{**self.KERNEL, "channels": 4}))
        assert not _kernel_eligible(config(**{**self.KERNEL, "channels": 4,
                                              "retune_cost": 1.5}))

    def test_kernel_matches_columnar_multichannel(self):
        from repro.batch.fleet import run_fleet

        spec = homogeneous_spec(200, channels=4, **self.KERNEL)
        auto = run_fleet(spec, kernel="auto")
        exact = run_fleet(spec, kernel="never")
        stats_a, stats_e = auto.overall.response_means, \
            exact.overall.response_means
        tolerance = 6.0 * math.sqrt(
            stats_a.stderr ** 2 + stats_e.stderr ** 2
        )
        assert abs(stats_a.mean - stats_e.mean) < tolerance
        assert abs(auto.overall.hit_rate - exact.overall.hit_rate) < 0.01

    def test_invalid_kernel_mode_rejected(self):
        from repro.batch.fleet import run_fleet

        with pytest.raises(ConfigurationError, match="kernel"):
            run_fleet(homogeneous_spec(2), kernel="sometimes")


# ---------------------------------------------------------------------------
# Observability: monitors, profiling, tier reconciliation
# ---------------------------------------------------------------------------

class TestBatchObservability:
    def test_strict_monitors_pass_on_interleaved_fleet(self):
        from repro.batch.fleet import run_fleet

        monitors = MonitorSuite(mode="strict")
        result = run_fleet(homogeneous_spec(5, num_requests=200),
                           monitors=monitors)
        assert result.num_clients == 5
        assert monitors.ok
        assert monitors.runs == 1
        assert monitors.observed > 0

    def test_strict_monitors_pass_with_caller_tracer(self):
        from repro.batch.fleet import run_fleet

        sink = MemorySink(capacity=50_000)
        monitors = MonitorSuite(mode="strict")
        run_fleet(homogeneous_spec(3, num_requests=150),
                  tracer=Tracer(sink), monitors=monitors)
        assert monitors.ok
        labels = {
            record.fields.get("client") for record in sink.records
        }
        assert len(labels) == 3  # every record carries its client

    def test_profiler_tier_counts_reconcile(self):
        from repro.batch.fleet import run_fleet

        profile = Profiler(enabled=True)
        result = run_fleet(homogeneous_spec(4, num_requests=200),
                           profile=profile)
        document = profile.snapshot()
        tier_total = sum(document["tiers"].values())
        counters = document["counters"]
        assert tier_total == counters["engine.batch.misses"]
        assert counters["requests.measured"] == \
            result.overall.measured_requests


# ---------------------------------------------------------------------------
# Satellite: the process-pool clamp
# ---------------------------------------------------------------------------

class TestEffectiveJobs:
    def test_small_fleet_degrades_to_serial(self):
        # The 0.86x BENCH record: 50 clients over 4 workers lost to
        # fork overhead.  Below one worker per _MIN_CLIENTS_PER_WORKER
        # clients the pool must shrink.
        assert _effective_jobs(4, 50) == 1

    def test_large_fleet_keeps_requested_workers(self):
        import repro.exec.executor as executor

        wanted = min(4, executor.usable_cores())
        assert _effective_jobs(wanted,
                               8 * _MIN_CLIENTS_PER_WORKER) == wanted

    def test_serial_requests_stay_serial(self):
        assert _effective_jobs(None, 10_000) == 1
        assert _effective_jobs(1, 10_000) == 1

    def test_clamp_scales_with_density(self):
        assert _effective_jobs(16, 3 * _MIN_CLIENTS_PER_WORKER) <= 3
