"""Tests for the volatile-data extension (repro.updates)."""

import numpy as np
import pytest

from repro.cache.base import PolicyContext
from repro.cache.lru import LRUPolicy
from repro.core.disks import DiskLayout
from repro.core.programs import _flat_program as flat_program, _multidisk_program as multidisk_program
from repro.errors import ConfigurationError
from repro.updates.engine import VolatileEngine
from repro.updates.process import PeriodicUpdateModel, PoissonUpdateModel
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


class TestPeriodicUpdateModel:
    def test_version_advances_every_interval(self):
        model = PeriodicUpdateModel.uniform(10.0, num_pages=3)
        assert model.version_at(0, 5.0) == 1  # phase 0: update at t=0
        assert model.version_at(0, 10.0) == 2
        assert model.version_at(0, 95.0) == 10

    def test_infinite_interval_never_updates(self):
        model = PeriodicUpdateModel(
            lambda page: float("inf"), num_pages=2
        )
        assert model.version_at(0, 1e6) == 0

    def test_phase_randomisation(self, rng):
        model = PeriodicUpdateModel.uniform(100.0, num_pages=50, rng=rng)
        first_versions = {model.version_at(page, 50.0) for page in range(50)}
        # With random phases some pages have updated by t=50, others not.
        assert first_versions == {0, 1}

    def test_updated_in_window(self):
        model = PeriodicUpdateModel.uniform(10.0, num_pages=1)
        assert model.updated_in(0, 1.0, 11.0)
        assert not model.updated_in(0, 1.0, 9.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicUpdateModel.uniform(0.0, num_pages=2)
        with pytest.raises(ConfigurationError):
            PeriodicUpdateModel.uniform(5.0, num_pages=0)

    def test_version_monotone(self, rng):
        model = PeriodicUpdateModel.uniform(7.0, num_pages=4, rng=rng)
        times = np.linspace(0, 100, 53)
        for page in range(4):
            versions = [model.version_at(page, t) for t in times]
            assert versions == sorted(versions)


class TestPoissonUpdateModel:
    def test_rate_zero_never_updates(self, rng):
        model = PoissonUpdateModel(lambda page: 0.0, 2, rng)
        assert model.version_at(0, 1e6) == 0

    def test_expected_count(self, rng):
        model = PoissonUpdateModel(lambda page: 0.01, 200, rng, horizon=1e5)
        counts = [model.version_at(page, 1e5) for page in range(200)]
        assert np.mean(counts) == pytest.approx(0.01 * 1e5, rel=0.05)

    def test_version_monotone(self, rng):
        model = PoissonUpdateModel(lambda page: 0.05, 1, rng, horizon=1e4)
        times = np.linspace(0, 1e4, 97)
        versions = [model.version_at(0, t) for t in times]
        assert versions == sorted(versions)

    def test_beyond_horizon_rejected(self, rng):
        model = PoissonUpdateModel(lambda page: 0.1, 1, rng, horizon=100.0)
        with pytest.raises(ConfigurationError):
            model.version_at(0, 200.0)

    def test_negative_rate_rejected(self, rng):
        model = PoissonUpdateModel(lambda page: -1.0, 1, rng)
        with pytest.raises(ConfigurationError):
            model.version_at(0, 1.0)


def build_engine(
    update_interval=50.0,
    report_interval=None,
    num_pages=20,
    cache_capacity=5,
    rng=None,
):
    layout = DiskLayout.flat(num_pages)
    schedule = flat_program(num_pages)
    mapping = LogicalPhysicalMapping(layout)
    cache = LRUPolicy(cache_capacity, PolicyContext())
    updates = PeriodicUpdateModel.uniform(update_interval, num_pages, rng=rng)
    return VolatileEngine(
        schedule=schedule,
        mapping=mapping,
        layout=layout,
        cache=cache,
        updates=updates,
        think_time=2.0,
        report_interval=report_interval,
    )


class TestVolatileEngine:
    def test_static_data_never_stale(self):
        engine = build_engine(update_interval=float("inf"))
        trace = RequestTrace.from_pages([1, 2, 1, 2, 1, 2] * 10)
        outcome = engine.run_trace(trace)
        assert outcome.stale_reads == 0
        assert outcome.stale_fraction == 0.0

    def test_volatile_data_served_stale_without_reports(self, rng):
        engine = build_engine(update_interval=10.0, rng=rng)
        trace = RequestTrace.from_pages([1] * 200)
        outcome = engine.run_trace(trace)
        # Page 1 is hit from cache essentially forever while being
        # updated every 10 units: most hits are stale.
        assert outcome.stale_fraction > 0.5
        assert outcome.invalidations_applied == 0

    def test_reports_bound_staleness(self, rng):
        without = build_engine(update_interval=25.0, rng=rng)
        trace = RequestTrace.from_pages([1, 2, 3] * 120)
        outcome_without = without.run_trace(trace)

        with_reports = build_engine(
            update_interval=25.0, report_interval=20.0,
            rng=np.random.default_rng(1234),  # same phases as `rng` fixture
        )
        outcome_with = with_reports.run_trace(trace)
        assert outcome_with.stale_fraction < outcome_without.stale_fraction
        assert outcome_with.invalidations_applied > 0
        assert outcome_with.reports_heard > 0

    def test_invalidation_causes_refetch(self, rng):
        engine = build_engine(
            update_interval=10.0, report_interval=10.0, rng=rng
        )
        trace = RequestTrace.from_pages([1] * 100)
        outcome = engine.run_trace(trace)
        # Repeated requests for one page would be 99 hits on static
        # data; invalidations force periodic re-fetches.
        assert outcome.counters.misses > 1

    def test_hit_rate_cost_of_reports(self, rng):
        quiet = build_engine(update_interval=30.0, rng=rng)
        noisy = build_engine(
            update_interval=30.0, report_interval=15.0,
            rng=np.random.default_rng(1234),
        )
        trace = RequestTrace.from_pages(list(range(5)) * 60)
        hit_without = quiet.run_trace(trace).counters.hit_rate
        hit_with = noisy.run_trace(trace).counters.hit_rate
        assert hit_with <= hit_without

    def test_warmup_excluded(self):
        engine = build_engine(update_interval=float("inf"))
        trace = RequestTrace.from_pages([1, 2, 3, 4])
        outcome = engine.run_trace(trace, warmup_requests=2)
        assert outcome.measured_requests == 2

    def test_report_interval_validation(self):
        with pytest.raises(ConfigurationError):
            build_engine(report_interval=0.0)

    def test_stale_fraction_empty(self):
        engine = build_engine(update_interval=float("inf"))
        trace = RequestTrace.from_pages([1])
        outcome = engine.run_trace(trace, warmup_requests=1)
        assert outcome.stale_fraction == 0.0
