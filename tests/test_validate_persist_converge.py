"""Tests for program validation, persistence, and convergence control."""

import pytest

from repro.core.disks import DiskLayout
from repro.core.programs import (
    _clustered_skewed_program as clustered_skewed_program,
    _flat_program as flat_program,
    _multidisk_program as multidisk_program,
)
from repro.core.schedule import BroadcastSchedule
from repro.core.validate import validate_program
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.convergence import run_until_converged
from repro.experiments.figures import FigureData
from repro.experiments.persistence import (
    config_from_dict,
    figure_from_dict,
    figure_to_dict,
    load_figure,
    result_to_dict,
    save,
)
from repro.experiments.runner import run_experiment


class TestValidateProgram:
    def test_multidisk_program_passes_all_desiderata(self):
        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        report = validate_program(multidisk_program(layout))
        assert report.has_fixed_interarrivals
        assert report.total_bus_stop_penalty == 0.0
        assert "fixed inter-arrival times: yes" in report.summary()

    def test_clustered_program_flagged(self):
        program = clustered_skewed_program({0: 2, 1: 1, 2: 1})
        report = validate_program(program)
        assert not report.has_fixed_interarrivals
        assert 0 in report.variable_gap_pages
        assert report.variable_gap_pages[0] == pytest.approx(0.25)
        assert "NO" in report.summary()

    def test_effective_period_detects_repetition(self):
        doubled = BroadcastSchedule([0, 1, 2, 0, 1, 2])
        report = validate_program(doubled)
        assert report.period == 6
        assert report.effective_period == 3
        assert not report.is_tight
        assert "effective 3" in report.summary()

    def test_flat_program_is_tight(self):
        report = validate_program(flat_program(7))
        assert report.is_tight
        assert report.utilisation == 1.0

    def test_heavy_padding_noted(self):
        layout = DiskLayout((1, 9), (9, 1))  # 9 chunks of 1 page: no pad
        padded = DiskLayout((1, 10), (7, 1))  # 10/7 -> chunks of 2, 4 pads
        report = validate_program(multidisk_program(padded))
        if report.utilisation < 0.95:
            assert any("padding" in note for note in report.notes)
        # Sanity: the cleaner layout gives full utilisation.
        clean = validate_program(multidisk_program(layout))
        assert clean.utilisation > report.utilisation - 1e-9


class TestPersistence:
    @pytest.fixture
    def figure(self):
        data = FigureData("Fig T", "round trip", "x", [1, 2, 3])
        data.add_series("a", [1.0, 2.0, 3.0])
        data.add_series("b", [9.0, 8.0, 7.0])
        data.notes = "hello"
        return data

    def test_figure_round_trip_in_memory(self, figure):
        rebuilt = figure_from_dict(figure_to_dict(figure))
        assert rebuilt.figure == figure.figure
        assert rebuilt.series == figure.series
        assert rebuilt.notes == "hello"

    def test_figure_round_trip_on_disk(self, figure, tmp_path):
        path = tmp_path / "figure.json"
        save(figure, str(path))
        rebuilt = load_figure(str(path))
        assert rebuilt.series == figure.series

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            figure_from_dict({"schema": "bogus"})

    def test_result_round_trip(self, mini_config, tmp_path):
        result = run_experiment(mini_config)
        payload = result_to_dict(result)
        assert payload["mean_response_time"] == result.mean_response_time
        config = config_from_dict(payload["config"])
        assert config == mini_config
        path = tmp_path / "result.json"
        save(result, str(path))
        assert path.exists()

    def test_unknown_payload_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save({"not": "supported"}, str(tmp_path / "x.json"))


class TestConvergence:
    def small_config(self, **overrides):
        base = dict(
            disk_sizes=(50, 200, 250),
            delta=3,
            cache_size=50,
            policy="LIX",
            noise=0.30,
            offset=50,
            access_range=100,
            region_size=10,
            num_requests=500,
            seed=7,
        )
        base.update(overrides)
        return ExperimentConfig(**base)

    def test_converges_on_steady_configuration(self):
        result = run_until_converged(
            self.small_config(), chunk=800, window_chunks=4,
            rtol=0.10, max_requests=40_000,
        )
        assert result.converged
        assert result.requests_measured >= 4 * 800
        assert result.mean_response_time > 0

    def test_cap_reported_when_not_converged(self):
        result = run_until_converged(
            self.small_config(), chunk=500, window_chunks=6,
            rtol=1e-9,  # impossible tolerance
            max_requests=3_000,
        )
        assert not result.converged
        assert "CAP HIT" in result.summary()

    def test_converged_mean_close_to_fixed_protocol(self):
        converged = run_until_converged(
            self.small_config(), chunk=1000, window_chunks=4,
            rtol=0.05, max_requests=60_000,
        )
        fixed = run_experiment(self.small_config(num_requests=8_000))
        assert converged.mean_response_time == pytest.approx(
            fixed.mean_response_time, rel=0.25
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_until_converged(self.small_config(), chunk=0)
        with pytest.raises(ConfigurationError):
            run_until_converged(self.small_config(), window_chunks=1)
        with pytest.raises(ConfigurationError):
            run_until_converged(
                self.small_config(), chunk=100, max_requests=50
            )
