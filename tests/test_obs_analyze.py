"""Trace analytics (repro.obs.analyze).

Synthetic record streams pin each section's arithmetic exactly; a real
traced run then checks the sections compose into one document whose
numbers are internally consistent (occupancy bounded by the cache
capacity, shares summing to one).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.obs.analyze import (
    ANALYZE_SCHEMA,
    analyze,
    client_latency,
    render_analysis,
    residency_timeline,
    response_by_disk,
    slot_utilization,
)
from repro.obs.trace import MemorySink, Tracer


def wait(t, physical, amount, client=None):
    record = {"kind": "client.wait", "t": t, "physical": physical,
              "wait": amount}
    if client is not None:
        record["client"] = client
    return record


class TestResponseByDisk:
    def test_cumulative_boundaries_attribute_pages(self):
        records = [
            wait(1.0, 0, 1.0),   # disk1: pages 0..1
            wait(2.0, 1, 3.0),
            wait(3.0, 2, 10.0),  # disk2: pages 2..5
            wait(4.0, 6, 20.0),  # disk3: pages 6..13
            wait(5.0, 99, 5.0),  # beyond the declared layout
        ]
        section = response_by_disk(records, disk_sizes=(2, 4, 8))
        assert section["waits"] == 5
        disks = section["disks"]
        assert set(disks) == {"disk1", "disk2", "disk3", "beyond"}
        assert disks["disk1"]["count"] == 2
        assert disks["disk1"]["mean"] == pytest.approx(2.0)
        assert disks["disk2"]["mean"] == pytest.approx(10.0)
        assert disks["disk3"]["max"] == pytest.approx(20.0)
        assert sum(b["share"] for b in disks.values()) == pytest.approx(1.0)

    def test_without_sizes_everything_lands_in_one_bucket(self):
        section = response_by_disk([wait(1.0, 3, 2.0), wait(2.0, 9, 4.0)])
        assert set(section["disks"]) == {"all"}
        assert section["disks"]["all"]["mean"] == pytest.approx(3.0)

    def test_no_waits_no_section(self):
        assert response_by_disk([{"kind": "sim.event", "t": 1.0}]) is None


class TestSlotUtilization:
    def test_full_span_is_fully_utilized(self):
        records = [
            {"kind": "channel.deliver", "t": float(t), "page": t % 3}
            for t in range(1, 7)
        ]
        section = slot_utilization(records)
        assert section["delivered_slots"] == 6
        assert section["observed_span"] == pytest.approx(6.0)
        assert section["utilization"] == pytest.approx(1.0)
        assert section["distinct_pages"] == 3

    def test_sparse_observation_lowers_utilization(self):
        records = [
            {"kind": "channel.deliver", "t": 1.0, "page": 0},
            {"kind": "channel.deliver", "t": 10.0, "page": 0},
        ]
        section = slot_utilization(records)
        assert section["utilization"] == pytest.approx(0.2)

    def test_top_pages_ranked_by_deliveries_then_id(self):
        records = (
            [{"kind": "channel.deliver", "t": float(t), "page": 7}
             for t in range(1, 4)]
            + [{"kind": "channel.deliver", "t": float(t), "page": 2}
               for t in range(4, 7)]
            + [{"kind": "channel.deliver", "t": 7.0, "page": 5}]
        )
        section = slot_utilization(records, top=2)
        assert [row["page"] for row in section["top_pages"]] == [2, 7]
        assert section["top_pages"][0]["bandwidth_share"] == pytest.approx(
            3 / 7
        )


class TestResidencyTimeline:
    def test_victim_leaves_at_admission(self):
        # capacity-1 cache: each admission names the page it displaces.
        # The paired cache.evict record follows at the same instant; the
        # occupancy peak must never read capacity + 1.
        records = [
            {"kind": "cache.admit", "t": 0.0, "page": 1, "victim": None},
            {"kind": "cache.admit", "t": 5.0, "page": 2, "victim": 1},
            {"kind": "cache.evict", "t": 5.0, "page": 1},
            {"kind": "cache.admit", "t": 8.0, "page": 3, "victim": 2},
            {"kind": "cache.evict", "t": 8.0, "page": 2},
        ]
        section = residency_timeline(records)
        assert section["occupancy_max"] == pytest.approx(1.0)
        assert section["events"] == 5
        longest = {row["page"]: row["resident_time"]
                   for row in section["longest_resident"]}
        assert longest[1] == pytest.approx(5.0)
        assert longest[2] == pytest.approx(3.0)

    def test_rejected_admission_never_counts(self):
        records = [
            {"kind": "cache.admit", "t": 0.0, "page": 1, "victim": None},
            {"kind": "cache.admit", "t": 1.0, "page": 2, "victim": 2},
        ]
        section = residency_timeline(records)
        assert section["occupancy_max"] == pytest.approx(1.0)

    def test_no_cache_records_no_section(self):
        assert residency_timeline([{"kind": "sim.event", "t": 0.0}]) is None


class TestClientLatency:
    def test_equal_clients_score_perfect_fairness(self):
        records = []
        for client in ("a", "b"):
            records.append({"kind": "client.request", "t": 1.0,
                            "client": client})
            records.append({"kind": "client.miss", "t": 1.0, "page": 0,
                            "client": client})
            records.append(wait(2.0, 0, 4.0, client=client))
        section = client_latency(records)
        assert section["clients"] == 2
        assert section["fairness"] == pytest.approx(1.0)

    def test_slowest_client_ranks_first(self):
        records = [
            wait(1.0, 0, 10.0, client="slow"),
            wait(2.0, 0, 1.0, client="fast"),
        ]
        section = client_latency(records)
        assert section["slowest"][0]["client"] == "slow"
        assert section["fairness"] < 1.0

    def test_hit_rate_per_client(self):
        records = [
            {"kind": "client.request", "t": 1.0, "client": "a"},
            {"kind": "client.hit", "t": 1.0, "page": 0, "client": "a"},
            {"kind": "client.request", "t": 2.0, "client": "a"},
            {"kind": "client.miss", "t": 2.0, "page": 1, "client": "a"},
        ]
        (row,) = client_latency(records)["slowest"]
        assert row["hit_rate"] == pytest.approx(0.5)
        assert row["requests"] == 2

    def test_no_client_records_no_section(self):
        assert client_latency([{"kind": "sim.event", "t": 0.0}]) is None


class TestAnalyzeDocument:
    def test_only_applicable_sections_appear(self):
        document = analyze([wait(1.0, 0, 2.0)])
        assert document["schema"] == ANALYZE_SCHEMA
        assert "response_by_disk" in document
        assert "client_latency" in document
        assert "slot_utilization" not in document
        assert "cache_residency" not in document

    def test_real_trace_is_internally_consistent(self, mini_config):
        sink = MemorySink(capacity=None)
        with Tracer(sink) as tracer:
            run_experiment(mini_config, tracer=tracer)
        records = [record.to_dict() for record in sink.records]
        document = analyze(
            records, disk_sizes=mini_config.disk_sizes
        )
        assert document["cache_residency"]["occupancy_max"] <= (
            mini_config.cache_size
        )
        shares = [
            block["share"]
            for block in document["response_by_disk"]["disks"].values()
        ]
        assert sum(shares) == pytest.approx(1.0)
        assert document["client_latency"]["fairness"] == pytest.approx(1.0)

    def test_render_covers_every_section(self, mini_config):
        sink = MemorySink(capacity=None)
        with Tracer(sink) as tracer:
            run_experiment(mini_config, tracer=tracer)
        records = [record.to_dict() for record in sink.records]
        text = render_analysis(analyze(records, disk_sizes=(50, 200, 250)))
        for needle in ("response time by disk", "cache residency",
                       "client latency attribution", "Jain fairness"):
            assert needle in text

    def test_render_empty_document(self):
        assert "no analyzable records" in render_analysis(
            analyze([{"kind": "sim.event", "t": 0.0}])
        )
