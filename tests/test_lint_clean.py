"""Tier-1 gate: the shipped tree is free of simulation-correctness
violations, and stays that way.

This is the test that makes repro.lint a *gate* rather than advice:
any PR that introduces a wall-clock read, a stray RNG, a float-time
equality, a mutable default, an over-broad except, or an incomplete
registered cache policy fails here before CI even reaches the
simulator suites.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, load_config
from repro.lint.cli import EXIT_CLEAN, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _config():
    return load_config(pyproject=REPO_ROOT / "pyproject.toml")


def _report(diagnostics):
    return "lint violations in the shipped tree:\n" + "\n".join(
        d.format() for d in diagnostics
    )


class TestCleanBaseline:
    def test_src_repro_is_violation_free(self):
        diagnostics = lint_paths([REPO_ROOT / "src" / "repro"], _config())
        assert diagnostics == [], _report(diagnostics)

    def test_tests_are_violation_free(self):
        diagnostics = lint_paths([REPO_ROOT / "tests"], _config())
        assert diagnostics == [], _report(diagnostics)

    def test_benchmarks_and_examples_are_violation_free(self):
        diagnostics = lint_paths(
            [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"], _config()
        )
        assert diagnostics == [], _report(diagnostics)

    def test_ci_gate_invocation_is_clean(self, monkeypatch, capsys):
        # Exactly what .github/workflows/ci.yml runs.
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src", "tests"]) == EXIT_CLEAN

    def test_config_is_loaded_from_pyproject(self):
        config = _config()
        assert config.scope == "src/repro"
        assert config.is_allowed("RL002", "src/repro/sim/rng.py")
        assert config.is_allowed("RL001", "src/repro/obs/clock.py")
        # The old blanket allowance for the runner is gone: its wall
        # clock now flows through the obs clock shim.
        assert not config.is_allowed("RL001", "src/repro/experiments/runner.py")
        assert not config.is_allowed("RL002", "src/repro/core/disks.py")
