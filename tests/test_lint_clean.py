"""Tier-1 gate: the shipped tree is free of simulation-correctness
violations, and stays that way.

This is the test that makes repro.lint a *gate* rather than advice:
any PR that introduces a wall-clock read, a stray RNG, a float-time
equality, a mutable default, an over-broad except, an incomplete
registered cache policy, an unseeded generator flowing into simulation
code, a parallel-unsafe module-state write, a platform-ordered fold,
or a dead suppression fails here before CI even reaches the simulator
suites.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, load_config
from repro.lint.cli import EXIT_CLEAN, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _config():
    return load_config(pyproject=REPO_ROOT / "pyproject.toml")


def _report(diagnostics):
    return "lint violations in the shipped tree:\n" + "\n".join(
        d.format() for d in diagnostics
    )


class TestCleanBaseline:
    def test_src_repro_is_violation_free(self):
        diagnostics = lint_paths([REPO_ROOT / "src" / "repro"], _config())
        assert diagnostics == [], _report(diagnostics)

    def test_tests_are_violation_free(self):
        diagnostics = lint_paths([REPO_ROOT / "tests"], _config())
        assert diagnostics == [], _report(diagnostics)

    def test_benchmarks_and_examples_are_violation_free(self):
        diagnostics = lint_paths(
            [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"], _config()
        )
        assert diagnostics == [], _report(diagnostics)

    def test_scripts_are_violation_free(self):
        diagnostics = lint_paths([REPO_ROOT / "scripts"], _config())
        assert diagnostics == [], _report(diagnostics)

    def test_whole_tree_cross_module_pass_is_clean(self):
        # The cross-module rules (RL010-RL012) see the most when every
        # linted tree is analyzed together: worker roots in src/repro
        # plus the harnesses that drive them.
        diagnostics = lint_paths(
            [
                REPO_ROOT / "src" / "repro",
                REPO_ROOT / "scripts",
                REPO_ROOT / "benchmarks",
            ],
            _config(),
        )
        assert diagnostics == [], _report(diagnostics)

    def test_ci_gate_invocation_is_clean(self, monkeypatch, capsys):
        # Exactly what .github/workflows/ci.yml runs.
        monkeypatch.chdir(REPO_ROOT)
        assert main(
            ["src", "tests", "scripts", "benchmarks", "--no-cache"]
        ) == EXIT_CLEAN

    def test_config_is_loaded_from_pyproject(self):
        config = _config()
        assert config.scope == ("src/repro", "scripts", "benchmarks")
        assert config.is_allowed("RL002", "src/repro/sim/rng.py")
        assert config.is_allowed("RL001", "src/repro/obs/clock.py")
        # Benchmarks time things on purpose; the whole tree is
        # allowlisted for the wall-clock rule (directory pattern).
        assert config.is_allowed("RL001", "benchmarks/bench_sweep.py")
        # The executor's per-worker build cache is the one sanctioned
        # module-state write reachable from a worker.
        assert config.is_allowed("RL011", "src/repro/exec/executor.py")
        # The old blanket allowance for the runner is gone: its wall
        # clock now flows through the obs clock shim.
        assert not config.is_allowed("RL001", "src/repro/experiments/runner.py")
        assert not config.is_allowed("RL002", "src/repro/core/disks.py")
        for code in ("RL010", "RL011", "RL012", "RL013", "RL014"):
            assert config.is_enabled(code)
