"""Property-based tests (hypothesis) for cache policy invariants.

Checked for every policy over arbitrary request strings:

* capacity is never exceeded;
* a page reported resident by ``lookup`` really is served (hits after
  admits are consistent);
* ``admit`` returns exactly the page that ended up outside the cache;
* the resident set only changes through admits.

Plus policy-specific laws: P's steady-state contents are the hottest
pages seen; PIX with uniform frequency equals P decision-for-decision;
LIX on one flat disk equals LRU decision-for-decision.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import PolicyContext
from repro.cache.lix import LPolicy, LIXPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.lruk import LRUKPolicy
from repro.cache.p import PPolicy
from repro.cache.pix import PIXPolicy
from repro.cache.twoq import TwoQPolicy

PAGE_COUNT = 24


def full_context(num_disks=3):
    """A context with every oracle, over PAGE_COUNT synthetic pages."""
    return PolicyContext(
        probability=lambda page: (PAGE_COUNT - page) / 300.0,
        frequency=lambda page: 0.05 + 0.01 * (page % 5),
        disk_of=lambda page: page % num_disks,
        num_disks=num_disks,
    )


POLICY_FACTORIES = {
    "P": lambda cap: PPolicy(cap, full_context()),
    "PIX": lambda cap: PIXPolicy(cap, full_context()),
    "LRU": lambda cap: LRUPolicy(cap, full_context()),
    "L": lambda cap: LPolicy(cap, full_context()),
    "LIX": lambda cap: LIXPolicy(cap, full_context()),
    "LRU-K": lambda cap: LRUKPolicy(cap, full_context(), k=2),
    "2Q": lambda cap: TwoQPolicy(cap, full_context()),
}

requests_strategy = st.lists(
    st.integers(min_value=0, max_value=PAGE_COUNT - 1),
    min_size=1,
    max_size=200,
)


class TestUniversalInvariants:
    @given(
        st.sampled_from(sorted(POLICY_FACTORIES)),
        st.integers(min_value=1, max_value=12),
        requests_strategy,
    )
    @settings(max_examples=200, deadline=None)
    def test_capacity_never_exceeded(self, name, capacity, requests):
        policy = POLICY_FACTORIES[name](capacity)
        time = 0.0
        for page in requests:
            time += 2.0
            if not policy.lookup(page, time):
                policy.admit(page, time)
            assert len(policy) <= capacity

    @given(
        st.sampled_from(sorted(POLICY_FACTORIES)),
        st.integers(min_value=1, max_value=12),
        requests_strategy,
    )
    @settings(max_examples=200, deadline=None)
    def test_admit_accounts_for_every_page(self, name, capacity, requests):
        # After each miss, the page is resident unless admit returned it,
        # and any victim is really gone.
        policy = POLICY_FACTORIES[name](capacity)
        time = 0.0
        for page in requests:
            time += 2.0
            if policy.lookup(page, time):
                assert page in policy
            else:
                outside = policy.admit(page, time)
                if outside == page:
                    assert page not in policy
                else:
                    assert page in policy
                    if outside is not None:
                        assert outside not in policy

    @given(
        st.sampled_from(sorted(POLICY_FACTORIES)),
        requests_strategy,
    )
    @settings(max_examples=120, deadline=None)
    def test_repeat_request_is_always_a_hit_for_admitting_policies(
        self, name, requests
    ):
        # With capacity >= pages, everything fits: once seen, always hit.
        policy = POLICY_FACTORIES[name](PAGE_COUNT)
        time = 0.0
        seen = set()
        for page in requests:
            time += 2.0
            hit = policy.lookup(page, time)
            if page in seen:
                assert hit, (name, page)
            if not hit:
                policy.admit(page, time)
                seen.add(page)

    @given(
        st.sampled_from(sorted(POLICY_FACTORIES)),
        st.integers(min_value=1, max_value=8),
        requests_strategy,
    )
    @settings(max_examples=100, deadline=None)
    def test_pages_iterates_exactly_the_residents(self, name, capacity, requests):
        policy = POLICY_FACTORIES[name](capacity)
        time = 0.0
        for page in requests:
            time += 2.0
            if not policy.lookup(page, time):
                policy.admit(page, time)
        resident = list(policy.pages())
        assert len(resident) == len(policy)
        for page in resident:
            assert page in policy


class TestPolicyLaws:
    @given(requests_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_p_holds_hottest_pages_seen(self, requests, capacity):
        policy = PPolicy(capacity, full_context())
        time = 0.0
        seen = set()
        for page in requests:
            time += 2.0
            if not policy.lookup(page, time):
                policy.admit(page, time)
            seen.add(page)
        # P keeps the highest-probability subset of everything offered.
        hottest = sorted(seen)[: capacity]  # page order = hotness order
        assert set(policy.pages()) == set(hottest[: len(policy)])

    @given(requests_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_pix_equals_p_under_uniform_frequency(self, requests, capacity):
        context_p = PolicyContext(
            probability=lambda page: (PAGE_COUNT - page) / 300.0
        )
        context_pix = PolicyContext(
            probability=lambda page: (PAGE_COUNT - page) / 300.0,
            frequency=lambda page: 0.125,
        )
        p = PPolicy(capacity, context_p)
        pix = PIXPolicy(capacity, context_pix)
        time = 0.0
        for page in requests:
            time += 2.0
            hit_p = p.lookup(page, time)
            hit_pix = pix.lookup(page, time)
            assert hit_p == hit_pix
            if not hit_p:
                assert p.admit(page, time) == pix.admit(page, time)

    @given(requests_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_lix_equals_lru_on_flat_single_disk(self, requests, capacity):
        context = PolicyContext(
            frequency=lambda page: 0.125,
            disk_of=lambda page: 0,
            num_disks=1,
        )
        lix = LIXPolicy(capacity, context)
        lru = LRUPolicy(capacity)
        time = 0.0
        for page in requests:
            time += 2.0
            hit_lix = lix.lookup(page, time)
            hit_lru = lru.lookup(page, time)
            assert hit_lix == hit_lru
            if not hit_lix:
                assert lix.admit(page, time) == lru.admit(page, time)

    @given(requests_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_l_equals_lix_under_uniform_frequency(self, requests, capacity):
        def build(cls):
            return cls(
                capacity,
                PolicyContext(
                    frequency=lambda page: 0.25,
                    disk_of=lambda page: page % 3,
                    num_disks=3,
                ),
            )

        lix, l_policy = build(LIXPolicy), build(LPolicy)
        time = 0.0
        for page in requests:
            time += 2.0
            hit_a = lix.lookup(page, time)
            hit_b = l_policy.lookup(page, time)
            assert hit_a == hit_b
            if not hit_a:
                assert lix.admit(page, time) == l_policy.admit(page, time)
