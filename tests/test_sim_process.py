"""Unit tests for generator processes (repro.sim.process)."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import AllOf, AnyOf, Interrupt, Process


class TestProcessBasics:
    def test_process_runs_to_completion(self):
        sim = Simulator()
        log = []

        def worker():
            log.append(("start", sim.now))
            yield sim.timeout(5.0)
            log.append(("middle", sim.now))
            yield sim.timeout(3.0)
            log.append(("end", sim.now))

        sim.process(worker())
        sim.run()
        assert log == [("start", 0.0), ("middle", 5.0), ("end", 8.0)]

    def test_process_return_value_becomes_event_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "result"

        process = sim.process(worker())
        sim.run()
        assert process.processed
        assert process.value == "result"

    def test_process_is_alive_until_generator_returns(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(10.0)

        process = sim.process(worker())
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_yield_event_from_other_simulator_raises(self):
        sim_a = Simulator()
        sim_b = Simulator()

        def bad():
            yield sim_b.timeout(1.0)

        sim_a.process(bad())
        with pytest.raises(SimulationError):
            sim_a.run()

    def test_timeout_value_is_sent_into_generator(self):
        sim = Simulator()
        received = []

        def worker():
            value = yield sim.timeout(1.0, value="hello")
            received.append(value)

        sim.process(worker())
        sim.run()
        assert received == ["hello"]


class TestProcessComposition:
    def test_process_waits_for_another_process(self):
        sim = Simulator()
        log = []

        def inner():
            yield sim.timeout(4.0)
            return "inner-done"

        def outer():
            result = yield sim.process(inner())
            log.append((result, sim.now))

        sim.process(outer())
        sim.run()
        assert log == [("inner-done", 4.0)]

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def ticker(name, interval, count):
            for _ in range(count):
                yield sim.timeout(interval)
                log.append((name, sim.now))

        sim.process(ticker("fast", 1.0, 3))
        sim.process(ticker("slow", 2.0, 2))
        sim.run()
        assert log == [
            ("fast", 1.0), ("slow", 2.0), ("fast", 2.0),
            ("fast", 3.0), ("slow", 4.0),
        ]

    def test_waiting_on_already_processed_event_resumes_immediately(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("early")
        sim.run()
        log = []

        def late_joiner():
            value = yield done
            log.append((value, sim.now))

        sim.process(late_joiner())
        sim.run()
        assert log == [("early", 0.0)]


class TestInterrupts:
    def test_interrupt_wakes_process_with_cause(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                log.append((interrupt.cause, sim.now))

        process = sim.process(sleeper())
        sim.timeout(5.0).add_callback(lambda ev: process.interrupt("wake up"))
        sim.run()
        assert log == [("wake up", 5.0)]

    def test_unhandled_interrupt_fails_the_process(self):
        sim = Simulator()

        def sleeper():
            yield sim.timeout(100.0)

        process = sim.process(sleeper())
        sim.timeout(1.0).add_callback(lambda ev: process.interrupt())
        sim.run()
        assert process.processed
        assert not process.ok
        assert isinstance(process.value, Interrupt)

    def test_interrupting_finished_process_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_process_continues_after_handling_interrupt(self):
        sim = Simulator()
        log = []

        def resilient():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(2.0)
            log.append(sim.now)

        process = sim.process(resilient())
        sim.timeout(5.0).add_callback(lambda ev: process.interrupt())
        sim.run()
        assert log == [7.0]


class TestAnyOfAllOf:
    def test_anyof_fires_on_first_event(self):
        sim = Simulator()
        log = []

        def waiter():
            result = yield AnyOf(sim, [sim.timeout(3.0, "a"), sim.timeout(7.0, "b")])
            log.append((sorted(result.values()), sim.now))

        sim.process(waiter())
        sim.run()
        assert log == [(["a"], 3.0)]

    def test_allof_waits_for_every_event(self):
        sim = Simulator()
        log = []

        def waiter():
            result = yield AllOf(sim, [sim.timeout(3.0, "a"), sim.timeout(7.0, "b")])
            log.append((sorted(result.values()), sim.now))

        sim.process(waiter())
        sim.run()
        assert log == [(["a", "b"], 7.0)]

    def test_anyof_with_no_events_fires_immediately(self):
        sim = Simulator()
        any_of = AnyOf(sim, [])
        sim.run()
        assert any_of.processed
        assert any_of.value == {}

    def test_allof_with_no_events_fires_immediately(self):
        sim = Simulator()
        all_of = AllOf(sim, [])
        sim.run()
        assert all_of.processed
