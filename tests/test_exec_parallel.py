"""Parallel determinism: executors must be answer-invariant.

The contract under test (ISSUE 3, ``docs/ARCHITECTURE.md``): a sweep's
per-point means, samples, metrics snapshots, and manifests (minus
wall-clock fields) are byte-identical whichever executor runs it and
however many workers it uses.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    SweepCheckpoint,
    plan_sweep,
    resolve_executor,
    usable_cores,
)
from repro.exec import executor as executor_module
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import sweep_results
from repro.obs.manifest import build_sweep_manifest, strip_wall_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import MemorySink, Tracer


def small_config(**overrides):
    base = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=300,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def small_grid():
    return [
        small_config(delta=delta, noise=noise)
        for delta in (1, 3)
        for noise in (0.0, 0.45)
    ]


def canonical(manifest):
    """Manifest → canonical JSON with wall-clock fields removed."""
    return json.dumps(strip_wall_clock(manifest), sort_keys=True)


class TestExecutorEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_parallel_matches_serial(self, jobs):
        plans = plan_sweep(small_grid(), collect_responses=True)
        serial = SerialExecutor().run(plans)
        parallel = ParallelExecutor(jobs=jobs).run(plans)
        assert [r.mean_response_time for r in serial] == [
            r.mean_response_time for r in parallel
        ]
        assert [r.samples for r in serial] == [r.samples for r in parallel]
        assert [r.response_stats._m2 for r in serial] == [
            r.response_stats._m2 for r in parallel
        ]
        assert canonical(build_sweep_manifest(serial)) == canonical(
            build_sweep_manifest(parallel)
        )

    def test_sweep_results_jobs_parameter(self):
        configs = small_grid()
        serial = sweep_results(configs)
        parallel = sweep_results(configs, jobs=2)
        assert [r.mean_response_time for r in serial] == [
            r.mean_response_time for r in parallel
        ]

    def test_metrics_fold_identically(self):
        configs = small_grid()
        serial_metrics = MetricsRegistry()
        parallel_metrics = MetricsRegistry()
        sweep_results(configs, metrics=serial_metrics)
        sweep_results(configs, metrics=parallel_metrics, jobs=3)
        assert serial_metrics.snapshot() == parallel_metrics.snapshot()

    def test_progress_fires_in_plan_order(self):
        configs = small_grid()
        seen = []
        sweep_results(
            configs,
            jobs=2,
            progress=lambda done, total, result: seen.append(
                (done, total, result.config.delta, result.config.noise)
            ),
        )
        expected = [
            (index + 1, len(configs), config.delta, config.noise)
            for index, config in enumerate(configs)
        ]
        assert seen == expected

    def test_resolve_executor(self):
        assert isinstance(resolve_executor(1), SerialExecutor)
        assert isinstance(resolve_executor(4), ParallelExecutor)
        assert resolve_executor(4).jobs == 4
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)

    @settings(max_examples=5, deadline=None)
    @given(
        jobs=st.integers(min_value=1, max_value=4),
        deltas=st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=1, max_size=4, unique=True,
        ),
        seed=st.integers(min_value=1, max_value=2**16),
    )
    def test_property_any_grid_any_worker_count(self, jobs, deltas, seed):
        configs = [
            small_config(delta=delta, seed=seed, num_requests=150)
            for delta in deltas
        ]
        plans = plan_sweep(configs, collect_responses=True)
        serial = SerialExecutor().run(plans)
        parallel = ParallelExecutor(jobs=jobs).run(plans)
        assert [r.mean_response_time for r in serial] == [
            r.mean_response_time for r in parallel
        ]
        assert [r.samples for r in serial] == [r.samples for r in parallel]


class TestCoreClamp:
    """The 1-core pessimization fix: jobs never exceed usable cores."""

    def test_usable_cores_is_positive(self):
        assert usable_cores() >= 1

    def test_effective_jobs_clamps_to_usable_cores(self, monkeypatch):
        monkeypatch.setattr(executor_module, "usable_cores", lambda: 2)
        assert ParallelExecutor(jobs=16).effective_jobs() == 2
        assert ParallelExecutor(jobs=2).effective_jobs() == 2
        assert ParallelExecutor(jobs=1).effective_jobs() == 1

    def test_single_core_host_never_creates_a_pool(self, monkeypatch):
        monkeypatch.setattr(executor_module, "usable_cores", lambda: 1)

        def forbidden_pool(*args, **kwargs):
            raise AssertionError("pool created on a single-core host")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", forbidden_pool
        )
        plans = plan_sweep(small_grid(), collect_responses=True)
        results = ParallelExecutor(jobs=4).run(plans)
        reference = SerialExecutor().run(plans)
        assert [r.samples for r in results] == [
            r.samples for r in reference
        ]

    def test_oversubscribed_jobs_use_clamped_worker_count(self, monkeypatch):
        monkeypatch.setattr(executor_module, "usable_cores", lambda: 2)
        seen = {}
        real_pool = executor_module.ProcessPoolExecutor

        class SpyPool(real_pool):
            def __init__(self, max_workers=None, **kwargs):
                seen["max_workers"] = max_workers
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", SpyPool)
        plans = plan_sweep(small_grid())
        ParallelExecutor(jobs=16).run(plans)
        assert seen["max_workers"] == 2


class TestTracerFallback:
    def test_enabled_tracer_runs_serially_with_identical_results(self):
        configs = small_grid()[:2]
        sink = MemorySink()
        tracer = Tracer(sink)
        traced = sweep_results(configs, tracer=tracer, jobs=4)
        plain = sweep_results(configs)
        assert [r.mean_response_time for r in traced] == [
            r.mean_response_time for r in plain
        ]
        assert len(sink) > 0  # records landed in the in-process sink

    def test_cross_engine_equivalence_with_tracer(self):
        config = small_config(num_requests=200)
        fast_sink, process_sink = MemorySink(), MemorySink()
        fast = sweep_results(
            [config], engine="fast", tracer=Tracer(fast_sink), jobs=2,
            collect_responses=True,
        )[0]
        process = sweep_results(
            [config], engine="process", tracer=Tracer(process_sink), jobs=2,
            collect_responses=True,
        )[0]
        assert fast.samples == process.samples
        assert fast.hit_rate == process.hit_rate
        # Both engines emitted per-request client records in sim order.
        fast_hits = [
            r for r in fast_sink.records if r.kind.startswith("client.")
        ]
        process_hits = [
            r for r in process_sink.records if r.kind.startswith("client.")
        ]
        assert [r.time for r in fast_hits] == sorted(
            r.time for r in fast_hits
        )
        assert len(process_hits) >= len(fast_hits)


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_exactly(self, tmp_path):
        configs = small_grid()
        path = os.fspath(tmp_path / "sweep.jsonl")
        first = SweepCheckpoint(path)
        SerialExecutor().run(plan_sweep(configs[:2]), checkpoint=first)
        assert len(first) == 2

        resumed = SweepCheckpoint(path)
        assert resumed.resumed == 2
        results = ParallelExecutor(jobs=2).run(
            plan_sweep(configs), checkpoint=resumed
        )
        reference = SerialExecutor().run(plan_sweep(configs))
        assert [r.mean_response_time for r in results] == [
            r.mean_response_time for r in reference
        ]
        assert [r.response_stats._m2 for r in results] == [
            r.response_stats._m2 for r in reference
        ]
        assert len(resumed) == len(configs)

    def test_journal_survives_grid_reordering(self, tmp_path):
        configs = small_grid()
        path = os.fspath(tmp_path / "sweep.jsonl")
        checkpoint = SweepCheckpoint(path)
        SerialExecutor().run(plan_sweep(configs), checkpoint=checkpoint)

        shuffled = list(reversed(configs))
        reopened = SweepCheckpoint(path)
        results = SerialExecutor().run(
            plan_sweep(shuffled), checkpoint=reopened
        )
        reference = SerialExecutor().run(plan_sweep(shuffled))
        assert [r.mean_response_time for r in results] == [
            r.mean_response_time for r in reference
        ]
        # Everything came from the journal: no new entries were added.
        assert len(reopened) == len(configs)

    def test_checkpoint_preserves_samples(self, tmp_path):
        config = small_config(num_requests=150)
        path = os.fspath(tmp_path / "one.jsonl")
        checkpoint = SweepCheckpoint(path)
        plans = plan_sweep([config], collect_responses=True)
        original = SerialExecutor().run(plans, checkpoint=checkpoint)[0]
        replayed = SweepCheckpoint(path).lookup(plans[0])
        assert replayed is not None
        assert replayed.samples == original.samples
        assert replayed.mean_response_time == original.mean_response_time
