"""Unit tests for the plan layer: RunPlan, seed derivation, build cache."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    BuildCache,
    RunPlan,
    derive_seed,
    execute_plan,
    plan_for,
    plan_sweep,
    structural_hash,
    structural_key,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def small_config(**overrides):
    base = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=300,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestRunPlan:
    def test_frozen_hashable_picklable(self):
        plan = plan_for(small_config(), engine="fast", index=3)
        assert hash(plan) == hash(
            RunPlan(config=small_config(), engine="fast", index=3)
        )
        with pytest.raises(Exception):
            plan.engine = "process"
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.config == plan.config

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            plan_for(small_config(), engine="quantum")

    def test_seed_is_config_seed(self):
        assert plan_for(small_config(seed=99)).seed == 99

    def test_fingerprint_ignores_index(self):
        a = plan_for(small_config(), index=0)
        b = plan_for(small_config(), index=7)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_tracks_work_identity(self):
        base = plan_for(small_config())
        assert base.fingerprint() != plan_for(
            small_config(seed=12)
        ).fingerprint()
        assert base.fingerprint() != plan_for(
            small_config(), engine="process"
        ).fingerprint()
        assert base.fingerprint() != plan_for(
            small_config(), collect_responses=True
        ).fingerprint()


class TestSeedDerivation:
    def test_deterministic_and_distinct(self):
        seeds = [derive_seed(42, index) for index in range(32)]
        assert seeds == [derive_seed(42, index) for index in range(32)]
        assert len(set(seeds)) == 32
        assert derive_seed(42, 0) != derive_seed(43, 0)

    def test_plan_sweep_default_keeps_config_seeds(self):
        configs = [small_config(seed=7), small_config(seed=9)]
        plans = plan_sweep(configs)
        assert [plan.seed for plan in plans] == [7, 9]
        assert [plan.index for plan in plans] == [0, 1]

    def test_plan_sweep_with_sweep_seed_derives_per_plan(self):
        configs = [small_config(), small_config(delta=4)]
        plans = plan_sweep(configs, sweep_seed=42)
        assert [plan.seed for plan in plans] == [
            derive_seed(42, 0), derive_seed(42, 1),
        ]
        # Re-planning the same grid re-derives the same seeds.
        again = plan_sweep(configs, sweep_seed=42)
        assert [plan.seed for plan in again] == [plan.seed for plan in plans]


class TestBuildCache:
    def test_structural_key_ignores_client_parameters(self):
        a = small_config(noise=0.0, seed=1, cache_size=10)
        b = small_config(noise=0.45, seed=2, cache_size=100)
        assert structural_key(a) == structural_key(b)
        assert structural_hash(a) == structural_hash(b)

    def test_structural_hash_tracks_broadcast_structure(self):
        base = small_config()
        assert structural_hash(base) != structural_hash(
            small_config(delta=4)
        )
        assert structural_hash(base) != structural_hash(
            small_config(disk_sizes=(100, 400))
        )

    def test_cache_shares_layout_and_schedule(self):
        cache = BuildCache()
        layout_a, schedule_a = cache.layout_and_schedule(small_config())
        layout_b, schedule_b = cache.layout_and_schedule(
            small_config(noise=0.45)
        )
        assert layout_a is layout_b
        assert schedule_a is schedule_b
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1
        cache.layout_and_schedule(small_config(delta=4))
        assert cache.misses == 2 and len(cache) == 2

    def test_timing_structures_shared_across_sweep_points(self):
        # Running several sweep points that share a broadcast structure
        # must build the timing structures (fixed gaps, non-empty
        # index) once on the shared schedule, not once per point.
        cache = BuildCache()
        configs = [small_config(noise=noise) for noise in (0.0, 0.15, 0.45)]
        for config in configs:
            execute_plan(plan_for(config), builds=cache)
        stats = cache.timing_stats()
        assert stats["schedules"] == 1
        assert stats["fixed_gap_entries"] > 0
        _layout, schedule = cache.layout_and_schedule(configs[0])
        before = schedule.timing_stats()
        execute_plan(plan_for(small_config(noise=0.45)), builds=cache)
        # The repeated point reused the already-built structures.
        assert schedule.timing_stats() == before

    def test_cached_builds_do_not_change_results(self):
        configs = [small_config(noise=noise) for noise in (0.0, 0.15, 0.45)]
        fresh = [execute_plan(plan_for(config)) for config in configs]
        shared = BuildCache()
        cached = [
            execute_plan(plan_for(config), builds=shared)
            for config in configs
        ]
        assert shared.hits == 2
        assert [r.mean_response_time for r in fresh] == [
            r.mean_response_time for r in cached
        ]
        assert [r.hit_rate for r in fresh] == [r.hit_rate for r in cached]


class TestExecutePlan:
    def test_matches_run_experiment(self):
        config = small_config()
        via_plan = execute_plan(plan_for(config, collect_responses=True))
        via_runner = run_experiment(config, collect_responses=True)
        assert via_plan.mean_response_time == via_runner.mean_response_time
        assert via_plan.samples == via_runner.samples
        assert via_plan.access_locations == via_runner.access_locations
        assert via_plan.schedule_period == via_runner.schedule_period

    def test_result_is_picklable(self):
        result = execute_plan(plan_for(small_config(), collect_responses=True))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.mean_response_time == result.mean_response_time
        assert clone.samples == result.samples
        assert clone.response_stats.count == result.response_stats.count
        assert clone.response_stats._m2 == result.response_stats._m2
