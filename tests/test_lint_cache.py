"""The incremental cache: correctness first, then the speed contract.

The cache must be invisible — a warm run returns byte-identical
diagnostics to a cold run — while doing strictly less work: zero
re-parsing on an unchanged tree, and only the edited file plus its
transitive reverse dependencies re-entering the cross-module phase
after an edit.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint import LintConfig, LintStats, lint_paths
from repro.lint.engine import LintCache

FILES = {
    "src/repro/a.py": """
        def helper():
            return 1
    """,
    "src/repro/b.py": """
        from repro.a import helper


        def mid():
            return helper()
    """,
    "src/repro/c.py": """
        from repro.b import mid


        def top():
            return mid()
    """,
    "src/repro/lone.py": """
        def isolated():
            return 42
    """,
    "src/repro/dirty.py": """
        import random

        r = random.Random()
    """,
}


def make_tree(tmp_path: Path, files=FILES) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def lint(root: Path, cache_dir: Path, config=None):
    config = config or LintConfig(scope="src/repro")
    stats = LintStats()
    diagnostics = lint_paths(
        [root], config, cache_dir=cache_dir, stats=stats
    )
    return diagnostics, stats


class TestWarmRuns:
    def test_warm_run_parses_nothing(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        _, cold = lint(root, cache)
        assert cold.parsed == len(FILES)
        assert cold.cache_hits == 0
        assert not cold.project_from_cache

        _, warm = lint(root, cache)
        assert warm.parsed == 0
        assert warm.cache_hits == len(FILES)
        assert warm.project_from_cache

    def test_warm_diagnostics_are_byte_identical(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        cold_diags, _ = lint(root, cache)
        warm_diags, _ = lint(root, cache)
        assert cold_diags  # dirty.py guarantees at least one finding
        assert warm_diags == cold_diags
        cold_json = json.dumps([d.to_dict() for d in cold_diags])
        warm_json = json.dumps([d.to_dict() for d in warm_diags])
        assert cold_json == warm_json

    def test_uncached_runs_match_cached_runs(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        plain = lint_paths([root], LintConfig(scope="src/repro"))
        cached, _ = lint(root, tmp_path / "cache")
        assert plain == cached


class TestInvalidation:
    def test_edit_reanalyzes_file_and_reverse_deps(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        lint(root, cache)

        target = root / "src/repro/a.py"
        target.write_text(
            "def helper():\n    return 2\n", encoding="utf-8"
        )
        _, stats = lint(root, cache)
        assert stats.parsed == 1
        assert stats.cache_hits == len(FILES) - 1
        assert not stats.project_from_cache
        reanalyzed = {Path(p).name for p in stats.reanalyzed}
        # The edited module plus everything that transitively imports it.
        assert {"a.py", "b.py", "c.py"} <= reanalyzed
        assert "lone.py" not in reanalyzed

    def test_edit_changes_diagnostics(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        before, _ = lint(root, cache)

        target = root / "src/repro/lone.py"
        target.write_text(
            "import time\n\n\ndef isolated():\n    return time.time()\n",
            encoding="utf-8",
        )
        after, _ = lint(root, cache)
        new_codes = [d.code for d in after if d.path.endswith("lone.py")]
        assert new_codes == ["RL001"]
        assert len(after) == len(before) + 1

    def test_config_change_invalidates_everything(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        lint(root, cache)
        _, stats = lint(
            root, cache, config=LintConfig(scope="src/repro", enabled=("RL002",))
        )
        assert stats.parsed == len(FILES)
        assert stats.cache_hits == 0

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        cold, _ = lint(root, cache)
        (cache / LintCache.FILENAME).write_text(
            "{not json", encoding="utf-8"
        )
        recovered, stats = lint(root, cache)
        assert recovered == cold
        assert stats.parsed == len(FILES)

    def test_noqa_edit_invalidates_suppression(self, tmp_path):
        files = dict(FILES)
        files["src/repro/dirty.py"] = """
            import random  # repro: noqa[RL002]

            r = random.Random()  # repro: noqa[RL002]
        """
        root = make_tree(tmp_path / "tree", files)
        cache = tmp_path / "cache"
        before, _ = lint(root, cache)
        assert "RL002" not in {d.code for d in before}

        target = root / "src/repro/dirty.py"
        target.write_text(
            "import random\n\nr = random.Random()\n", encoding="utf-8"
        )
        after, _ = lint(root, cache)
        assert "RL002" in {d.code for d in after}


class TestCacheHygiene:
    def test_cache_entries_for_deleted_files_are_pruned(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        lint(root, cache)
        (root / "src/repro/lone.py").unlink()
        lint(root, cache)
        document = json.loads(
            (cache / LintCache.FILENAME).read_text(encoding="utf-8")
        )
        assert not any("lone.py" in key for key in document["files"])

    def test_cache_directory_is_never_linted(self, tmp_path):
        root = make_tree(tmp_path / "tree")
        # A cache living *inside* the linted tree must not be collected
        # even though `.py` is absent — guard the directory wholesale.
        cache = root / ".repro-lint-cache"
        first, _ = lint(root, cache)
        second, _ = lint(root, cache)
        assert first == second
