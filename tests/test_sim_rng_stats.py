"""Unit tests for the RNG streams and statistics accumulators."""

import math

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.sim.stats import Histogram, RunningStats, WindowedSeries


class TestRandomStreams:
    def test_same_seed_same_stream_values(self):
        a = RandomStreams(7).stream("requests").random(5)
        b = RandomStreams(7).stream("requests").random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(7).stream("requests").random(5)
        b = RandomStreams(8).stream("requests").random(5)
        assert not np.array_equal(a, b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("requests").random(5)
        b = streams.stream("noise").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_stream_values_independent_of_request_order(self):
        one = RandomStreams(7)
        one.stream("a")
        values_one = one.stream("b").random(3)
        two = RandomStreams(7)
        values_two = two.stream("b").random(3)  # never asked for "a"
        assert np.array_equal(values_one, values_two)

    def test_getitem_alias(self):
        streams = RandomStreams(7)
        assert streams["x"] is streams.stream("x")

    def test_fork_changes_values(self):
        base = RandomStreams(7)
        fork = base.fork(1)
        assert not np.array_equal(
            base.stream("x").random(3), fork.stream("x").random(3)
        )


class TestRunningStats:
    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_mean_matches_numpy(self, rng):
        values = rng.normal(10, 3, size=500)
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values))

    def test_variance_matches_numpy(self, rng):
        values = rng.normal(10, 3, size=500)
        stats = RunningStats()
        stats.extend(values)
        assert stats.variance == pytest.approx(np.var(values, ddof=1))

    def test_min_max(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 7.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0

    def test_stderr(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        expected = math.sqrt(np.var([1, 2, 3, 4], ddof=1) / 4)
        assert stats.stderr == pytest.approx(expected)

    def test_merge_equals_combined(self, rng):
        left_values = rng.normal(0, 1, 200)
        right_values = rng.normal(5, 2, 300)
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        left.extend(left_values)
        right.extend(right_values)
        combined.extend(np.concatenate([left_values, right_values]))
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        merged = stats.merge(RunningStats())
        assert merged.mean == pytest.approx(1.5)

    def test_merge_of_two_empties_is_empty(self):
        merged = RunningStats().merge(RunningStats())
        assert merged.count == 0
        assert merged.mean == 0.0
        assert merged.variance == 0.0

    def test_merge_preserves_extremes_and_stderr(self, rng):
        left_values = rng.normal(0, 1, 200)
        right_values = rng.normal(5, 2, 300)
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        left.extend(left_values)
        right.extend(right_values)
        combined.extend(np.concatenate([left_values, right_values]))
        merged = left.merge(right)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum
        assert merged.stderr == pytest.approx(combined.stderr)

    def test_chained_merge_matches_single_stream(self, rng):
        chunks = [rng.normal(i, 1 + i, 50) for i in range(4)]
        reference = RunningStats()
        reference.extend(np.concatenate(chunks))
        merged = RunningStats()
        for chunk in chunks:
            partial = RunningStats()
            partial.extend(chunk)
            merged = merged.merge(partial)
        assert merged.count == reference.count
        assert merged.mean == pytest.approx(reference.mean)
        assert merged.variance == pytest.approx(reference.variance)
        assert merged.minimum == reference.minimum
        assert merged.maximum == reference.maximum


class TestWindowedSeries:
    def test_tail_bounded_by_window(self):
        series = WindowedSeries(window=4)
        for value in range(10):
            series.add(float(value))
        assert series.tail == [6.0, 7.0, 8.0, 9.0]

    def test_not_converged_until_window_full(self):
        series = WindowedSeries(window=8)
        for value in [5.0] * 7:
            series.add(value)
        assert not series.is_converged()

    def test_converged_on_stable_signal(self):
        series = WindowedSeries(window=8)
        for value in [5.0] * 8:
            series.add(value)
        assert series.is_converged()

    def test_not_converged_on_trend(self):
        series = WindowedSeries(window=8)
        for value in range(8):
            series.add(float(value * 100))
        assert not series.is_converged()

    def test_percentile(self):
        series = WindowedSeries(window=10)
        for value in range(10):
            series.add(float(value))
        assert series.tail_percentile(0.0) == 0.0
        assert series.tail_percentile(1.0) == 9.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            WindowedSeries(window=4).tail_percentile(0.5)

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            WindowedSeries(window=1)


class TestHistogram:
    def test_binning(self):
        histogram = Histogram(0.0, 10.0, bins=5)
        for value in (0.5, 2.5, 2.6, 9.9):
            histogram.add(value)
        assert histogram.counts == [1, 2, 0, 0, 1]

    def test_overflow_underflow(self):
        histogram = Histogram(0.0, 10.0, bins=2)
        histogram.add(-1.0)
        histogram.add(10.0)
        histogram.add(100.0)
        assert histogram.underflow == 1
        assert histogram.overflow == 2
        assert histogram.total == 3

    def test_edges(self):
        histogram = Histogram(0.0, 4.0, bins=2)
        assert histogram.edges() == [(0.0, 2.0), (2.0, 4.0)]

    def test_nonempty(self):
        histogram = Histogram(0.0, 4.0, bins=2)
        histogram.add(3.0)
        assert histogram.nonempty() == [(2.0, 4.0, 1)]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 10.0, bins=0)
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0, bins=3)

    def test_float_edge_lands_in_last_bin(self):
        # Regression: with a bin width that is inexact in binary,
        # int((value - low) / width) can evaluate to ``bins`` for a
        # value infinitesimally below ``high`` — an IndexError before
        # the clamp.  nextafter(high, low) is the worst such value.
        histogram = Histogram(0.0, 1.0, bins=3)
        histogram.add(math.nextafter(1.0, 0.0))
        assert histogram.counts == [0, 0, 1]
        assert histogram.overflow == 0

    def test_float_edges_never_escape_range(self):
        # Sweep awkward (high, bins) pairs; every in-range value must
        # land in a bin, never raise, and high itself must overflow.
        for high in (0.1, 0.3, 0.7, 1.0, 2.1, 9.9):
            for bins in (1, 3, 7, 11):
                histogram = Histogram(0.0, high, bins)
                below = math.nextafter(high, 0.0)
                histogram.add(below)
                histogram.add(high)
                assert sum(histogram.counts) == 1, (high, bins)
                assert histogram.overflow == 1, (high, bins)
