"""Unit tests for the LRU-K and 2Q extension policies and the registry."""

import pytest

from repro.cache.base import CacheCounters, PolicyContext
from repro.cache.lruk import LRUKPolicy
from repro.cache.registry import available_policies, make_policy
from repro.cache.twoq import TwoQPolicy
from repro.errors import ConfigurationError, PolicyError


class TestLRUK:
    def test_underfilled_pages_evicted_first(self):
        policy = LRUKPolicy(3, k=2)
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        policy.admit(2, 3.0)
        policy.lookup(0, 4.0)  # page 0 now has 2 references
        policy.lookup(1, 5.0)  # page 1 too
        evicted = policy.admit(3, 6.0)
        assert evicted == 2  # only one reference: infinite K-distance

    def test_among_underfilled_evict_oldest_last_reference(self):
        policy = LRUKPolicy(2, k=2)
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        assert policy.admit(2, 3.0) == 0

    def test_among_filled_evict_oldest_kth_reference(self):
        policy = LRUKPolicy(2, k=2)
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        policy.lookup(0, 3.0)
        policy.lookup(1, 4.0)
        policy.lookup(0, 10.0)  # 0's 2nd-most-recent ref is 3.0
        policy.lookup(1, 5.0)   # 1's 2nd-most-recent ref is 4.0
        assert policy.admit(2, 11.0) == 0

    def test_history_bounded_to_k(self):
        policy = LRUKPolicy(2, k=2)
        policy.admit(0, 1.0)
        for time in (2.0, 3.0, 4.0):
            policy.lookup(0, time)
        # Only the last two references are retained; page 0's K-distance
        # anchor is 3.0, not 1.0.
        policy.admit(1, 5.0)
        policy.lookup(1, 5.5)
        policy.lookup(1, 6.0)
        assert policy.admit(2, 7.0) == 0  # 0's kth ref 3.0 < 1's 5.5

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            LRUKPolicy(2, k=0)

    def test_k1_behaves_like_lru(self):
        policy = LRUKPolicy(2, k=1)
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        policy.lookup(0, 3.0)
        assert policy.admit(2, 4.0) == 1

    def test_double_admit_raises(self):
        policy = LRUKPolicy(2, k=2)
        policy.admit(0, 1.0)
        with pytest.raises(PolicyError):
            policy.admit(0, 2.0)


class TestTwoQ:
    def test_first_touch_goes_to_a1in(self):
        policy = TwoQPolicy(8)
        policy.admit(0, 1.0)
        assert policy.queue_sizes()["a1in"] == 1
        assert policy.queue_sizes()["am"] == 0

    def test_rereference_after_a1in_expiry_promotes_to_am(self):
        policy = TwoQPolicy(4, kin_fraction=0.25, kout_fraction=0.5)
        # kin = 1: the second admit pushes the first page to the ghost list.
        for page, time in ((0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)):
            policy.admit(page, time)
        policy.admit(4, 5.0)  # cache full: demotes A1in head (0) to A1out
        assert 0 not in policy
        policy.admit(0, 6.0)  # 0 found in A1out -> promoted to Am
        assert policy.queue_sizes()["am"] >= 1
        assert 0 in policy

    def test_hit_in_a1in_does_not_promote(self):
        policy = TwoQPolicy(8)
        policy.admit(0, 1.0)
        assert policy.lookup(0, 2.0)
        assert policy.queue_sizes()["am"] == 0

    def test_hit_in_am_refreshes_lru_position(self):
        policy = TwoQPolicy(4, kin_fraction=0.25)
        for page, time in enumerate(range(8)):
            if page not in policy:
                policy.admit(page, float(time))
        # Build Am membership via ghost re-admission.
        sizes = policy.queue_sizes()
        assert sizes["a1in"] + sizes["am"] <= 4

    def test_capacity_never_exceeded(self):
        policy = TwoQPolicy(4)
        for page in range(20):
            if page not in policy:
                policy.admit(page, float(page))
            assert len(policy) <= 4

    def test_ghost_queue_bounded(self):
        policy = TwoQPolicy(4, kout_fraction=0.5)
        for page in range(50):
            if page not in policy:
                policy.admit(page, float(page))
        assert policy.queue_sizes()["a1out"] <= policy.kout

    def test_double_admit_raises(self):
        policy = TwoQPolicy(4)
        policy.admit(0, 1.0)
        with pytest.raises(PolicyError):
            policy.admit(0, 2.0)


class TestRegistry:
    def test_available_policies(self):
        names = available_policies()
        for expected in ("P", "PIX", "LRU", "L", "LIX"):
            assert expected in names

    def test_make_each_policy(self):
        context = PolicyContext(
            probability=lambda page: 0.1,
            frequency=lambda page: 0.1,
            disk_of=lambda page: 0,
            num_disks=1,
        )
        for name in ("P", "PIX", "LRU", "L", "LIX", "LRU-K", "lru2", "2Q"):
            policy = make_policy(name, 4, context)
            policy.admit(0, 1.0)
            assert 0 in policy

    def test_names_case_insensitive(self):
        context = PolicyContext(disk_of=lambda page: 0, num_disks=1)
        assert type(make_policy("lru", 4, context)).name == "LRU"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("CLOCK", 4, PolicyContext())


class TestCacheCounters:
    def test_hit_rate(self):
        counters = CacheCounters()
        counters.record_hit()
        counters.record_hit()
        counters.record_miss(0)
        assert counters.requests == 3
        assert counters.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate(self):
        assert CacheCounters().hit_rate == 0.0

    def test_access_locations(self):
        counters = CacheCounters()
        counters.record_hit()
        counters.record_miss(0)
        counters.record_miss(2)
        locations = counters.access_locations(num_disks=3)
        assert locations["cache"] == pytest.approx(1 / 3)
        assert locations["disk1"] == pytest.approx(1 / 3)
        assert locations["disk2"] == 0.0
        assert locations["disk3"] == pytest.approx(1 / 3)

    def test_locations_sum_to_one(self):
        counters = CacheCounters()
        for _ in range(5):
            counters.record_hit()
        for disk in (0, 1, 1, 2):
            counters.record_miss(disk)
        locations = counters.access_locations(num_disks=3)
        assert sum(locations.values()) == pytest.approx(1.0)
