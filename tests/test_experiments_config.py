"""Unit tests for ExperimentConfig (repro.experiments.config)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    DELTA_RANGE,
    DISK_PRESETS,
    NOISE_LEVELS,
    ExperimentConfig,
)


class TestPresets:
    def test_all_presets_sum_to_server_db_size(self):
        for name, sizes in DISK_PRESETS.items():
            assert sum(sizes) == 5000, name

    def test_paper_preset_values(self):
        assert DISK_PRESETS["D1"] == (500, 4500)
        assert DISK_PRESETS["D2"] == (900, 4100)
        assert DISK_PRESETS["D3"] == (2500, 2500)
        assert DISK_PRESETS["D4"] == (300, 1200, 3500)
        assert DISK_PRESETS["D5"] == (500, 2000, 2500)

    def test_sweep_constants(self):
        assert NOISE_LEVELS == (0.0, 0.15, 0.30, 0.45, 0.60, 0.75)
        assert DELTA_RANGE == tuple(range(8))


class TestDefaults:
    def test_paper_table4_defaults(self):
        config = ExperimentConfig()
        assert config.server_db_size == 5000
        assert config.access_range == 1000
        assert config.think_time == 2.0
        assert config.theta == 0.95
        assert config.region_size == 50
        assert config.num_requests == 15_000

    def test_has_cache(self):
        assert not ExperimentConfig(cache_size=1).has_cache
        assert ExperimentConfig(cache_size=50).has_cache

    def test_describe_mentions_key_knobs(self):
        text = ExperimentConfig(delta=3, policy="LIX").describe()
        assert "Δ=3" in text and "LIX" in text

    def test_label_overrides_describe(self):
        assert ExperimentConfig(label="custom").describe() == "custom"


class TestValidation:
    def test_cache_size(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(cache_size=0)

    def test_think_time(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(think_time=-1.0)

    def test_num_requests(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_requests=0)

    def test_noise_range(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(noise=1.5)

    def test_access_range_within_database(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(disk_sizes=(100,), access_range=1000)

    def test_offset_bounds(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(offset=5001)


class TestBuilders:
    def test_layout_uses_delta_rule(self):
        config = ExperimentConfig(disk_sizes=(500, 2000, 2500), delta=3)
        assert config.build_layout().rel_freqs == (7, 4, 1)

    def test_explicit_rel_freqs_override_delta(self):
        config = ExperimentConfig(
            disk_sizes=(500, 4500), delta=3, rel_freqs=(3, 2)
        )
        assert config.build_layout().rel_freqs == (3, 2)

    def test_flat_layout_gets_flat_program(self):
        config = ExperimentConfig(disk_sizes=(500, 4500), delta=0)
        schedule = config.build_schedule()
        assert schedule.period == 5000
        assert schedule.empty_slots == 0

    def test_schedule_carries_every_page(self):
        config = ExperimentConfig(disk_sizes=(50, 200, 250), delta=2,
                                  access_range=100, region_size=10)
        schedule = config.build_schedule()
        assert schedule.num_pages == 500

    def test_mapping_respects_offset_and_noise(self):
        config = ExperimentConfig(
            disk_sizes=(50, 200, 250), delta=2, offset=10, noise=0.2,
            access_range=100, region_size=10, seed=1,
        )
        mapping = config.build_mapping()
        assert mapping.offset == 10
        assert mapping.noise == 0.2

    def test_noise_scope_defaults_to_access_range(self):
        config = ExperimentConfig(
            disk_sizes=(50, 200, 250), delta=2, noise=0.2,
            access_range=100, region_size=10, seed=1,
        )
        assert config.build_mapping().noise_scope == 100

    def test_noise_over_full_database_opt_in(self):
        config = ExperimentConfig(
            disk_sizes=(50, 200, 250), delta=2, noise=0.2,
            access_range=100, region_size=10, seed=1,
            noise_over_full_database=True,
        )
        assert config.build_mapping().noise_scope == 500

    def test_mapping_deterministic_per_seed(self):
        import numpy as np

        config = ExperimentConfig(
            disk_sizes=(50, 200, 250), delta=2, noise=0.3,
            access_range=100, region_size=10, seed=5,
        )
        a = config.build_mapping().physical_array()
        b = config.build_mapping().physical_array()
        assert np.array_equal(a, b)

    def test_policy_wiring(self):
        config = ExperimentConfig(
            disk_sizes=(50, 200, 250), delta=2, cache_size=10,
            policy="PIX", access_range=100, region_size=10,
        )
        layout = config.build_layout()
        schedule = config.build_schedule(layout)
        mapping = config.build_mapping(layout)
        distribution = config.build_distribution()
        policy = config.build_policy(schedule, mapping, distribution, layout)
        assert type(policy).name == "PIX"
        policy.admit(0, 1.0)
        assert 0 in policy

    def test_with_override(self):
        config = ExperimentConfig(delta=1)
        modified = config.with_(delta=5)
        assert modified.delta == 5
        assert config.delta == 1
