"""Unit tests for the idealised P and PIX policies."""

import pytest

from repro.cache.base import PolicyContext
from repro.cache.p import PPolicy
from repro.cache.pix import PIXPolicy
from repro.errors import ConfigurationError, PolicyError


def make_context(probabilities, frequencies=None):
    return PolicyContext(
        probability=lambda page: probabilities.get(page, 0.0),
        frequency=(
            (lambda page: frequencies.get(page, 0.0)) if frequencies else None
        ),
        disk_of=lambda page: 0,
        num_disks=1,
    )


class TestPPolicy:
    def test_requires_probability_oracle(self):
        with pytest.raises(ConfigurationError):
            PPolicy(2, PolicyContext())

    def test_fills_free_slots(self):
        policy = PPolicy(2, make_context({0: 0.5, 1: 0.3}))
        assert policy.admit(0, now=1.0) is None
        assert policy.admit(1, now=2.0) is None
        assert len(policy) == 2
        assert policy.is_full

    def test_evicts_lowest_probability(self):
        policy = PPolicy(2, make_context({0: 0.5, 1: 0.1, 2: 0.3}))
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        evicted = policy.admit(2, 3.0)
        assert evicted == 1
        assert set(policy.pages()) == {0, 2}

    def test_declines_page_colder_than_everything_resident(self):
        policy = PPolicy(2, make_context({0: 0.5, 1: 0.3, 2: 0.01}))
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        rejected = policy.admit(2, 3.0)
        assert rejected == 2
        assert 2 not in policy
        assert set(policy.pages()) == {0, 1}

    def test_steady_state_holds_hottest_pages(self):
        # §5.3: "a client using P will have the CacheSize hottest pages".
        probabilities = {page: (10 - page) / 55 for page in range(10)}
        policy = PPolicy(3, make_context(probabilities))
        for round_ in range(3):
            for page in range(9, -1, -1):
                if page not in policy:
                    policy.admit(page, float(round_ * 10 + page))
        assert set(policy.pages()) == {0, 1, 2}

    def test_lookup_hits_and_misses(self):
        policy = PPolicy(2, make_context({0: 0.5}))
        policy.admit(0, 1.0)
        assert policy.lookup(0, 2.0)
        assert not policy.lookup(5, 2.0)

    def test_double_admit_raises(self):
        policy = PPolicy(2, make_context({0: 0.5}))
        policy.admit(0, 1.0)
        with pytest.raises(PolicyError):
            policy.admit(0, 2.0)

    def test_readmission_after_eviction(self):
        policy = PPolicy(1, make_context({0: 0.5, 1: 0.6}))
        policy.admit(0, 1.0)
        assert policy.admit(1, 2.0) == 0
        assert policy.admit(0, 3.0) == 0  # colder than 1: declined
        assert set(policy.pages()) == {1}

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            PPolicy(0, make_context({0: 0.5}))

    def test_tie_values_still_evict_exactly_one(self):
        policy = PPolicy(2, make_context({0: 0.2, 1: 0.2, 2: 0.2}))
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        outside = policy.admit(2, 3.0)
        assert len(policy) == 2
        assert outside in {0, 1, 2}


class TestPIXPolicy:
    def test_requires_both_oracles(self):
        with pytest.raises(ConfigurationError):
            PIXPolicy(2, make_context({0: 0.5}))

    def test_evicts_lowest_probability_over_frequency(self):
        # The paper's §3 example: page A accessed 1% / broadcast 1% has a
        # LOWER pix value than page B accessed 0.5% / broadcast 0.1%.
        probabilities = {0: 0.01, 1: 0.005, 2: 0.004}
        frequencies = {0: 0.01, 1: 0.001, 2: 0.001}
        policy = PIXPolicy(2, make_context(probabilities, frequencies))
        policy.admit(0, 1.0)  # pix = 1.0
        policy.admit(1, 2.0)  # pix = 5.0
        evicted = policy.admit(2, 3.0)  # pix = 4.0 beats page 0's 1.0
        assert evicted == 0
        assert set(policy.pages()) == {1, 2}

    def test_declines_page_with_lowest_pix(self):
        probabilities = {0: 0.5, 1: 0.3, 2: 0.2}
        frequencies = {0: 0.1, 1: 0.1, 2: 1.0}  # page 2 broadcast constantly
        policy = PIXPolicy(2, make_context(probabilities, frequencies))
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        rejected = policy.admit(2, 3.0)
        assert rejected == 2
        assert 2 not in policy

    def test_never_broadcast_page_is_maximally_valuable(self):
        probabilities = {0: 0.9, 1: 0.001}
        frequencies = {0: 0.5, 1: 0.0}
        policy = PIXPolicy(1, make_context(probabilities, frequencies))
        policy.admit(1, 1.0)
        # Page 0 is far hotter but re-acquirable; page 1 is irreplaceable.
        rejected = policy.admit(0, 2.0)
        assert rejected == 0
        assert 1 in policy

    def test_equal_frequencies_reduce_to_p(self):
        # Paper footnote 6: on a flat disk P and PIX are identical.
        probabilities = {0: 0.5, 1: 0.1, 2: 0.3}
        frequencies = {page: 0.2 for page in range(3)}
        pix = PIXPolicy(2, make_context(probabilities, frequencies))
        p = PPolicy(2, make_context(probabilities))
        for policy in (pix, p):
            policy.admit(0, 1.0)
            policy.admit(1, 2.0)
        assert pix.admit(2, 3.0) == p.admit(2, 3.0) == 1
