"""Unit tests for LRU, LIX and L (repro.cache.lru / repro.cache.lix)."""

import pytest

from repro.cache.base import PolicyContext
from repro.cache.lix import LPolicy, LIXPolicy
from repro.cache.lru import LRUPolicy
from repro.errors import ConfigurationError, PolicyError


def lix_context(disk_of=None, frequency=None, num_disks=2, alpha=0.25):
    return PolicyContext(
        frequency=frequency or (lambda page: 1.0),
        disk_of=disk_of or (lambda page: 0),
        num_disks=num_disks,
        lix_alpha=alpha,
    )


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy(2)
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        assert policy.admit(2, 3.0) == 0

    def test_hit_refreshes_recency(self):
        policy = LRUPolicy(2)
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        assert policy.lookup(0, 3.0)
        assert policy.admit(2, 4.0) == 1  # 1 is now the LRU page

    def test_always_admits_new_page(self):
        policy = LRUPolicy(1)
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        assert 1 in policy
        assert 0 not in policy

    def test_miss_does_not_change_state(self):
        policy = LRUPolicy(2)
        policy.admit(0, 1.0)
        assert not policy.lookup(9, 2.0)
        assert len(policy) == 1

    def test_double_admit_raises(self):
        policy = LRUPolicy(2)
        policy.admit(0, 1.0)
        with pytest.raises(PolicyError):
            policy.admit(0, 2.0)

    def test_no_eviction_until_full(self):
        policy = LRUPolicy(3)
        assert policy.admit(0, 1.0) is None
        assert policy.admit(1, 2.0) is None
        assert policy.admit(2, 3.0) is None
        assert policy.admit(3, 4.0) == 0

    def test_discard_reports_residency(self):
        # Regression: pages are stored with value None in the recency
        # chain, so discard must test membership, not the popped value.
        policy = LRUPolicy(2)
        policy.admit(0, 1.0)
        assert policy.discard(0) is True
        assert policy.discard(0) is False
        assert 0 not in policy
        assert policy.discard(9) is False


class TestLIXChains:
    def test_pages_enter_their_disks_chain(self):
        policy = LIXPolicy(4, lix_context(disk_of=lambda page: page % 2))
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        policy.admit(2, 3.0)
        assert policy.chain_pages(0) == [0, 2]
        assert policy.chain_pages(1) == [1]

    def test_hit_moves_page_to_top_of_its_chain(self):
        policy = LIXPolicy(4, lix_context(disk_of=lambda page: 0, num_disks=1))
        policy.admit(0, 1.0)
        policy.admit(1, 2.0)
        policy.lookup(0, 3.0)
        assert policy.chain_pages(0) == [1, 0]

    def test_chains_grow_and_shrink_dynamically(self):
        # Figure 12: the victim's chain shrinks, the new page's grows.
        policy = LIXPolicy(
            2,
            lix_context(
                disk_of=lambda page: 0 if page < 10 else 1,
                frequency=lambda page: 0.5 if page < 10 else 0.1,
            ),
        )
        policy.admit(0, 1.0)   # disk 0 chain
        policy.admit(10, 2.0)  # disk 1 chain
        # Page 11 (disk 1, rare) should displace the never-hit page with
        # the smaller estimate/frequency ratio.
        policy.admit(11, 3.0)
        sizes = (len(policy.chain_pages(0)), len(policy.chain_pages(1)))
        assert sum(sizes) == 2

    def test_estimator_update_rule(self):
        alpha = 0.25
        policy = LIXPolicy(2, lix_context(alpha=alpha, num_disks=1))
        policy.admit(0, 0.0)
        assert policy.estimate_of(0) == 0.0
        policy.lookup(0, 4.0)
        # p = alpha/(4-0) + (1-alpha)*0 = 0.0625
        assert policy.estimate_of(0) == pytest.approx(alpha / 4.0)
        policy.lookup(0, 6.0)
        expected = alpha / 2.0 + (1 - alpha) * (alpha / 4.0)
        assert policy.estimate_of(0) == pytest.approx(expected)

    def test_eviction_considers_only_chain_bottoms(self):
        policy = LIXPolicy(
            4, lix_context(disk_of=lambda page: 0, num_disks=1)
        )
        for page, time in ((0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)):
            policy.admit(page, time)
        policy.lookup(0, 5.0)  # page 0 hot but at top matters not: moved up
        evicted = policy.admit(9, 6.0)
        assert evicted == 1  # bottom of the single chain after 0 moved up

    def test_frequency_divides_the_estimate(self):
        # Two never-hit pages, same age: the one on the frequent disk has
        # the smaller lix value and is evicted first.
        policy = LIXPolicy(
            2,
            lix_context(
                disk_of=lambda page: page % 2,
                frequency=lambda page: 1.0 if page == 0 else 0.01,
            ),
        )
        policy.admit(0, 1.0)
        policy.admit(1, 1.0)
        evicted = policy.admit(5, 3.0)
        assert evicted == 0

    def test_aging_makes_stale_pages_colder(self):
        # Same disk ordering corner: a long-untouched page loses to a
        # recently admitted one even with equal committed estimates.
        policy = LIXPolicy(
            2, lix_context(disk_of=lambda page: page % 2, num_disks=2)
        )
        policy.admit(0, 0.0)    # disk 0, old
        policy.admit(1, 99.0)   # disk 1, fresh
        evicted = policy.admit(2, 100.0)  # goes to disk 0
        assert evicted == 0

    def test_requires_disk_oracle(self):
        with pytest.raises(ConfigurationError):
            LIXPolicy(2, PolicyContext(frequency=lambda page: 1.0))

    def test_requires_frequency_oracle(self):
        with pytest.raises(ConfigurationError):
            LIXPolicy(2, PolicyContext(disk_of=lambda page: 0))

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            LIXPolicy(2, lix_context(alpha=0.0))
        with pytest.raises(ConfigurationError):
            LIXPolicy(2, lix_context(alpha=1.5))

    def test_num_disks_validation(self):
        with pytest.raises(ConfigurationError):
            LIXPolicy(2, lix_context(num_disks=0))

    def test_same_instant_rehit_does_not_divide_by_zero(self):
        policy = LIXPolicy(2, lix_context(num_disks=1))
        policy.admit(0, 1.0)
        policy.lookup(0, 1.0)  # zero gap
        assert policy.estimate_of(0) > 0.0


class TestLIXReducesToLRUOnFlatDisk:
    def test_single_chain_matches_lru_evictions(self):
        # §5.5: "LIX reduces to LRU if the broadcast uses a single flat disk".
        lix = LIXPolicy(3, lix_context(num_disks=1))
        lru = LRUPolicy(3)
        requests = [0, 1, 2, 0, 3, 1, 4, 2, 0, 5, 6, 1, 0, 7]
        time = 0.0
        for page in requests:
            time += 2.0
            lix_hit = lix.lookup(page, time)
            lru_hit = lru.lookup(page, time)
            assert lix_hit == lru_hit
            if not lix_hit:
                assert lix.admit(page, time) == lru.admit(page, time)


class TestLPolicy:
    def test_ignores_frequency(self):
        # Same setup as the LIX frequency test, but L must not use X:
        # with equal ages the outcome is frequency-independent.
        policy = LPolicy(
            2,
            lix_context(
                disk_of=lambda page: page % 2,
                frequency=lambda page: 1.0 if page == 0 else 0.0001,
            ),
        )
        policy.admit(0, 0.0)
        policy.admit(1, 50.0)
        evicted = policy.admit(2, 100.0)
        # Page 0 is older (smaller aged estimate): evicted despite the
        # huge frequency difference that would have saved it under...
        # no wait, frequency would have *doomed* it under LIX too; the
        # point is L evicts on the estimate alone.
        assert evicted == 0

    def test_does_not_require_frequency_oracle(self):
        policy = LPolicy(
            2, PolicyContext(disk_of=lambda page: 0, num_disks=1)
        )
        policy.admit(0, 1.0)
        assert 0 in policy

    def test_l_and_lix_diverge_when_frequency_matters(self):
        def build(cls):
            return cls(
                2,
                lix_context(
                    disk_of=lambda page: page % 2,
                    frequency=lambda page: 1.0 if page % 2 == 0 else 0.001,
                ),
            )

        lix, l_policy = build(LIXPolicy), build(LPolicy)
        for policy in (lix, l_policy):
            policy.admit(0, 0.0)    # frequent disk, older
            policy.admit(1, 90.0)   # rare disk, fresher
        # LIX: page 0's estimate is divided by 1.0, page 1's by 0.001 —
        # page 0 has by far the smaller lix value.
        assert lix.admit(2, 100.0) == 0
        # L: compares raw aged estimates; page 0 (age 100) loses to page 1
        # (age 10) as well here, so craft the reverse ordering:
        l2 = build(LPolicy)
        l2.admit(0, 90.0)   # frequent disk, fresher
        l2.admit(1, 0.0)    # rare disk, older
        assert l2.admit(2, 100.0) == 1  # L evicts the older page...
        lix2 = build(LIXPolicy)
        lix2.admit(0, 90.0)
        lix2.admit(1, 0.0)
        assert lix2.admit(2, 100.0) == 0  # ...but LIX still dumps the cheap one
