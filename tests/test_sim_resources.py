"""Unit tests for Resource and Store (repro.sim.resources)."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, Store


class TestResource:
    def test_grant_when_capacity_available(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        grant = resource.request()
        sim.run()
        assert grant.processed
        assert resource.in_use == 1

    def test_second_request_queues(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        first = resource.request()
        second = resource.request()
        sim.run()
        assert first.processed
        assert not second.processed
        assert resource.queue_length == 1

    def test_release_wakes_waiter_fifo(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        resource.request()
        second = resource.request()
        third = resource.request()
        resource.release()
        sim.run()
        assert second.processed
        assert not third.processed

    def test_release_without_request_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_multi_unit_capacity(self):
        sim = Simulator()
        resource = Resource(sim, capacity=3)
        grants = [resource.request() for _ in range(4)]
        sim.run()
        assert [g.processed for g in grants] == [True, True, True, False]

    def test_process_usage_pattern(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        log = []

        def user(name, hold):
            grant = resource.request()
            yield grant
            log.append((name, "in", sim.now))
            yield sim.timeout(hold)
            log.append((name, "out", sim.now))
            resource.release()

        sim.process(user("a", 5.0))
        sim.process(user("b", 2.0))
        sim.run()
        assert log == [
            ("a", "in", 0.0), ("a", "out", 5.0),
            ("b", "in", 5.0), ("b", "out", 7.0),
        ]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        got = store.get()
        sim.run()
        assert got.value == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = store.get()
        sim.run()
        assert not got.processed
        store.put("late")
        sim.run()
        assert got.value == "late"

    def test_fifo_ordering_of_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        first = store.get()
        second = store.get()
        sim.run()
        assert (first.value, second.value) == (1, 2)

    def test_fifo_ordering_of_getters(self):
        sim = Simulator()
        store = Store(sim)
        first = store.get()
        second = store.get()
        store.put("x")
        store.put("y")
        sim.run()
        assert (first.value, second.value) == ("x", "y")

    def test_len_reflects_buffered_items(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0
        store.put("a")
        assert len(store) == 1
        store.get()
        assert len(store) == 0
