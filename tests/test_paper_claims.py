"""Integration tests: the paper's qualitative claims at reduced scale.

Each experiment of §5 is re-run on a 1/10th-scale configuration (database
500 pages, access range 100, cache 50) that preserves the paper's
proportions.  The assertions encode the *shape* of the published figures
— who wins, whether curves cross the flat baseline, where sensitivity
lies — which is the reproduction criterion for a simulation paper.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

# 1/10th-scale analogues of the paper's presets (same proportions).
MINI = {
    "D1": (50, 450),
    "D2": (90, 410),
    "D3": (250, 250),
    "D4": (30, 120, 350),
    "D5": (50, 200, 250),
}
MINI_FLAT_DELAY = 250.0  # half the 500-page database
REQUESTS = 4_000


def mini_config(preset="D5", **overrides):
    base = dict(
        disk_sizes=MINI[preset],
        delta=0,
        cache_size=1,
        policy="LRU",
        noise=0.0,
        offset=0,
        access_range=100,
        region_size=5,
        num_requests=REQUESTS,
        seed=17,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def response(config):
    return run_experiment(config).mean_response_time


class TestExperiment1NoCacheNoNoise:
    """Figure 5's claims."""

    def test_flat_disk_response_is_half_database(self):
        assert response(mini_config(delta=0)) == pytest.approx(
            MINI_FLAT_DELAY, rel=0.06
        )

    @pytest.mark.parametrize("preset", sorted(MINI))
    def test_every_configuration_beats_flat_at_moderate_delta(self, preset):
        assert response(mini_config(preset, delta=3)) < MINI_FLAT_DELAY

    def test_d4_is_best_configuration_at_high_delta(self):
        responses = {
            preset: response(mini_config(preset, delta=7))
            for preset in sorted(MINI)
        }
        assert min(responses, key=responses.get) == "D4"

    def test_d4_reaches_about_a_third_of_flat(self):
        # Paper: "At a delta of 7, its response time is only one-third of
        # the flat-disk response time."
        ratio = response(mini_config("D4", delta=7)) / MINI_FLAT_DELAY
        assert 0.2 < ratio < 0.45

    def test_d3_is_worst_two_disk_configuration(self):
        at_delta = {
            preset: response(mini_config(preset, delta=4))
            for preset in ("D1", "D2", "D3")
        }
        assert at_delta["D3"] > at_delta["D1"]
        assert at_delta["D3"] > at_delta["D2"]

    def test_d5_beats_its_two_disk_counterpart_d3(self):
        # "D5 ... performs better than its two-disk counterpart [D3]."
        assert response(mini_config("D5", delta=4)) < response(
            mini_config("D3", delta=4)
        )

    def test_response_improves_from_flat_with_delta(self):
        flat = response(mini_config("D5", delta=0))
        skewed = response(mini_config("D5", delta=4))
        assert skewed < flat


class TestExperiment2NoiseNoCache:
    """Figures 6 and 7: noise erodes the multi-disk win."""

    def test_noise_degrades_performance(self):
        quiet = response(mini_config("D3", delta=4, seed=3))
        noisy = response(mini_config("D3", delta=4, noise=0.75, seed=3))
        assert noisy > quiet

    def test_high_noise_high_delta_can_lose_to_flat(self):
        # Figure 6: D3's 75%-noise curve crosses above the flat disk.
        noisy = response(mini_config("D3", delta=7, noise=0.75, seed=3))
        assert noisy > MINI_FLAT_DELAY * 0.95

    def test_three_disk_d5_also_degrades_with_noise(self):
        quiet = response(mini_config("D5", delta=4, seed=3))
        noisy = response(mini_config("D5", delta=4, noise=0.75, seed=3))
        assert noisy > quiet


class TestExperiment3PCachingAndNoise:
    """Figure 8: a P cache helps absolutely but amplifies noise sensitivity."""

    def cached(self, **overrides):
        return mini_config(
            "D5", cache_size=50, policy="P", offset=50, **overrides
        )

    def test_cache_improves_absolute_performance(self):
        without = response(mini_config("D5", delta=3))
        with_cache = response(self.cached(delta=3))
        assert with_cache < without

    def test_noise_still_hurts_with_p(self):
        quiet = response(self.cached(delta=3))
        noisy = response(self.cached(delta=3, noise=0.75))
        assert noisy > quiet

    def test_p_high_noise_crosses_flat_at_higher_delta(self):
        # Figure 8: "when delta > 2, the higher degrees of noise have
        # multi-disk performance worse than the flat disk performance".
        flat_with_cache = response(self.cached(delta=0))
        noisy_skewed = response(self.cached(delta=5, noise=0.75))
        assert noisy_skewed > flat_with_cache


class TestExperiment4PIX:
    """Figures 9-11: cost-based replacement shields against noise."""

    def cached(self, policy, **overrides):
        return mini_config(
            "D5", cache_size=50, policy=policy, offset=50, **overrides
        )

    def test_pix_beats_p_under_noise(self):
        for noise in (0.3, 0.6):
            assert response(self.cached("PIX", delta=3, noise=noise)) < response(
                self.cached("P", delta=3, noise=noise)
            )

    def test_pix_stays_below_flat_across_noise(self):
        # Figure 9: PIX better than flat for all noise/delta studied.
        flat_with_cache = response(self.cached("PIX", delta=0))
        for noise in (0.15, 0.45, 0.75):
            assert response(self.cached("PIX", delta=3, noise=noise)) < (
                flat_with_cache * 1.05
            )

    def test_p_and_pix_identical_on_flat_disk(self):
        # Footnote 6: at delta=0 all frequencies are equal.
        assert response(self.cached("P", delta=0, noise=0.3)) == (
            response(self.cached("PIX", delta=0, noise=0.3))
        )

    def test_figure11_tradeoff(self):
        # PIX has a lower hit rate than P yet fewer slowest-disk accesses.
        p = run_experiment(self.cached("P", delta=3, noise=0.3))
        pix = run_experiment(self.cached("PIX", delta=3, noise=0.3))
        assert pix.hit_rate <= p.hit_rate
        assert (
            pix.access_locations["disk3"] < p.access_locations["disk3"]
        )
        assert pix.mean_response_time < p.mean_response_time


class TestExperiment5ImplementablePolicies:
    """Figures 13-15: LIX approximates PIX; LRU/L lag."""

    def cached(self, policy, **overrides):
        overrides.setdefault("noise", 0.30)
        return mini_config(
            "D5", cache_size=50, policy=policy, offset=50, **overrides
        )

    def test_ordering_lix_l_lru(self):
        lix = response(self.cached("LIX", delta=3))
        l_resp = response(self.cached("L", delta=3))
        lru = response(self.cached("LRU", delta=3))
        assert lix < l_resp < lru

    def test_lix_close_to_pix_ideal(self):
        lix = response(self.cached("LIX", delta=3))
        pix = response(self.cached("PIX", delta=3))
        assert pix <= lix < pix * 2.5

    def test_lix_beats_l_and_lru_across_noise(self):
        # Figure 15.
        for noise in (0.0, 0.45, 0.75):
            lix = response(self.cached("LIX", delta=3, noise=noise))
            l_resp = response(self.cached("L", delta=3, noise=noise))
            lru = response(self.cached("LRU", delta=3, noise=noise))
            assert lix < l_resp
            assert lix < lru

    def test_lru_degrades_with_delta(self):
        # Figure 13: "LRU performs worst and consistently degrades as
        # delta is increased."
        assert response(self.cached("LRU", delta=7)) > response(
            self.cached("LRU", delta=1)
        )

    def test_figure14_lix_avoids_slowest_disk(self):
        lix = run_experiment(self.cached("LIX", delta=3))
        lru = run_experiment(self.cached("LRU", delta=3))
        l_run = run_experiment(self.cached("L", delta=3))
        assert (
            lix.access_locations["disk3"] < lru.access_locations["disk3"]
        )
        assert (
            lix.access_locations["disk3"] < l_run.access_locations["disk3"]
        )
