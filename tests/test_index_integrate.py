"""Tests for indexing the multidisk broadcast (repro.index.integrate)."""

import numpy as np
import pytest

from repro.core.disks import DiskLayout
from repro.core.programs import _flat_program as flat_program, _multidisk_program as multidisk_program
from repro.errors import ConfigurationError
from repro.index.client import TuningClient
from repro.index.integrate import index_schedule
from repro.index.onem import DATA, INDEX, build_one_m_broadcast
from repro.workload.zipf import ZipfRegionDistribution


@pytest.fixture
def layout():
    return DiskLayout.from_delta((4, 8, 12), delta=2)


@pytest.fixture
def multidisk(layout):
    return multidisk_program(layout)


class TestConstruction:
    def test_data_slots_preserve_program_order(self, multidisk):
        indexed = index_schedule(multidisk, m=2, fanout=4)
        data_sequence = [
            bucket.key for bucket in indexed.buckets if bucket.kind == DATA
        ]
        program_sequence = [page for page in multidisk.slots if page >= 0]
        assert data_sequence == program_sequence

    def test_hot_pages_repeat_in_cycle(self, layout, multidisk):
        indexed = index_schedule(multidisk, m=2, fanout=4)
        hot = 0  # page 0 sits on the fastest disk
        occurrences = sum(
            1
            for bucket in indexed.buckets
            if bucket.kind == DATA and bucket.key == hot
        )
        assert occurrences == layout.rel_freqs[0]

    def test_m_index_segments(self, multidisk):
        indexed = index_schedule(multidisk, m=3, fanout=4)
        assert len(indexed.index_root_positions()) == 3

    def test_padding_slots_dropped(self):
        layout = DiskLayout((1, 3), (2, 1))  # produces one padding slot
        program = multidisk_program(layout)
        indexed = index_schedule(program, m=1, fanout=2)
        data_count = sum(
            1 for bucket in indexed.buckets if bucket.kind == DATA
        )
        assert data_count == len(program.slots) - program.empty_slots

    def test_matches_flat_builder_on_flat_program(self):
        # On a flat carousel the generalised builder must agree with the
        # dedicated (1, m) builder bucket-for-bucket.
        program = flat_program(12)
        general = index_schedule(program, m=2, fanout=3)
        dedicated = build_one_m_broadcast(list(range(12)), m=2, fanout=3)
        assert len(general.buckets) == len(dedicated.buckets)
        for ours, theirs in zip(general.buckets, dedicated.buckets):
            assert ours.kind == theirs.kind
            assert ours.key == theirs.key
            assert ours.next_index_offset == theirs.next_index_offset
            assert ours.entries == theirs.entries

    def test_validation(self, multidisk):
        with pytest.raises(ConfigurationError):
            index_schedule(multidisk, m=0)
        with pytest.raises(ConfigurationError):
            index_schedule(multidisk, m=10_000)


class TestProbing:
    def test_every_key_resolvable_from_every_start(self, multidisk):
        indexed = index_schedule(multidisk, m=2, fanout=4)
        client = TuningClient(indexed)
        for key in indexed.keys:
            for start in range(0, indexed.cycle_length, 5):
                result = client.probe(key, start)
                assert result.found, (key, start)
                landing = indexed.bucket_at(start + result.access_time - 1)
                assert landing.kind == DATA and landing.key == key

    def test_tuning_stays_small(self, multidisk):
        indexed = index_schedule(multidisk, m=2, fanout=4)
        client = TuningClient(indexed)
        for key in indexed.keys[::3]:
            result = client.probe(key, 1)
            assert result.tuning_time <= indexed.tree_depth + 2

    def test_hot_keys_wait_less_than_cold_keys(self, layout, multidisk):
        indexed = index_schedule(multidisk, m=4, fanout=4)
        client = TuningClient(indexed)
        rng = np.random.default_rng(0)
        starts = rng.integers(0, indexed.cycle_length, size=400)
        hot = client.measure([0] * 400, starts)
        cold = client.measure([layout.total_pages - 1] * 400, starts)
        assert hot.mean_access_time < cold.mean_access_time


class TestIntegrationWin:
    def test_multidisk_index_beats_flat_index_under_skew(self):
        """The §7 integration payoff: same tuning, better access."""
        layout = DiskLayout.from_delta((50, 200, 250), delta=4)
        multi = index_schedule(multidisk_program(layout), m=8, fanout=8)
        flat = index_schedule(flat_program(500), m=3, fanout=8)
        rng = np.random.default_rng(3)
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        targets = distribution.sample(rng, 2500)

        flat_stats = TuningClient(flat).measure(
            targets, rng.integers(0, flat.cycle_length, size=2500)
        )
        multi_stats = TuningClient(multi).measure(
            targets, rng.integers(0, multi.cycle_length, size=2500)
        )
        assert multi_stats.mean_access_time < flat_stats.mean_access_time
        assert multi_stats.mean_tuning_time == pytest.approx(
            flat_stats.mean_tuning_time, abs=0.5
        )
