"""Shared fixtures for the test suite.

Scales: unit tests use tiny hand-checkable layouts; integration tests use
a "mini" configuration (database of 500 pages, access range 100) that
preserves the paper's proportions — AccessRange = DB/5, RegionSize =
AccessRange/20, CacheSize = AccessRange/2 — while running in milliseconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make `python -m pytest` work from the repo root without an installed
# package or a PYTHONPATH=src prefix (src-layout bootstrap).
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.experiments.config import ExperimentConfig
from repro.workload.zipf import ZipfRegionDistribution


@pytest.fixture
def rng():
    """A deterministic numpy generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_layout():
    """Three disks of 2/4/8 pages at speeds 4:2:1 (the Figure 3 shape)."""
    return DiskLayout((2, 4, 8), (4, 2, 1))


@pytest.fixture
def tiny_schedule(tiny_layout):
    """The multidisk program of the tiny layout."""
    return multidisk_program(tiny_layout)


@pytest.fixture
def mini_distribution():
    """Zipf over 100 pages in 10 regions, paper's theta."""
    return ZipfRegionDistribution(access_range=100, region_size=10, theta=0.95)


@pytest.fixture
def mini_config():
    """A 1/10th-scale analogue of the paper's D5 design point."""
    return ExperimentConfig(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        noise=0.30,
        offset=50,
        access_range=100,
        region_size=10,
        num_requests=600,
        seed=7,
    )
