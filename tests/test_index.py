"""Tests for the indexing-on-air subsystem (repro.index)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.index.analysis import (
    expected_access_time,
    expected_tuning_time,
    index_size,
    no_index_expectations,
    one_m_expectations,
    optimal_m,
    tree_depth,
)
from repro.index.client import TuningClient, flat_probe
from repro.index.onem import DATA, INDEX, build_one_m_broadcast
from repro.index.tree import DispatchTree


class TestDispatchTree:
    def test_single_key(self):
        tree = DispatchTree([7], fanout=2)
        assert tree.depth == 1
        assert tree.data_position(7) == 0

    def test_lookup_positions(self):
        keys = [0, 2, 4, 6, 8, 10]
        tree = DispatchTree(keys, fanout=2)
        for position, key in enumerate(keys):
            assert tree.data_position(key) == position

    def test_absent_keys(self):
        tree = DispatchTree([0, 2, 4], fanout=2)
        assert tree.data_position(3) is None
        assert tree.data_position(99) is None

    def test_depth_grows_logarithmically(self):
        assert DispatchTree(list(range(8)), fanout=2).depth == 3
        assert DispatchTree(list(range(9)), fanout=2).depth == 4
        assert DispatchTree(list(range(64)), fanout=8).depth == 2

    def test_node_count_matches_formula(self):
        for num_keys in (1, 5, 16, 57, 100):
            for fanout in (2, 4, 8):
                tree = DispatchTree(list(range(num_keys)), fanout)
                assert tree.node_count == DispatchTree.expected_node_count(
                    num_keys, fanout
                ), (num_keys, fanout)

    def test_broadcast_order_is_parent_first(self):
        tree = DispatchTree(list(range(16)), fanout=2)
        ordered = tree.nodes_in_broadcast_order()
        assert ordered[0] is tree.root
        assert len(ordered) == tree.node_count

    def test_unsorted_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            DispatchTree([3, 1, 2], fanout=2)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            DispatchTree([1, 1, 2], fanout=2)

    def test_fanout_validation(self):
        with pytest.raises(ConfigurationError):
            DispatchTree([1, 2], fanout=1)

    def test_empty_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            DispatchTree([], fanout=2)


class TestOneMBroadcast:
    def test_cycle_length(self):
        broadcast = build_one_m_broadcast(list(range(20)), m=2, fanout=4)
        assert broadcast.cycle_length == 2 * broadcast.index_size + 20

    def test_every_key_broadcast_once(self):
        keys = list(range(0, 30, 3))
        broadcast = build_one_m_broadcast(keys, m=2, fanout=3)
        data_keys = [
            bucket.key for bucket in broadcast.buckets if bucket.kind == DATA
        ]
        assert sorted(data_keys) == keys

    def test_m_index_segments(self):
        broadcast = build_one_m_broadcast(list(range(24)), m=3, fanout=4)
        assert len(broadcast.index_root_positions()) == 3

    def test_next_index_offsets_point_at_roots(self):
        broadcast = build_one_m_broadcast(list(range(24)), m=3, fanout=4)
        roots = set(broadcast.index_root_positions())
        cycle = broadcast.cycle_length
        for position, bucket in enumerate(broadcast.buckets):
            target = (position + bucket.next_index_offset) % cycle
            assert target in roots, position
            assert bucket.next_index_offset > 0

    def test_index_entries_bounded_by_fanout(self):
        broadcast = build_one_m_broadcast(list(range(50)), m=2, fanout=4)
        for bucket in broadcast.buckets:
            if bucket.kind == INDEX:
                assert 1 <= len(bucket.entries) <= 4

    def test_m_validation(self):
        with pytest.raises(ConfigurationError):
            build_one_m_broadcast([1, 2, 3], m=0)
        with pytest.raises(ConfigurationError):
            build_one_m_broadcast([1, 2, 3], m=4)

    def test_data_position_unknown_key(self):
        broadcast = build_one_m_broadcast([0, 2], m=1, fanout=2)
        with pytest.raises(ConfigurationError):
            broadcast.data_position(1)


class TestTuningClient:
    @pytest.fixture
    def broadcast(self):
        return build_one_m_broadcast(list(range(0, 60, 2)), m=3, fanout=4)

    def test_probe_finds_every_key_from_every_start(self, broadcast):
        client = TuningClient(broadcast)
        for key in broadcast.keys[::5]:
            for start in range(0, broadcast.cycle_length, 7):
                result = client.probe(key, start)
                assert result.found, (key, start)
                data = broadcast.bucket_at(start + result.access_time - 1)
                assert data.kind == DATA and data.key == key

    def test_access_time_positive_and_bounded(self, broadcast):
        client = TuningClient(broadcast)
        for key in broadcast.keys[::7]:
            result = client.probe(key, 5)
            assert 1 <= result.access_time <= 2 * broadcast.cycle_length

    def test_tuning_is_constant_small(self, broadcast):
        client = TuningClient(broadcast)
        tunings = {
            client.probe(key, start).tuning_time
            for key in broadcast.keys[::4]
            for start in (0, 11, 37)
        }
        # probe + depth + data, with a -1 lucky-hit case possible.
        assert max(tunings) <= broadcast.tree_depth + 2
        assert min(tunings) >= 1

    def test_lucky_hit_costs_one_bucket(self, broadcast):
        key = broadcast.keys[0]
        position = broadcast.data_position(key)
        result = TuningClient(broadcast).probe(key, position)
        assert result.access_time == 1
        assert result.tuning_time == 1

    def test_absent_key_reported_quickly(self, broadcast):
        result = TuningClient(broadcast).probe(1, 0)  # odd keys absent
        assert not result.found
        assert result.tuning_time <= broadcast.tree_depth + 1

    def test_doze_time(self, broadcast):
        result = TuningClient(broadcast).probe(broadcast.keys[-1], 0)
        assert result.doze_time == result.access_time - result.tuning_time
        assert result.doze_time >= 0

    def test_negative_start_rejected(self, broadcast):
        with pytest.raises(ConfigurationError):
            TuningClient(broadcast).probe(0, -1)

    def test_measure_aggregates(self, broadcast):
        client = TuningClient(broadcast)
        stats = client.measure([0, 2, 4], [1, 2, 3])
        assert stats.probes == 3
        assert stats.not_found == 0
        assert stats.mean_tuning_time <= broadcast.tree_depth + 2

    def test_measure_empty_rejected(self, broadcast):
        with pytest.raises(ConfigurationError):
            TuningClient(broadcast).measure([], [])


class TestFlatProbe:
    def test_tuning_equals_access(self):
        result = flat_probe(10, target_position=7, start=2)
        assert result.access_time == result.tuning_time == 6

    def test_wraps_around(self):
        result = flat_probe(10, target_position=1, start=8)
        assert result.access_time == 4

    def test_target_validation(self):
        with pytest.raises(ConfigurationError):
            flat_probe(10, target_position=10, start=0)


class TestAnalysis:
    def test_index_size_formula(self):
        assert index_size(64, 8) == 8 + 1  # 8 bottom nodes + root
        assert index_size(1, 4) == 1

    def test_tree_depth(self):
        assert tree_depth(64, 8) == 2
        assert tree_depth(65, 8) == 3
        assert tree_depth(4, 8) == 1

    def test_tuning_independent_of_m(self):
        assert expected_tuning_time(1000, 1, 8) == expected_tuning_time(
            1000, 8, 8
        )

    def test_access_has_interior_minimum(self):
        values = [expected_access_time(1000, m, 8) for m in range(1, 20)]
        best = values.index(min(values)) + 1
        assert 1 < best < 19

    def test_optimal_m_matches_sweep(self):
        best = optimal_m(1000, 8)
        sweep = min(
            range(1, 40), key=lambda m: expected_access_time(1000, m, 8)
        )
        assert best == sweep

    def test_no_index_expectations(self):
        expectations = no_index_expectations(999)
        assert expectations["access"] == expectations["tuning"] == 500.0

    def test_analysis_matches_simulation(self, rng):
        keys = list(range(0, 800, 2))  # 400 data buckets
        m = 3
        fanout = 8
        broadcast = build_one_m_broadcast(keys, m=m, fanout=fanout)
        client = TuningClient(broadcast)
        starts = rng.integers(0, broadcast.cycle_length, size=1500)
        targets = rng.choice(keys, size=1500)
        stats = client.measure(targets, starts)
        expectations = one_m_expectations(len(keys), m, fanout)
        # Access: the closed form ignores the passed-this-cycle wrap
        # bias, so allow ~12%.
        assert stats.mean_access_time == pytest.approx(
            expectations["access"], rel=0.12
        )
        assert stats.mean_tuning_time == pytest.approx(
            expectations["tuning"], abs=0.5
        )

    def test_m_validation(self):
        with pytest.raises(ConfigurationError):
            expected_access_time(100, 0, 4)

    def test_selective_tuning_headline(self, rng):
        """The subsystem's reason to exist: ~100x less listening for a
        modest access-time overhead versus the unindexed carousel."""
        keys = list(range(500))
        broadcast = build_one_m_broadcast(keys, m=optimal_m(500, 8), fanout=8)
        client = TuningClient(broadcast)
        starts = rng.integers(0, broadcast.cycle_length, size=800)
        targets = rng.choice(keys, size=800)
        indexed = client.measure(targets, starts)
        flat = no_index_expectations(500)
        assert indexed.mean_tuning_time < flat["tuning"] / 25
        assert indexed.mean_access_time < flat["access"] * 3
