"""Unit tests for access distributions (repro.workload.distributions/zipf)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.distributions import ExplicitDistribution, UniformDistribution
from repro.workload.zipf import ZipfRegionDistribution


class TestUniform:
    def test_probabilities_equal(self):
        distribution = UniformDistribution(4)
        assert np.allclose(distribution.probabilities(), 0.25)

    def test_probability_outside_range_is_zero(self):
        distribution = UniformDistribution(4)
        assert distribution.probability(10) == 0.0
        assert distribution.probability(-1) == 0.0

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            UniformDistribution(0)

    def test_sampling_covers_range(self, rng):
        distribution = UniformDistribution(8)
        samples = distribution.sample(rng, 4000)
        assert set(np.unique(samples)) == set(range(8))

    def test_sample_one(self, rng):
        distribution = UniformDistribution(8)
        assert 0 <= distribution.sample_one(rng) < 8


class TestExplicit:
    def test_normalisation(self):
        distribution = ExplicitDistribution([2.0, 2.0])
        assert np.allclose(distribution.probabilities(), [0.5, 0.5])

    def test_zero_weight_pages_never_sampled(self, rng):
        distribution = ExplicitDistribution([1.0, 0.0, 1.0])
        samples = distribution.sample(rng, 2000)
        assert 1 not in samples

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitDistribution([1.0, -0.5])

    def test_zero_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitDistribution([0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitDistribution([])

    def test_probability_map_skips_zero_pages(self):
        distribution = ExplicitDistribution([1.0, 0.0, 3.0])
        assert set(distribution.probability_map()) == {0, 2}

    def test_empirical_frequencies_match(self, rng):
        distribution = ExplicitDistribution([0.7, 0.3])
        samples = distribution.sample(rng, 40_000)
        assert np.mean(samples == 0) == pytest.approx(0.7, abs=0.02)


class TestZipfRegions:
    def test_probabilities_sum_to_one(self):
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        assert distribution.probabilities().sum() == pytest.approx(1.0)

    def test_uniform_within_region(self):
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        probabilities = distribution.probabilities()
        for region in range(10):
            chunk = probabilities[region * 10 : (region + 1) * 10]
            assert np.allclose(chunk, chunk[0])

    def test_region_masses_follow_zipf(self):
        theta = 0.95
        distribution = ZipfRegionDistribution(100, 10, theta)
        mass_1 = distribution.region_probability(0)
        mass_2 = distribution.region_probability(1)
        assert mass_1 / mass_2 == pytest.approx(2.0**theta)

    def test_theta_zero_is_uniform(self):
        distribution = ZipfRegionDistribution(100, 10, 0.0)
        assert np.allclose(distribution.probabilities(), 0.01)

    def test_skew_grows_with_theta(self):
        mild = ZipfRegionDistribution(100, 10, 0.5)
        strong = ZipfRegionDistribution(100, 10, 1.5)
        assert strong.probability(0) > mild.probability(0)

    def test_page_zero_is_hottest(self):
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        probabilities = distribution.probabilities()
        assert probabilities[0] == probabilities.max()
        assert probabilities[-1] == probabilities.min()

    def test_region_of(self):
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        assert distribution.region_of(0) == 0
        assert distribution.region_of(9) == 0
        assert distribution.region_of(10) == 1
        assert distribution.region_of(99) == 9

    def test_region_of_out_of_range(self):
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        with pytest.raises(ConfigurationError):
            distribution.region_of(100)

    def test_region_probability_out_of_range(self):
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        with pytest.raises(ConfigurationError):
            distribution.region_probability(10)

    def test_nondivisible_region_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfRegionDistribution(100, 30, 0.95)

    def test_negative_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfRegionDistribution(100, 10, -0.1)

    def test_paper_parameters(self):
        distribution = ZipfRegionDistribution(1000, 50, 0.95)
        assert distribution.num_regions == 20
        assert distribution.probabilities().sum() == pytest.approx(1.0)

    def test_sampling_matches_probabilities(self, rng):
        distribution = ZipfRegionDistribution(100, 10, 0.95)
        samples = distribution.sample(rng, 50_000)
        empirical_region0 = np.mean(samples < 10)
        assert empirical_region0 == pytest.approx(
            distribution.region_probability(0), abs=0.02
        )
