"""The public API surface, pinned.

Three protections for the 1.1 consolidation:

* an ``inspect``-based snapshot of ``repro.__all__`` and of the
  keyword-only contract on the public entry points, so an accidental
  signature regression (an option drifting back to positional) fails
  here before it reaches a caller;
* the one-release positional shim: deprecated positional options still
  work, warn, and reject ambiguous keyword+positional mixes;
* the engine registry: every rejection names the valid engines.
"""

import inspect
import warnings

import pytest

import repro
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engines import (
    EngineSpec,
    engine_names,
    get_engine,
    get_plan_engine,
    plan_engine_names,
    register_engine,
)
from repro.experiments.runner import run_experiment, sweep, sweep_results
from repro.population import run_population

EXPECTED_ALL = [
    "BroadcastProgram",
    "BroadcastSchedule",
    "ConfigurationError",
    "DISK_PRESETS",
    "DiskLayout",
    "EngineSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "LogicalPhysicalMapping",
    "MetricsRegistry",
    "MonitorError",
    "MonitorSuite",
    "PolicyError",
    "PopulationResult",
    "PopulationSpec",
    "Profiler",
    "ProgramSpec",
    "ReproError",
    "ScheduleError",
    "SegmentSpec",
    "SimulationError",
    "Tracer",
    "ZipfRegionDistribution",
    "__version__",
    "available_policies",
    "engine_names",
    "make_policy",
    "register_engine",
    "run_clients",
    "run_experiment",
    "run_population",
    "sweep",
    "sweep_results",
]


def small_config(**overrides):
    base = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=200,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestExportSnapshot:
    def test_all_matches_snapshot(self):
        assert repro.__all__ == EXPECTED_ALL

    def test_all_is_sorted_and_unique(self):
        assert repro.__all__ == sorted(set(repro.__all__))

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.3.0"


class TestKeywordOnlyContract:
    """Every option (defaulted parameter) on the entry points is keyword-only."""

    ENTRY_POINTS = {
        "run_experiment": run_experiment,
        "sweep": sweep,
        "sweep_results": sweep_results,
        "run_population": run_population,
    }

    @pytest.mark.parametrize("name", sorted(ENTRY_POINTS))
    def test_options_are_keyword_only(self, name):
        signature = inspect.signature(self.ENTRY_POINTS[name])
        for parameter in signature.parameters.values():
            if parameter.default is not inspect.Parameter.empty:
                assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, (
                    f"{name}({parameter.name}=...) must be keyword-only"
                )

    def test_shimmed_functions_accept_varargs(self):
        # The one-release shim: a VAR_POSITIONAL slot catches legacy
        # positional options.  run_population is new in 1.1 and never
        # had positional options, so it carries no shim.
        for name in ("run_experiment", "sweep", "sweep_results"):
            kinds = {
                p.kind for p in
                inspect.signature(self.ENTRY_POINTS[name]).parameters.values()
            }
            assert inspect.Parameter.VAR_POSITIONAL in kinds, name
        population_kinds = {
            p.kind for p in
            inspect.signature(run_population).parameters.values()
        }
        assert inspect.Parameter.VAR_POSITIONAL not in population_kinds

    def test_run_population_option_names(self):
        signature = inspect.signature(run_population)
        options = [
            p.name for p in signature.parameters.values()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        ]
        assert options == [
            "jobs", "executor", "progress", "checkpoint", "tracer",
            "metrics", "manifest", "keep_results", "gamma", "profile",
            "monitors",
        ]


class TestDeprecationShim:
    def test_positional_engine_warns_and_maps(self):
        config = small_config()
        with pytest.warns(DeprecationWarning, match="keyword-only"):
            legacy = run_experiment(config, "fast", True)
        assert legacy.samples is not None  # collect_responses mapped
        modern = run_experiment(config, engine="fast", collect_responses=True)
        assert legacy.mean_response_time == modern.mean_response_time
        assert legacy.samples == modern.samples

    def test_positional_plus_keyword_conflict(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values.*'engine'"):
                run_experiment(small_config(), "fast", engine="process")

    def test_too_many_positionals(self):
        with pytest.raises(TypeError, match="at most 5 option arguments"):
            run_experiment(small_config(), "fast", False, None, None,
                           None, "extra")

    def test_sweep_positional_metric_warns_and_maps(self):
        configs = [small_config(), small_config(delta=7)]

        def metric(result):
            return result.hit_rate

        with pytest.warns(DeprecationWarning, match="sweep"):
            legacy = sweep(configs, metric)
        assert legacy == sweep(configs, metric=metric)

    def test_sweep_results_positional_engine_warns(self):
        configs = [small_config()]
        with pytest.warns(DeprecationWarning, match="sweep_results"):
            legacy = sweep_results(configs, "fast")
        modern = sweep_results(configs, engine="fast")
        assert [r.mean_response_time for r in legacy] == \
            [r.mean_response_time for r in modern]

    def test_keyword_calls_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_experiment(small_config(), engine="fast")

    def test_multichannel_internal_path_does_not_warn(self):
        # The channels > 1 pipeline must route through the internal
        # builders, never the deprecated shims.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_experiment(small_config(channels=2), engine="fast")


class TestProgramSpecSurface:
    """The 1.2 consolidation: one declarative builder (shims removed in 1.3)."""

    def test_spec_is_keyword_only(self):
        signature = inspect.signature(repro.ProgramSpec)
        for parameter in signature.parameters.values():
            assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, (
                f"ProgramSpec({parameter.name}=...) must be keyword-only"
            )

    def test_spec_builds_single_channel(self):
        layout, schedule = repro.ProgramSpec(
            sizes=(2, 4, 8), delta=3
        ).build()
        assert layout.total_pages == 14
        assert isinstance(schedule, repro.BroadcastSchedule)

    def test_spec_builds_multi_channel(self):
        layout, program = repro.ProgramSpec(
            sizes=(2, 4, 8), delta=3, channels=2
        ).build()
        assert isinstance(program, repro.BroadcastProgram)
        assert program.num_channels == 2
        assert sorted(program.pages) == list(range(layout.total_pages))

    def test_spec_rejects_multi_channel_non_multidisk(self):
        with pytest.raises(ConfigurationError, match="multidisk"):
            repro.ProgramSpec(sizes=(8,), kind="flat", channels=2)

    def test_deprecated_free_functions_removed(self):
        # The 1.2 one-release shims are gone in 1.3: only the
        # underscore internals remain, off the public surface.
        from repro.core import programs

        for shim in ("multidisk_program", "flat_program",
                     "clustered_skewed_program",
                     "random_allocation_program", "schedule_for"):
            assert not hasattr(programs, shim), shim
            assert not hasattr(repro, shim), shim

    def test_internal_builder_matches_spec_output(self):
        from repro.core.programs import _multidisk_program

        layout = repro.DiskLayout.from_delta((2, 4, 8), 3)
        _, modern = repro.ProgramSpec(sizes=(2, 4, 8), delta=3).build()
        assert _multidisk_program(layout).slots == modern.slots


class TestChannelOptionsSurface:
    """channels= / retune_cost= are keyword-only everywhere they appear."""

    def test_config_fields_keyword_only(self):
        signature = inspect.signature(ExperimentConfig)
        for name in ("channels", "retune_cost"):
            assert signature.parameters[name].kind is \
                inspect.Parameter.KEYWORD_ONLY, name

    def test_config_defaults_reproduce_single_channel(self):
        config = small_config()
        assert config.channels == 1
        assert config.retune_cost == 1.0

    def test_plan_engines_accept_channel_kwargs(self):
        for name in plan_engine_names():
            run_plan = get_plan_engine(name).run_plan
            parameters = inspect.signature(run_plan).parameters
            for option in ("channels", "retune_cost"):
                assert option in parameters, (name, option)
                assert parameters[option].kind is \
                    inspect.Parameter.KEYWORD_ONLY, (name, option)

    def test_config_hash_omits_channel_defaults(self):
        from repro.obs.manifest import _config_dict, config_hash

        implicit = small_config()
        explicit = small_config(channels=1, retune_cost=1.0)
        assert "channels" not in _config_dict(implicit)
        assert "retune_cost" not in _config_dict(implicit)
        assert config_hash(implicit) == config_hash(explicit)
        multi = small_config(channels=2)
        assert _config_dict(multi)["channels"] == 2
        assert config_hash(multi) != config_hash(implicit)


class TestEngineRegistry:
    def test_names_include_builtins(self):
        assert set(engine_names()) >= {
            "batch", "fast", "fast-reference", "process", "hybrid", "query",
        }
        assert plan_engine_names() == (
            "batch", "fast", "fast-reference", "process"
        )

    def test_unknown_engine_lists_valid_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_engine("quantum")
        message = str(excinfo.value)
        for name in engine_names():
            assert name in message

    def test_study_engine_rejected_for_plans(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_plan_engine("hybrid")
        message = str(excinfo.value)
        assert "does not execute RunPlans" in message
        assert "fast" in message and "process" in message

    def test_run_experiment_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="valid engines"):
            run_experiment(small_config(), engine="quantum")

    def test_reregistering_different_spec_is_an_error(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(EngineSpec(
                name="fast",
                summary="an impostor",
                executes_plans=False,
                study="repro.experiments.figures:query_study",
            ))

    def test_reregistering_identical_spec_is_idempotent(self):
        spec = get_engine("hybrid")
        assert register_engine(spec) is spec

    def test_study_engine_resolves_callable(self):
        assert callable(get_engine("query").resolve_study())
