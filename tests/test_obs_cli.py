"""Tests for ``python -m repro.obs summary`` (repro.obs.cli)."""

from __future__ import annotations

import json

import pytest

from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.experiments.runner import run_experiment
from repro.obs.cli import (
    EXIT_OK,
    EXIT_USAGE,
    cache_summary,
    interarrival_summary,
    main,
    response_summary,
    summarise,
)
from repro.obs.trace import JsonlSink, Tracer, trace_schedule


@pytest.fixture
def schedule_trace(tmp_path):
    """A JSONL trace of three periods of the tiny multidisk program."""
    layout = DiskLayout((2, 4, 8), (4, 2, 1))
    path = str(tmp_path / "schedule.jsonl")
    with Tracer(JsonlSink(path)) as tracer:
        trace_schedule(multidisk_program(layout), tracer, periods=3)
    return path


@pytest.fixture
def experiment_trace(tmp_path, mini_config):
    """A JSONL trace of a full mini experiment (client + cache records)."""
    path = str(tmp_path / "run.jsonl")
    with Tracer(JsonlSink(path)) as tracer:
        run_experiment(mini_config.with_(num_requests=300), tracer=tracer)
    return path


class TestAnalyses:
    def test_multidisk_interarrival_is_fixed(self, schedule_trace):
        records = [json.loads(line) for line in open(schedule_trace)]
        section = interarrival_summary(records)
        assert section["pages_observed"] == 14
        assert section["max_gap_variance"] == 0.0
        assert section["fixed_interarrival"] is True

    def test_perturbed_gap_fails_the_check(self, schedule_trace):
        records = [json.loads(line) for line in open(schedule_trace)]
        delivers = [r for r in records if r["kind"] == "channel.deliver"]
        delivers[-1]["t"] += 0.5  # break one page's final gap
        section = interarrival_summary(delivers)
        assert section["fixed_interarrival"] is False
        assert section["max_gap_variance"] > 0

    def test_sections_absent_without_their_records(self, schedule_trace):
        records = [json.loads(line) for line in open(schedule_trace)]
        summary = summarise(records)
        assert "broadcast" in summary
        assert "responses" not in summary and "cache" not in summary
        assert response_summary(records) is None
        assert cache_summary(records) is None

    def test_experiment_trace_has_all_sections(self, experiment_trace):
        records = [json.loads(line) for line in open(experiment_trace)]
        summary = summarise(records)
        assert summary["overview"]["records"] == len(records)
        responses = summary["responses"]
        assert responses["hits"] + responses["misses"] == (
            summary["overview"]["kinds"]["client.request"]
        )
        assert responses["waits"]["count"] == responses["misses"]
        cache = summary["cache"]
        assert cache["admissions"] >= cache["evictions"]
        assert cache["longest_resident"]


class TestCli:
    def test_text_summary_reports_fixed_gaps(self, schedule_trace, capsys):
        assert main(["summary", schedule_trace]) == EXIT_OK
        out = capsys.readouterr().out
        assert "fixed gaps       : yes" in out
        assert "max gap variance : 0" in out

    def test_json_summary_is_machine_readable(self, experiment_trace, capsys):
        assert main(["summary", experiment_trace, "--json"]) == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert set(document) >= {"overview", "responses", "cache"}

    def test_top_limits_ranked_tables(self, schedule_trace, capsys):
        assert main(["summary", schedule_trace, "--top", "2",
                     "--json"]) == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert len(document["broadcast"]["pages"]) == 2

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        code = main(["summary", str(tmp_path / "absent.jsonl")])
        assert code == EXIT_USAGE
        assert "cannot read trace" in capsys.readouterr().err

    def test_malformed_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0, "kind": "x"}\nnot json\n')
        assert main(["summary", str(path)]) == EXIT_USAGE
        assert "malformed trace line" in capsys.readouterr().err

    def test_unknown_command_exits_2(self, capsys):
        assert main(["frobnicate"]) == EXIT_USAGE

    def test_module_entry_point(self, schedule_trace):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro.obs", "summary", schedule_trace],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert completed.returncode == 0
        assert "fixed gaps" in completed.stdout


class TestAnalyzeCommand:
    def test_text_output_attributes_by_disk(self, experiment_trace, capsys):
        assert main(["analyze", experiment_trace,
                     "--disk-sizes", "50,200,250"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "response time by disk" in out
        assert "disk1" in out
        assert "cache residency" in out

    def test_json_output_is_schema_tagged(self, experiment_trace, capsys):
        assert main(["analyze", experiment_trace, "--json"]) == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.obs.analyze/1"
        assert "cache_residency" in document
        # Without --disk-sizes every wait lands in the "all" bucket.
        assert set(document["response_by_disk"]["disks"]) == {"all"}

    def test_space_separated_disk_sizes(self, experiment_trace, capsys):
        assert main(["analyze", experiment_trace,
                     "--disk-sizes", "50 200 250", "--json"]) == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert "disk1" in document["response_by_disk"]["disks"]

    @pytest.mark.parametrize("bad", ["x,y", "50,-3", "0", ""])
    def test_bad_disk_sizes_exit_2(self, experiment_trace, bad, capsys):
        code = main(["analyze", experiment_trace, "--disk-sizes", bad])
        assert code == EXIT_USAGE
        assert "--disk-sizes" in capsys.readouterr().err

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "absent.jsonl")])
        assert code == EXIT_USAGE
        assert "cannot read trace" in capsys.readouterr().err


class TestManifestSummary:
    def test_run_manifest_pretty_printed(self, tmp_path, mini_config,
                                         capsys):
        from repro.obs.monitor import MonitorSuite
        from repro.obs.profile import Profiler

        path = str(tmp_path / "run-manifest.json")
        run_experiment(
            mini_config.with_(num_requests=300), manifest=path,
            profile=Profiler(), monitors=MonitorSuite(),
        )
        assert main(["summary", path]) == EXIT_OK
        out = capsys.readouterr().out
        assert "profile" in out
        assert "monitors" in out
        assert "OK" in out

    def test_sweep_manifest_shows_build_cache(self, tmp_path, mini_config,
                                              capsys):
        from repro.experiments.runner import sweep_results
        from repro.obs.profile import Profiler

        path = str(tmp_path / "sweep-manifest.json")
        sweep_results(
            [mini_config.with_(delta=d) for d in (0, 1)],
            manifest=path, profile=Profiler(),
        )
        assert main(["summary", path]) == EXIT_OK
        out = capsys.readouterr().out
        assert "build cache" in out
        assert "closed_form" in out

    def test_json_passthrough_echoes_the_manifest(self, tmp_path,
                                                  mini_config, capsys):
        path = str(tmp_path / "run-manifest.json")
        run_experiment(mini_config.with_(num_requests=300), manifest=path)
        assert main(["summary", path, "--json"]) == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert document == json.loads(open(path).read())


class TestRegressCommand:
    def _bench(self, tmp_path, name="BENCH_t.json", wall=10.0):
        path = tmp_path / name
        path.write_text(json.dumps({
            "benchmark": "t", "wall_seconds": wall,
            "parameters": {"seed": 7},
        }))
        return str(path)

    def test_green_gate_exits_0(self, tmp_path, capsys):
        bench = self._bench(tmp_path)
        history = str(tmp_path / "history.jsonl")
        assert main(["regress", bench, "--history", history,
                     "--record"]) == EXIT_OK
        assert main(["regress", bench, "--history", history]) == EXIT_OK
        assert "result: OK" in capsys.readouterr().out

    def test_regression_exits_1(self, tmp_path, capsys):
        baseline = self._bench(tmp_path, wall=10.0)
        history = str(tmp_path / "history.jsonl")
        main(["regress", baseline, "--history", history, "--record"])
        slow = self._bench(tmp_path, name="BENCH_slow.json", wall=30.0)
        assert main(["regress", slow, "--history", history]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_markdown_and_json_formats(self, tmp_path, capsys):
        bench = self._bench(tmp_path)
        history = str(tmp_path / "history.jsonl")
        assert main(["regress", bench, "--history", history,
                     "--format", "md"]) == EXIT_OK
        assert "| benchmark |" in capsys.readouterr().out
        assert main(["regress", bench, "--history", history,
                     "--format", "json"]) == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.obs.regress_report/1"

    def test_missing_bench_file_exits_2(self, tmp_path, capsys):
        code = main(["regress", str(tmp_path / "BENCH_absent.json")])
        assert code == EXIT_USAGE
        assert "cannot read" in capsys.readouterr().err

    def test_non_bench_document_exits_2(self, tmp_path, capsys):
        path = tmp_path / "BENCH_odd.json"
        path.write_text(json.dumps({"no_benchmark_field": True}))
        assert main(["regress", str(path)]) == EXIT_USAGE
        assert "benchmark" in capsys.readouterr().err
