"""Unit tests for request traces (repro.workload.trace)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.distributions import ExplicitDistribution
from repro.workload.trace import RequestTrace, generate_trace


class TestRequestTrace:
    def test_basic_properties(self):
        trace = RequestTrace.from_pages([3, 1, 3, 2])
        assert len(trace) == 4
        assert trace[0] == 3
        assert list(trace) == [3, 1, 3, 2]
        assert trace.distinct_pages == 3

    def test_frequencies(self):
        trace = RequestTrace.from_pages([3, 1, 3, 2])
        assert trace.frequencies()[3] == 2

    def test_empirical_probability(self):
        trace = RequestTrace.from_pages([0, 0, 1, 1])
        assert trace.empirical_probability(0) == 0.5
        assert trace.empirical_probability(9) == 0.0

    def test_split(self):
        trace = RequestTrace.from_pages([0, 1, 2, 3])
        warm, measured = trace.split(1)
        assert list(warm) == [0]
        assert list(measured) == [1, 2, 3]

    def test_split_bounds(self):
        trace = RequestTrace.from_pages([0, 1])
        with pytest.raises(ConfigurationError):
            trace.split(0)
        with pytest.raises(ConfigurationError):
            trace.split(2)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestTrace.from_pages([])

    def test_negative_pages_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestTrace.from_pages([0, -1])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestTrace(np.zeros((2, 2), dtype=np.int64))


class TestGenerateTrace:
    def test_length(self, rng):
        distribution = ExplicitDistribution([0.5, 0.5])
        trace = generate_trace(distribution, 100, rng)
        assert len(trace) == 100

    def test_only_supported_pages(self, rng):
        distribution = ExplicitDistribution([0.0, 1.0, 0.0])
        trace = generate_trace(distribution, 50, rng)
        assert set(trace) == {1}

    def test_deterministic_for_seeded_rng(self):
        distribution = ExplicitDistribution([0.3, 0.7])
        a = generate_trace(distribution, 50, np.random.default_rng(4))
        b = generate_trace(distribution, 50, np.random.default_rng(4))
        assert np.array_equal(a.pages, b.pages)

    def test_zero_requests_rejected(self, rng):
        distribution = ExplicitDistribution([1.0])
        with pytest.raises(ConfigurationError):
            generate_trace(distribution, 0, rng)
