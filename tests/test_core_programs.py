"""Unit tests for the program generators (repro.core.programs)."""

import numpy as np
import pytest

from repro.core.chunks import EMPTY_SLOT
from repro.core.disks import DiskLayout
from repro.core.programs import (
    _clustered_skewed_program as clustered_skewed_program,
    _flat_program as flat_program,
    _multidisk_program as multidisk_program,
    paper_example_programs,
    _random_allocation_program as random_allocation_program,
    _schedule_of_kind as schedule_for,
)
from repro.errors import ConfigurationError


class TestFlatProgram:
    def test_each_page_once(self):
        program = flat_program(5)
        assert list(program.slots) == [0, 1, 2, 3, 4]

    def test_flat_expected_delay_is_half_period(self):
        program = flat_program(10)
        for page in range(10):
            assert program.expected_delay(page) == pytest.approx(5.0)

    def test_zero_pages_rejected(self):
        with pytest.raises(ConfigurationError):
            flat_program(0)


class TestMultidiskProgram:
    def test_figure3_program(self):
        layout = DiskLayout((1, 2, 4), (4, 2, 1))
        program = multidisk_program(layout)
        assert list(program.slots) == [0, 1, 3, 0, 2, 4, 0, 1, 5, 0, 2, 6]

    def test_every_page_has_fixed_interarrival(self):
        layout = DiskLayout((3, 5, 11), (6, 3, 1))
        program = multidisk_program(layout)
        for page in range(layout.total_pages):
            assert program.has_fixed_interarrival(page), page

    def test_interarrival_equals_period_over_rel_freq(self):
        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        program = multidisk_program(layout)
        for disk in range(layout.num_disks):
            for page in layout.pages_on_disk(disk):
                gaps = program.gaps(page)
                assert gaps[0] == program.period // layout.rel_freqs[disk]

    def test_broadcast_counts_proportional_to_rel_freq(self):
        layout = DiskLayout((2, 3), (3, 1))
        program = multidisk_program(layout)
        assert program.broadcasts_per_period(0) == 3
        assert program.broadcasts_per_period(2) == 1

    def test_flat_layout_gives_flat_timing(self):
        layout = DiskLayout.from_delta((3, 3), delta=0)
        program = multidisk_program(layout)
        for page in range(6):
            assert program.broadcasts_per_period(page) == 1

    def test_default_label_mentions_layout(self):
        program = multidisk_program(DiskLayout((1, 2), (2, 1)))
        assert "multidisk" in program.label


class TestSkewedProgram:
    def test_copies_are_clustered(self):
        program = clustered_skewed_program({0: 2, 1: 1, 2: 1})
        assert list(program.slots) == [0, 0, 1, 2]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            clustered_skewed_program({})

    def test_zero_copies_rejected(self):
        with pytest.raises(ConfigurationError):
            clustered_skewed_program({0: 0})


class TestRandomProgram:
    def test_contains_every_positive_share_page(self, rng):
        program = random_allocation_program({0: 2.0, 1: 1.0, 2: 1.0}, 64, rng)
        assert program.pages == [0, 1, 2]

    def test_respects_length(self, rng):
        program = random_allocation_program({0: 1.0, 1: 1.0}, 32, rng)
        assert program.period == 32

    def test_shares_reflected_in_counts(self, rng):
        program = random_allocation_program({0: 3.0, 1: 1.0}, 4096, rng)
        ratio = program.broadcasts_per_period(0) / program.broadcasts_per_period(1)
        assert ratio == pytest.approx(3.0, rel=0.2)

    def test_zero_share_pages_excluded(self, rng):
        program = random_allocation_program({0: 1.0, 1: 0.0}, 16, rng)
        assert 1 not in program

    def test_length_too_small_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            random_allocation_program({0: 1.0, 1: 1.0, 2: 1.0}, 2, rng)

    def test_no_positive_share_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            random_allocation_program({0: 0.0}, 8, rng)

    def test_deterministic_given_rng_state(self):
        a = random_allocation_program(
            {0: 1.0, 1: 1.0}, 32, np.random.default_rng(5)
        )
        b = random_allocation_program(
            {0: 1.0, 1: 1.0}, 32, np.random.default_rng(5)
        )
        assert a.slots == b.slots


class TestPaperExamples:
    def test_figure2_programs(self):
        programs = paper_example_programs()
        assert list(programs["flat"].slots) == [0, 1, 2]
        assert list(programs["skewed"].slots) == [0, 0, 1, 2]
        assert list(programs["multidisk"].slots) == [0, 1, 0, 2]

    def test_multidisk_beats_skewed_for_page_a(self):
        programs = paper_example_programs()
        assert (
            programs["multidisk"].expected_delay(0)
            < programs["skewed"].expected_delay(0)
        )


class TestScheduleFor:
    def test_multidisk_kind(self):
        layout = DiskLayout((1, 2), (2, 1))
        program = schedule_for(layout, kind="multidisk")
        assert program.broadcasts_per_period(0) == 2

    def test_flat_kind_ignores_frequencies(self):
        layout = DiskLayout((1, 2), (2, 1))
        program = schedule_for(layout, kind="flat")
        assert program.period == 3
        assert program.broadcasts_per_period(0) == 1

    def test_skewed_kind_uses_rel_freqs(self):
        layout = DiskLayout((1, 2), (2, 1))
        program = schedule_for(layout, kind="skewed")
        assert program.broadcasts_per_period(0) == 2
        assert not program.has_fixed_interarrival(0)

    def test_random_kind_requires_rng(self):
        layout = DiskLayout((1, 2), (2, 1))
        with pytest.raises(ConfigurationError):
            schedule_for(layout, kind="random")

    def test_random_kind(self, rng):
        layout = DiskLayout((1, 2), (2, 1))
        program = schedule_for(layout, kind="random", rng=rng)
        assert program.num_pages == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule_for(DiskLayout((1,), (1,)), kind="mystery")


class TestBandwidthExhaustion:
    def test_padding_is_small_at_paper_scale(self):
        # §2.2: unused slots should be a small fraction of the broadcast.
        for sizes in ((500, 4500), (900, 4100), (300, 1200, 3500)):
            for delta in range(1, 8):
                layout = DiskLayout.from_delta(sizes, delta)
                program = multidisk_program(layout)
                assert program.empty_slots / program.period < 0.02, (
                    sizes,
                    delta,
                )

    def test_padding_slots_marked_empty(self):
        layout = DiskLayout((1, 3), (2, 1))
        program = multidisk_program(layout)
        assert EMPTY_SLOT not in program.pages
        assert program.empty_slots == 1
