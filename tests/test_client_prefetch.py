"""Tests for the PT prefetching extension (repro.client.prefetch)."""

import pytest

from repro.client.prefetch import PrefetchEngine, pt_value
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace, generate_trace


def build_engine(variant="steady", cache=4, layout=None, probabilities=None):
    layout = layout or DiskLayout((2, 6), (3, 1))
    schedule = multidisk_program(layout)
    mapping = LogicalPhysicalMapping(layout)
    probabilities = probabilities or {
        page: (8 - page) / 36.0 for page in range(8)
    }
    return PrefetchEngine(
        schedule=schedule,
        mapping=mapping,
        layout=layout,
        probability=lambda page: probabilities.get(page, 0.0),
        cache_capacity=cache,
        think_time=2.0,
        variant=variant,
    )


class TestPtValue:
    def test_value_is_probability_times_wait(self):
        layout = DiskLayout((2, 6), (3, 1))
        schedule = multidisk_program(layout)
        wait = schedule.next_arrival(0, 0.0) - 0.0
        assert pt_value(0.5, schedule, 0, 0.0) == pytest.approx(0.5 * wait)

    def test_zero_probability_is_worthless(self):
        layout = DiskLayout((2, 6), (3, 1))
        schedule = multidisk_program(layout)
        assert pt_value(0.0, schedule, 0, 0.0) == 0.0


class TestPrefetchEngine:
    def test_variant_validation(self):
        with pytest.raises(ConfigurationError):
            build_engine(variant="psychic")

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            build_engine(cache=0)

    def test_cache_fills_with_valuable_pages_while_thinking(self):
        engine = build_engine(cache=4)
        # A trace of one request; by its service time several pages have
        # gone by and been prefetched.
        outcome = engine.run_trace(RequestTrace.from_pages([7]))
        assert len(engine.resident_pages) >= 2

    def test_prefetched_page_is_a_hit(self):
        engine = build_engine(cache=8)
        # First request forces waiting through the broadcast; page 0 is
        # broadcast constantly and will be prefetched; the second request
        # for it must then be a hit.
        outcome = engine.run_trace(
            RequestTrace.from_pages([7, 0]),
            collect_responses=True,
        )
        assert outcome.samples[1] == 0.0

    def test_swap_rule_prefers_valuable_pages(self):
        # Cache of 1: the single slot should end up holding the page with
        # the highest steady value among those broadcast.
        engine = build_engine(cache=1)
        engine.run_trace(RequestTrace.from_pages([7, 7, 7]))
        resident = engine.resident_pages[0]
        values = {
            page: engine._steady(page) for page in range(8)
        }
        assert values[resident] == max(values.values())

    def test_dynamic_variant_runs(self):
        engine = build_engine(variant="dynamic", cache=3)
        outcome = engine.run_trace(RequestTrace.from_pages([7, 3, 5]))
        assert outcome.measured_requests == 3

    def test_warmup_requests_excluded_from_measurement(self):
        engine = build_engine(cache=4)
        outcome = engine.run_trace(
            RequestTrace.from_pages([7, 6, 5, 4]), warmup_requests=2
        )
        assert outcome.measured_requests == 2


class TestPrefetchBeatsDemand:
    def test_prefetch_improves_on_demand_lix(self):
        """The §7 conjecture: opportunistic prefetching helps."""
        config = ExperimentConfig(
            disk_sizes=(50, 200, 250),
            delta=3,
            cache_size=50,
            policy="LIX",
            offset=50,
            noise=0.30,
            access_range=100,
            region_size=10,
            num_requests=1_500,
            seed=29,
        )
        demand = run_experiment(config)

        layout = config.build_layout()
        schedule = config.build_schedule(layout)
        streams = config.build_streams()
        mapping = config.build_mapping(layout, streams)
        distribution = config.build_distribution()
        probabilities = distribution.probabilities()
        engine = PrefetchEngine(
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            probability=lambda page: (
                float(probabilities[page]) if page < len(probabilities) else 0.0
            ),
            cache_capacity=config.cache_size,
            think_time=config.think_time,
        )
        trace = generate_trace(
            distribution, config.num_requests, streams.stream("requests")
        )
        prefetch = engine.run_trace(trace, warmup_requests=200)
        assert prefetch.response.mean < demand.mean_response_time
