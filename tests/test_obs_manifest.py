"""Run-manifest tests (repro.obs.manifest): hashing, schema, sweep."""

from __future__ import annotations

import json

from repro.experiments.runner import run_experiment, sweep, sweep_results
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    SWEEP_SCHEMA,
    build_manifest,
    build_sweep_manifest,
    config_hash,
    read_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import MemorySink, Tracer


class TestConfigHash:
    def test_stable_across_equal_configs(self, mini_config):
        assert config_hash(mini_config) == config_hash(
            mini_config.with_()
        )

    def test_sensitive_to_any_field(self, mini_config):
        base = config_hash(mini_config)
        assert config_hash(mini_config.with_(delta=4)) != base
        assert config_hash(mini_config.with_(seed=8)) != base
        assert config_hash(mini_config.with_(policy="LRU")) != base

    def test_accepts_plain_mappings(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})


class TestRunManifest:
    def test_fields_pin_down_the_run(self, mini_config, tmp_path):
        path = str(tmp_path / "run.json")
        result = run_experiment(mini_config, manifest=path)
        manifest = read_manifest(path)
        # The on-disk form equals the attached dict modulo JSON's
        # tuple->list coercion.
        assert manifest == json.loads(json.dumps(result.manifest))
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["config_hash"] == config_hash(mini_config)
        assert manifest["seed"] == mini_config.seed
        assert manifest["config"]["policy"] == "LIX"
        assert manifest["mean_response_time"] == result.mean_response_time
        assert manifest["measured_requests"] == result.measured_requests
        assert manifest["schedule_period"] == result.schedule_period
        assert manifest["response"]["count"] == result.measured_requests
        assert manifest["wall_seconds"] >= 0.0
        assert sum(manifest["access_locations"].values()) > 0.99

    def test_manifest_json_is_round_trippable(self, mini_config, tmp_path):
        path = tmp_path / "run.json"
        run_experiment(mini_config, manifest=str(path))
        # The file is valid, indented, sorted JSON ending in a newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == MANIFEST_SCHEMA

    def test_metrics_and_trace_sections_are_optional(self, mini_config):
        registry = MetricsRegistry()
        tracer = Tracer(MemorySink())
        result = run_experiment(
            mini_config, tracer=tracer, metrics=registry
        )
        manifest = build_manifest(result, metrics=registry, tracer=tracer)
        assert manifest["metrics"]["runs"] == 1
        assert manifest["trace"] == {
            "enabled": True,
            "records_emitted": tracer.emitted,
        }
        bare = build_manifest(result)
        assert "metrics" not in bare and "trace" not in bare

    def test_no_manifest_requested_leaves_result_bare(self, mini_config):
        assert run_experiment(mini_config).manifest is None


class TestSweepManifest:
    def _configs(self, mini_config):
        return [mini_config.with_(delta=d) for d in (0, 2)]

    def test_aggregates_per_run_manifests(self, mini_config, tmp_path):
        path = str(tmp_path / "sweep.json")
        results = sweep_results(self._configs(mini_config), manifest=path)
        sweep_doc = read_manifest(path)
        assert sweep_doc["schema"] == SWEEP_SCHEMA
        assert sweep_doc["summary"]["runs"] == 2
        assert sweep_doc["summary"]["total_measured_requests"] == sum(
            r.measured_requests for r in results
        )
        means = [run["mean_response_time"] for run in sweep_doc["runs"]]
        assert means == [r.mean_response_time for r in results]
        assert sweep_doc["summary"]["mean_response_time_min"] == min(means)
        assert sweep_doc["summary"]["mean_response_time_max"] == max(means)

    def test_empty_sweep_summary_is_well_formed(self):
        sweep_doc = build_sweep_manifest([])
        assert sweep_doc["summary"]["runs"] == 0
        assert sweep_doc["summary"]["mean_response_time_min"] == 0.0

    def test_progress_callback_fires_in_order(self, mini_config):
        seen = []
        sweep(
            self._configs(mini_config),
            progress=lambda done, total, result: seen.append(
                (done, total, result.config.delta)
            ),
        )
        assert seen == [(1, 2, 0), (2, 2, 2)]
