"""Tests for the command-line interface (repro.experiments.cli)."""

import pytest

from repro.experiments.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_disk_sizes_parsing(self):
        args = build_parser().parse_args(["run", "--disks", "10,20,30"])
        assert args.disks == (10, 20, 30)

    def test_bad_disk_sizes_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--disks", "10,x"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "CLOCK"])


class TestPoliciesCommand:
    def test_lists_all_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("P", "PIX", "LRU", "L", "LIX"):
            assert name in out


class TestInspectCommand:
    def test_reports_program_properties(self, capsys):
        code = main(["inspect", "--disks", "2,4,8", "--delta", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "period" in out
        assert "disk 1" in out and "disk 3" in out
        assert "inter-arrival" in out

    def test_flat_layout(self, capsys):
        assert main(["inspect", "--disks", "10", "--delta", "0"]) == 0
        out = capsys.readouterr().out
        assert "period        : 10" in out


class TestRunCommand:
    def test_runs_small_experiment(self, capsys):
        code = main([
            "run",
            "--disks", "50,200,250",
            "--delta", "3",
            "--cache", "50",
            "--policy", "LIX",
            "--noise", "0.3",
            "--offset", "50",
            "--requests", "400",
            "--access-range", "100",
            "--region-size", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "response=" in out
        assert "access locations" in out

    def test_configuration_error_becomes_exit_code(self, capsys):
        # access range larger than the database.
        code = main([
            "run", "--disks", "10", "--access-range", "1000",
            "--requests", "10",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestFiguresCommand:
    def test_unknown_artifact(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown artifacts" in capsys.readouterr().err

    def test_table1(self, capsys):
        assert main(["figures", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1.75" in out

    def test_scaled_figure_with_csv(self, capsys, tmp_path):
        code = main([
            "figures", "fig11",
            "--requests", "200",
            "--csv-dir", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "fig11.csv").exists()

    def test_registry_covers_every_paper_artifact(self):
        for required in (
            "table1", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig13", "fig14", "fig15",
        ):
            assert required in ARTIFACTS
