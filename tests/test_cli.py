"""Tests for the command-line interfaces (repro.experiments.cli and
the repro.lint 0/1/2 exit-code contract)."""

import json

import pytest

from repro.experiments.cli import ARTIFACTS, build_parser, main
from repro.lint import cli as lint_cli


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_disk_sizes_parsing(self):
        args = build_parser().parse_args(["run", "--disks", "10,20,30"])
        assert args.disks == (10, 20, 30)

    def test_bad_disk_sizes_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--disks", "10,x"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "CLOCK"])


class TestPoliciesCommand:
    def test_lists_all_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("P", "PIX", "LRU", "L", "LIX"):
            assert name in out


class TestInspectCommand:
    def test_reports_program_properties(self, capsys):
        code = main(["inspect", "--disks", "2,4,8", "--delta", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "period" in out
        assert "disk 1" in out and "disk 3" in out
        assert "inter-arrival" in out

    def test_flat_layout(self, capsys):
        assert main(["inspect", "--disks", "10", "--delta", "0"]) == 0
        out = capsys.readouterr().out
        assert "period        : 10" in out


class TestRunCommand:
    def test_runs_small_experiment(self, capsys):
        code = main([
            "run",
            "--disks", "50,200,250",
            "--delta", "3",
            "--cache", "50",
            "--policy", "LIX",
            "--noise", "0.3",
            "--offset", "50",
            "--requests", "400",
            "--access-range", "100",
            "--region-size", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "response=" in out
        assert "access locations" in out

    def test_configuration_error_becomes_exit_code(self, capsys):
        # access range larger than the database.
        code = main([
            "run", "--disks", "10", "--access-range", "1000",
            "--requests", "10",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestFiguresCommand:
    def test_unknown_artifact(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown artifacts" in capsys.readouterr().err

    def test_table1(self, capsys):
        assert main(["figures", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1.75" in out

    def test_scaled_figure_with_csv(self, capsys, tmp_path):
        code = main([
            "figures", "fig11",
            "--requests", "200",
            "--csv-dir", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "fig11.csv").exists()

    def test_registry_covers_every_paper_artifact(self):
        for required in (
            "table1", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig13", "fig14", "fig15",
        ):
            assert required in ARTIFACTS


class TestLintCLI:
    """`python -m repro.lint` exit contract: 0 clean / 1 findings / 2 usage."""

    @pytest.fixture
    def tree(self, tmp_path):
        """A scoped src/repro tree with one clean and one dirty module."""
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "clean.py").write_text(
            "def tidy(pages=None):\n    return pages or []\n"
        )
        dirty = package / "dirty.py"
        dirty.write_text("import random\n")
        return tmp_path

    def test_exit_zero_on_clean_tree(self, tree, capsys):
        clean = tree / "src" / "repro" / "clean.py"
        assert lint_cli.main(
            ["--no-cache", str(clean)]
        ) == lint_cli.EXIT_CLEAN

    def test_exit_one_on_findings(self, tree, capsys):
        assert lint_cli.main(
            ["--no-cache", str(tree / "src")]
        ) == lint_cli.EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RL002" in out
        # The canonical file:line:col CODE diagnostic shape.
        assert "dirty.py:1:1 RL002" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = lint_cli.main([str(tmp_path / "does-not-exist")])
        assert code == lint_cli.EXIT_USAGE
        assert "no such file" in capsys.readouterr().err

    def test_exit_two_on_bad_format(self, tree):
        with pytest.raises(SystemExit) as excinfo:
            lint_cli.main(["--format", "yaml", str(tree / "src")])
        assert excinfo.value.code == lint_cli.EXIT_USAGE

    def test_exit_two_on_missing_config(self, tree, capsys):
        code = lint_cli.main(
            ["--config", str(tree / "nope.toml"), str(tree / "src")]
        )
        assert code == lint_cli.EXIT_USAGE

    def test_json_format_is_machine_readable(self, tree, capsys):
        assert lint_cli.main(
            ["--no-cache", "--format", "json", str(tree / "src")]
        ) == lint_cli.EXIT_FINDINGS
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 1
        finding = document["diagnostics"][0]
        assert finding["code"] == "RL002"
        assert finding["path"].endswith("dirty.py")
        assert (finding["line"], finding["col"]) == (1, 1)

    def test_sarif_format_is_a_2_1_0_log(self, tree, capsys):
        assert lint_cli.main(
            ["--no-cache", "--format", "sarif", str(tree / "src")]
        ) == lint_cli.EXIT_FINDINGS
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        results = document["runs"][0]["results"]
        assert results[0]["ruleId"] == "RL002"
        assert results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"].endswith("dirty.py")

    def test_cache_dir_flag_and_stats(self, tree, tmp_path, capsys):
        cache = tmp_path / "lint-cache"
        args = ["--cache-dir", str(cache), "--stats", str(tree / "src")]
        assert lint_cli.main(args) == lint_cli.EXIT_FINDINGS
        cold = capsys.readouterr().err
        assert "cache-hits=0" in cold
        assert (cache / "cache.json").is_file()
        assert lint_cli.main(args) == lint_cli.EXIT_FINDINGS
        warm = capsys.readouterr().err
        assert "parsed=0" in warm
        assert "cross-module: cached" in warm

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_cli.main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "2  usage error" in out

    def test_list_rules_covers_catalogue(self, capsys):
        assert lint_cli.main(["--list-rules"]) == lint_cli.EXIT_CLEAN
        out = capsys.readouterr().out
        for code in (
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL010", "RL011", "RL012", "RL013",
            "RL014",
        ):
            assert code in out
