"""Tests for the drifting workload extension (repro.workload.drift)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.drift import DriftingZipfDistribution


def make(rotations=1.0, horizon=1000):
    return DriftingZipfDistribution(
        access_range=100,
        region_size=10,
        theta=0.95,
        horizon=horizon,
        rotations=rotations,
    )


class TestHotRegion:
    def test_no_drift_keeps_region_zero(self):
        distribution = make(rotations=0.0)
        assert distribution.hot_region_at(0) == 0
        assert distribution.hot_region_at(999) == 0

    def test_one_rotation_covers_all_regions(self):
        distribution = make(rotations=1.0, horizon=1000)
        regions = {distribution.hot_region_at(n) for n in range(1000)}
        assert regions == set(range(10))

    def test_rotation_wraps(self):
        distribution = make(rotations=2.0, horizon=1000)
        # After half the horizon, one full rotation is complete.
        assert distribution.hot_region_at(500) == 0

    def test_monotone_progression(self):
        distribution = make(rotations=1.0, horizon=1000)
        assert distribution.hot_region_at(0) == 0
        assert distribution.hot_region_at(100) == 1
        assert distribution.hot_region_at(950) == 9

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            make().hot_region_at(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make(horizon=0)
        with pytest.raises(ConfigurationError):
            make(rotations=-1.0)


class TestProbabilities:
    def test_snapshot_is_base_distribution(self):
        distribution = make()
        assert np.allclose(
            distribution.initial_snapshot(),
            distribution.probabilities_at(0),
        )

    def test_rotated_probabilities_are_a_shift(self):
        distribution = make(rotations=1.0, horizon=1000)
        early = distribution.probabilities_at(0)
        later = distribution.probabilities_at(100)  # hotspot at region 1
        assert np.allclose(later, np.roll(early, 10))

    def test_probabilities_always_sum_to_one(self):
        distribution = make(rotations=3.0)
        for index in (0, 123, 500, 999):
            assert distribution.probabilities_at(index).sum() == pytest.approx(1.0)


class TestTraceGeneration:
    def test_trace_length(self, rng):
        trace = make().generate_trace(500, rng)
        assert len(trace) == 500

    def test_no_drift_matches_base_sampling(self):
        distribution = make(rotations=0.0)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        drifted = distribution.generate_trace(400, rng_a)
        plain = distribution.base.sample(rng_b, 400)
        assert np.array_equal(drifted.pages, plain)

    def test_drift_moves_the_empirical_hotspot(self, rng):
        distribution = make(rotations=1.0, horizon=10_000)
        trace = distribution.generate_trace(10_000, rng)
        early = trace.pages[:1000]
        late = trace.pages[5000:6000]  # hotspot at region 5
        early_hot = np.mean((early >= 0) & (early < 10))
        late_hot = np.mean((late >= 50) & (late < 60))
        assert early_hot > 0.2
        assert late_hot > 0.2

    def test_pages_stay_in_access_range(self, rng):
        trace = make(rotations=4.0).generate_trace(2000, rng)
        assert trace.pages.max() < 100
        assert trace.pages.min() >= 0

    def test_zero_requests_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            make().generate_trace(0, rng)


class TestDriftInversion:
    def test_frozen_oracle_loses_to_adaptive_estimate(self):
        """§3's scenario, quantified: drift inverts PIX vs LIX."""
        from repro.experiments.figures import drift_study

        data = drift_study(
            num_requests=2_500, rotations_values=(0.0, 2.0),
            policies=("PIX", "LIX"),
        )
        pix = data.series["PIX"]
        lix = data.series["LIX"]
        assert pix[0] < lix[0]   # static world: the ideal wins
        assert lix[1] < pix[1]   # drifting world: adaptation wins
