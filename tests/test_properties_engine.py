"""Property-based tests (hypothesis) for the fast engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import PolicyContext
from repro.cache.registry import make_policy
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.experiments.engine import FastEngine
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace

POLICY_NAMES = ("LRU", "LIX", "PIX", "P", "2Q")


@st.composite
def engine_scenarios(draw):
    """A random small engine wiring plus a request trace."""
    num_disks = draw(st.integers(min_value=1, max_value=3))
    sizes = draw(
        st.lists(
            st.integers(min_value=2, max_value=10),
            min_size=num_disks,
            max_size=num_disks,
        )
    )
    delta = draw(st.integers(min_value=0, max_value=4))
    layout = DiskLayout.from_delta(sizes, delta)
    total = layout.total_pages

    offset = draw(st.integers(min_value=0, max_value=total))
    capacity = draw(st.integers(min_value=1, max_value=max(1, total // 2)))
    think = draw(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
    )
    policy_name = draw(st.sampled_from(POLICY_NAMES))
    requests = draw(
        st.lists(
            st.integers(min_value=0, max_value=total - 1),
            min_size=1,
            max_size=80,
        )
    )
    return layout, offset, capacity, think, policy_name, requests


def build_engine(layout, offset, capacity, think, policy_name):
    schedule = multidisk_program(layout)
    mapping = LogicalPhysicalMapping(layout, offset=offset)
    total = layout.total_pages
    context = PolicyContext(
        probability=lambda page: (total - page) / (total * total),
        frequency=lambda page: schedule.frequency(mapping.to_physical(page)),
        disk_of=lambda page: layout.disk_of_page(mapping.to_physical(page)),
        num_disks=layout.num_disks,
    )
    cache = make_policy(policy_name, capacity, context)
    return FastEngine(schedule, mapping, layout, cache, think), schedule, mapping


class TestEngineInvariants:
    @given(engine_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_responses_bounded_by_worst_gap(self, scenario):
        layout, offset, capacity, think, policy_name, requests = scenario
        engine, schedule, mapping = build_engine(
            layout, offset, capacity, think, policy_name
        )
        outcome = engine.run_trace(
            RequestTrace.from_pages(requests),
            warmup_requests=0,
            collect_responses=True,
        )
        worst = max(
            schedule.worst_case_delay(mapping.to_physical(page))
            for page in set(requests)
        )
        for sample in outcome.samples:
            assert 0.0 <= sample <= worst + 1.0

    @given(engine_scenarios())
    @settings(max_examples=100, deadline=None)
    def test_accounting_is_complete(self, scenario):
        layout, offset, capacity, think, policy_name, requests = scenario
        engine, _schedule, _mapping = build_engine(
            layout, offset, capacity, think, policy_name
        )
        outcome = engine.run_trace(
            RequestTrace.from_pages(requests), warmup_requests=0
        )
        counters = outcome.counters
        assert counters.hits + counters.misses == len(requests)
        assert outcome.measured_requests == len(requests)
        assert 0.0 <= counters.hit_rate <= 1.0
        assert sum(counters.per_disk_misses.values()) == counters.misses

    @given(engine_scenarios())
    @settings(max_examples=100, deadline=None)
    def test_clock_is_monotone_and_consistent(self, scenario):
        layout, offset, capacity, think, policy_name, requests = scenario
        engine, _schedule, _mapping = build_engine(
            layout, offset, capacity, think, policy_name
        )
        outcome = engine.run_trace(
            RequestTrace.from_pages(requests),
            warmup_requests=0,
            collect_responses=True,
        )
        # Final clock = total think time + total waiting time.
        expected = think * len(requests) + sum(outcome.samples)
        assert abs(engine.now - expected) < 1e-6

    @given(engine_scenarios())
    @settings(max_examples=80, deadline=None)
    def test_determinism(self, scenario):
        layout, offset, capacity, think, policy_name, requests = scenario
        trace = RequestTrace.from_pages(requests)
        first, _s, _m = build_engine(
            layout, offset, capacity, think, policy_name
        )
        second, _s2, _m2 = build_engine(
            layout, offset, capacity, think, policy_name
        )
        a = first.run_trace(trace, warmup_requests=0, collect_responses=True)
        b = second.run_trace(trace, warmup_requests=0, collect_responses=True)
        assert a.samples == b.samples

    @given(engine_scenarios(), st.integers(min_value=0, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_warmup_only_shrinks_measurement(self, scenario, warmup):
        layout, offset, capacity, think, policy_name, requests = scenario
        engine, _schedule, _mapping = build_engine(
            layout, offset, capacity, think, policy_name
        )
        outcome = engine.run_trace(
            RequestTrace.from_pages(requests), warmup_requests=warmup
        )
        expected_measured = max(0, len(requests) - min(warmup, len(requests)))
        assert outcome.measured_requests == expected_measured
        assert outcome.warmup_requests == min(warmup, len(requests))
