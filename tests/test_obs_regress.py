"""Benchmark regression gating (repro.obs.regress).

Synthetic bench documents drive the whole pipeline: entry extraction
(config hashing over non-volatile fields), history round-trips, the
noise-aware comparison bands, the record-only-when-green rule, and both
renderers.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.regress import (
    HISTORY_SCHEMA,
    REPORT_SCHEMA,
    append_history,
    compare,
    extract_entry,
    read_history,
    render_markdown,
    render_text,
    run_gate,
)


def bench_document(wall=10.0, speedup=4.0, requests=600, host="ci"):
    return {
        "benchmark": "engine",
        "schema": "repro.bench/1",
        "host": host,
        "parameters": {"num_requests": requests, "seed": 7},
        "wall_seconds": wall,
        "speedup": speedup,
        "trajectory": [
            {"delta": 0, "wall_seconds": wall / 2, "seed": 7},
        ],
    }


class TestExtractEntry:
    def test_entry_shape(self):
        entry = extract_entry(bench_document(), source="BENCH_engine.json")
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["bench"] == "engine"
        assert entry["source"] == "BENCH_engine.json"
        assert entry["seeds"] == [7]
        assert entry["metrics"]["wall_seconds"] == {
            "value": 10.0, "direction": "lower",
        }
        assert entry["metrics"]["speedup"] == {
            "value": 4.0, "direction": "higher",
        }
        # Per-point lists are headline-excluded: no trajectory metrics.
        assert not any("trajectory" in name for name in entry["metrics"])

    def test_config_hash_ignores_volatile_fields(self):
        slow = extract_entry(bench_document(wall=10.0, host="laptop"))
        fast = extract_entry(bench_document(wall=2.0, host="ci"))
        assert slow["config_hash"] == fast["config_hash"]

    def test_config_hash_tracks_parameters(self):
        small = extract_entry(bench_document(requests=600))
        large = extract_entry(bench_document(requests=6000))
        assert small["config_hash"] != large["config_hash"]

    def test_missing_benchmark_field_rejected(self):
        with pytest.raises(ConfigurationError, match="no 'benchmark'"):
            extract_entry({"wall_seconds": 1.0}, source="BENCH_bad.json")


class TestHistoryIo:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        entries = [extract_entry(bench_document(wall=w)) for w in (9.0, 11.0)]
        assert read_history(path) == []  # missing file is empty
        assert append_history(path, entries) == 2
        assert read_history(path) == entries

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"schema": "bogus/9"}) + "\n")
        with pytest.raises(ConfigurationError, match="unknown history"):
            read_history(str(path))


class TestCompare:
    def baseline(self, walls):
        return [extract_entry(bench_document(wall=w)) for w in walls]

    def metric_row(self, report, name="wall_seconds"):
        (bench,) = report["benches"]
        return next(r for r in bench["metrics"] if r["metric"] == name)

    def test_no_baseline_passes(self):
        report = compare([], self.baseline([10.0]))
        assert report["schema"] == REPORT_SCHEMA
        assert report["status"] == "ok"
        assert self.metric_row(report)["status"] == "no-baseline"

    def test_within_band_is_ok(self):
        history = self.baseline([10.0, 10.5, 9.5])
        report = compare(history, self.baseline([11.0]))
        assert report["status"] == "ok"
        assert self.metric_row(report)["status"] == "ok"

    def test_injected_regression_fails(self):
        history = self.baseline([10.0, 10.5, 9.5])
        report = compare(history, self.baseline([20.0]))
        assert report["status"] == "regression"
        assert self.metric_row(report)["status"] == "regression"
        assert report["totals"]["regression"] >= 1

    def test_improvement_in_the_good_direction(self):
        history = self.baseline([10.0, 10.5, 9.5])
        report = compare(history, self.baseline([2.0]))
        assert report["status"] == "ok"  # improvements never fail the gate
        assert self.metric_row(report)["status"] == "improved"

    def test_higher_is_better_for_speedup(self):
        history = [extract_entry(bench_document(speedup=4.0))]
        collapsed = [extract_entry(bench_document(speedup=1.0))]
        report = compare(history, collapsed)
        assert self.metric_row(report, "speedup")["status"] == "regression"

    def test_single_sample_baseline_uses_relative_floor(self):
        history = self.baseline([10.0])  # std == 0
        within = compare(history, self.baseline([12.0]))
        assert within["status"] == "ok"  # 20% < 25% floor
        beyond = compare(history, self.baseline([13.0]))
        assert beyond["status"] == "regression"  # 30% > 25% floor

    def test_sigma_widens_the_band(self):
        history = self.baseline([9.0, 10.0, 11.0])
        fresh = self.baseline([14.0])
        assert compare(history, fresh, sigma=3.0)["status"] == "regression"
        assert compare(history, fresh, sigma=10.0)["status"] == "ok"

    def test_different_parameters_have_no_baseline(self):
        history = [extract_entry(bench_document(requests=600))]
        report = compare(history, [extract_entry(
            bench_document(requests=6000)
        )])
        assert self.metric_row(report)["status"] == "no-baseline"


class TestRunGate:
    def write_bench(self, tmp_path, name="BENCH_engine.json", **kwargs):
        path = tmp_path / name
        path.write_text(json.dumps(bench_document(**kwargs)))
        return str(path)

    def test_record_then_compare(self, tmp_path):
        bench = self.write_bench(tmp_path)
        history = str(tmp_path / "history.jsonl")
        report, fresh = run_gate([bench], history_path=history, record=True)
        assert report["status"] == "ok"
        assert report["recorded"] == 1
        assert read_history(history) == fresh
        # The same numbers re-checked against their own record pass.
        report, _ = run_gate([bench], history_path=history)
        assert report["status"] == "ok"
        assert report["totals"]["ok"] >= 1

    def test_regressed_run_is_never_recorded(self, tmp_path):
        history = str(tmp_path / "history.jsonl")
        baseline = self.write_bench(tmp_path, wall=10.0)
        run_gate([baseline], history_path=history, record=True)
        regressed = self.write_bench(
            tmp_path, name="BENCH_engine2.json", wall=30.0
        )
        report, _ = run_gate([regressed], history_path=history, record=True)
        assert report["status"] == "regression"
        assert "recorded" not in report
        assert len(read_history(history)) == 1  # baseline only

    def test_renderers_cover_the_verdict(self, tmp_path):
        history = str(tmp_path / "history.jsonl")
        baseline = self.write_bench(tmp_path, wall=10.0)
        run_gate([baseline], history_path=history, record=True)
        regressed = self.write_bench(
            tmp_path, name="BENCH_engine2.json", wall=30.0
        )
        report, _ = run_gate([regressed], history_path=history)
        text = render_text(report)
        assert "REGRESSION" in text
        assert "baseline entries" in text
        markdown = render_markdown(report)
        assert "**REGRESSION**" in markdown
        assert "| engine |" in markdown
