"""Tests for the figure entry points and reporting (reduced scale)."""

import pytest

from repro.experiments import figures
from repro.experiments.figures import FigureData
from repro.experiments.reporting import (
    csv_string,
    format_table,
    summarize_crossovers,
    write_csv,
)

# Reduced-scale arguments shared by the figure smoke tests.
QUICK = dict(num_requests=300, seed=5)


class TestFigureData:
    def test_add_series_validates_length(self):
        data = FigureData("F", "t", "x", [1, 2, 3])
        with pytest.raises(ValueError):
            data.add_series("bad", [1.0])

    def test_row_iter(self):
        data = FigureData("F", "t", "x", [1, 2])
        data.add_series("a", [10.0, 20.0])
        rows = list(data.row_iter())
        assert rows == [(1, {"a": 10.0}), (2, {"a": 20.0})]


class TestTable1Figure:
    def test_exact_paper_values(self):
        data = figures.table1()
        flat = data.series["flat"]
        skewed = data.series["skewed"]
        multidisk = data.series["multidisk"]
        assert flat == pytest.approx([1.5] * 5)
        assert skewed == pytest.approx([1.75, 1.625, 1.4375, 1.325, 1.25])
        assert multidisk == pytest.approx([5 / 3, 1.5, 1.25, 1.10, 1.0])


class TestFigureSmoke:
    """Each figure function runs end-to-end at tiny scale and returns
    series with the right shape."""

    def test_figure5(self):
        data = figures.figure5(deltas=(0, 3), presets=("D1", "D5"), **QUICK)
        assert set(data.series) == {"D1<500,4500>", "D5<500,2000,2500>"}
        for series in data.series.values():
            assert len(series) == 2
            assert all(value > 0 for value in series)

    def test_figure6(self):
        data = figures.figure6(deltas=(0, 3), noises=(0.0, 0.75), **QUICK)
        assert set(data.series) == {"Noise 0%", "Noise 75%"}

    def test_figure7(self):
        data = figures.figure7(deltas=(3,), noises=(0.30,), **QUICK)
        assert list(data.series) == ["Noise 30%"]

    def test_figure8(self):
        data = figures.figure8(
            deltas=(3,), noises=(0.30,), cache_size=100, **QUICK
        )
        assert "Figure 8" == data.figure

    def test_figure9(self):
        data = figures.figure9(
            deltas=(3,), noises=(0.30,), cache_size=100, **QUICK
        )
        assert list(data.series) == ["Noise 30%"]

    def test_figure10(self):
        data = figures.figure10(
            noises=(0.0, 0.30), deltas=(3,), cache_size=100, **QUICK
        )
        assert set(data.series) == {"P Δ=3", "PIX Δ=3", "Flat Δ=0"}
        flat = data.series["Flat Δ=0"]
        assert flat[0] == flat[1]  # constant baseline

    def test_figure11(self):
        data = figures.figure11(cache_size=100, **QUICK)
        assert data.x_values == ["cache", "disk1", "disk2", "disk3"]
        for series in data.series.values():
            assert sum(series) == pytest.approx(1.0)

    def test_figure13(self):
        data = figures.figure13(
            deltas=(3,), cache_size=100, policies=("LRU", "LIX"), **QUICK
        )
        assert set(data.series) == {"LRU", "LIX"}

    def test_figure14(self):
        data = figures.figure14(
            cache_size=100, policies=("LRU", "LIX"), **QUICK
        )
        for series in data.series.values():
            assert sum(series) == pytest.approx(1.0)

    def test_figure15(self):
        data = figures.figure15(
            noises=(0.0, 0.30), cache_size=100, policies=("LIX",), **QUICK
        )
        assert len(data.series["LIX"]) == 2

    def test_bus_stop_paradox(self):
        data = figures.bus_stop_paradox(seed=5, random_trials=4)
        delays = dict(zip(data.x_values, data.series["expected delay"]))
        assert delays["multidisk"] <= delays["skewed"]
        assert delays["multidisk"] <= delays["random"]

    def test_policy_zoo(self):
        data = figures.policy_zoo(
            num_requests=300, cache_size=100, policies=("LRU", "LIX"), seed=5
        )
        assert len(data.series["response time"]) == 2
        assert len(data.series["hit rate"]) == 2


class TestReporting:
    @pytest.fixture
    def sample(self):
        data = FigureData("Figure X", "demo", "delta", [0, 1])
        data.add_series("flat", [250.0, 250.0])
        data.add_series("multi", [250.0, 180.0])
        data.notes = "a note"
        return data

    def test_format_table_contains_everything(self, sample):
        text = format_table(sample)
        assert "Figure X" in text
        assert "flat" in text and "multi" in text
        assert "250.00" in text and "180.00" in text
        assert "a note" in text

    def test_csv_string(self, sample):
        text = csv_string(sample)
        lines = text.strip().splitlines()
        assert lines[0] == "delta,flat,multi"
        assert lines[1] == "0,250.0,250.0"

    def test_write_csv(self, sample, tmp_path):
        path = tmp_path / "figure.csv"
        write_csv(sample, str(path))
        assert path.read_text().startswith("delta,flat,multi")

    def test_ascii_chart_layout(self, sample):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart(sample, height=6, width=20)
        lines = text.splitlines()
        assert lines[0].startswith("Figure X — ascii view")
        body = [line for line in lines if line.startswith("|")]
        assert len(body) == 6
        assert all(len(line) == 21 for line in body)
        assert "F=flat" in lines[-1] and "M=multi" in lines[-1]

    def test_ascii_chart_marker_collision_uses_digits(self):
        from repro.experiments.reporting import ascii_chart

        data = FigureData("F", "t", "x", [0, 1])
        data.add_series("alpha", [1.0, 2.0])
        data.add_series("aleph", [2.0, 1.0])
        text = ascii_chart(data)
        assert "A=alpha" in text
        assert "1=aleph" in text

    def test_ascii_chart_validation(self, sample):
        from repro.experiments.reporting import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart(sample, height=2)
        with pytest.raises(ValueError):
            ascii_chart(sample, width=4)

    def test_ascii_chart_non_numeric_series(self):
        from repro.experiments.reporting import ascii_chart

        data = FigureData("F", "t", "x", [0])
        data.add_series("labels", ["oops"])
        assert "no numeric series" in ascii_chart(data)

    def test_summarize_crossovers(self, sample):
        text = summarize_crossovers(sample, reference=200.0)
        assert "flat: crosses 200 at 0" in text
        assert "multi: crosses 200 at 0" in text
        below = summarize_crossovers(sample, reference=300.0)
        assert "stays below" in below
