"""Tests for broadcast-aware query processing (repro.query)."""

import numpy as np
import pytest

from repro.cache.base import PolicyContext
from repro.cache.lru import LRUPolicy
from repro.core.disks import DiskLayout
from repro.core.programs import _flat_program as flat_program, _multidisk_program as multidisk_program
from repro.errors import ConfigurationError
from repro.query.analysis import (
    opportunistic_expected_makespan_flat,
    opportunistic_speedup_flat,
    sequential_expected_makespan_flat,
)
from repro.query.engine import fetch_opportunistic, fetch_sequential
from repro.workload.mapping import LogicalPhysicalMapping


@pytest.fixture
def flat():
    layout = DiskLayout.flat(20)
    return flat_program(20), LogicalPhysicalMapping(layout)


class TestSequential:
    def test_single_page(self, flat):
        schedule, mapping = flat
        outcome = fetch_sequential(schedule, mapping, [4], start=0.0)
        assert outcome.makespan == 5.0  # slot 4 completes at 5
        assert outcome.pages_from_broadcast == 1

    def test_order_matters(self, flat):
        schedule, mapping = flat
        # Fetch 10 then 5: 5 has just passed, costs nearly a full cycle.
        forward = fetch_sequential(schedule, mapping, [5, 10], start=0.0)
        backward = fetch_sequential(schedule, mapping, [10, 5], start=0.0)
        assert forward.makespan == 11.0
        assert backward.makespan == 26.0

    def test_duplicates_deduped(self, flat):
        schedule, mapping = flat
        outcome = fetch_sequential(schedule, mapping, [3, 3, 3], start=0.0)
        assert outcome.pages == 1

    def test_empty_query_rejected(self, flat):
        schedule, mapping = flat
        with pytest.raises(ConfigurationError):
            fetch_sequential(schedule, mapping, [], start=0.0)

    def test_completions_in_request_order(self, flat):
        schedule, mapping = flat
        outcome = fetch_sequential(schedule, mapping, [7, 2, 12], start=0.0)
        assert [page for _t, page in outcome.completions] == [7, 2, 12]


class TestOpportunistic:
    def test_harvests_in_arrival_order(self, flat):
        schedule, mapping = flat
        outcome = fetch_opportunistic(
            schedule, mapping, [12, 2, 7], start=0.0
        )
        assert [page for _t, page in outcome.completions] == [2, 7, 12]
        assert outcome.makespan == 13.0

    def test_never_exceeds_one_cycle_on_flat(self, flat):
        schedule, mapping = flat
        rng = np.random.default_rng(4)
        for _trial in range(30):
            pages = rng.choice(20, size=6, replace=False)
            start = float(rng.uniform(0, 20))
            outcome = fetch_opportunistic(schedule, mapping, pages, start)
            assert outcome.makespan <= schedule.period + 1.0

    def test_beats_or_matches_sequential_everywhere(self, flat):
        schedule, mapping = flat
        rng = np.random.default_rng(4)
        for _trial in range(40):
            pages = rng.choice(20, size=5, replace=False).tolist()
            start = float(rng.uniform(0, 20))
            opp = fetch_opportunistic(schedule, mapping, pages, start)
            seq = fetch_sequential(schedule, mapping, pages, start)
            assert opp.makespan <= seq.makespan + 1e-9

    def test_matches_flat_closed_form(self, flat):
        schedule, mapping = flat
        rng = np.random.default_rng(4)
        k = 4
        makespans = []
        for _trial in range(3000):
            pages = rng.choice(20, size=k, replace=False)
            start = float(rng.uniform(0, 20))
            makespans.append(
                fetch_opportunistic(schedule, mapping, pages, start).makespan
            )
        expected = opportunistic_expected_makespan_flat(20, k)
        assert np.mean(makespans) == pytest.approx(expected, rel=0.05)

    def test_sequential_matches_flat_closed_form(self, flat):
        schedule, mapping = flat
        rng = np.random.default_rng(4)
        k = 4
        makespans = []
        for _trial in range(3000):
            pages = rng.choice(20, size=k, replace=False)
            start = float(rng.uniform(0, 20))
            makespans.append(
                fetch_sequential(schedule, mapping, pages, start).makespan
            )
        expected = sequential_expected_makespan_flat(20, k)
        assert np.mean(makespans) == pytest.approx(expected, rel=0.05)


class TestWithCache:
    def test_cached_pages_cost_nothing(self, flat):
        schedule, mapping = flat
        cache = LRUPolicy(4, PolicyContext())
        cache.admit(7, 0.0)
        outcome = fetch_opportunistic(
            schedule, mapping, [7, 2], start=0.0, cache=cache
        )
        assert outcome.cache_hits == 1
        assert outcome.pages_from_broadcast == 1
        assert outcome.makespan == 3.0  # only page 2 needed the channel

    def test_fetched_pages_enter_cache(self, flat):
        schedule, mapping = flat
        cache = LRUPolicy(4, PolicyContext())
        fetch_sequential(schedule, mapping, [5], start=0.0, cache=cache)
        assert 5 in cache

    def test_second_query_benefits(self, flat):
        schedule, mapping = flat
        cache = LRUPolicy(4, PolicyContext())
        first = fetch_opportunistic(
            schedule, mapping, [3, 9], start=0.0, cache=cache
        )
        second = fetch_opportunistic(
            schedule, mapping, [3, 9], start=first.makespan, cache=cache
        )
        assert second.makespan == 0.0
        assert second.cache_hits == 2


class TestOnMultidisk:
    def test_hot_sets_complete_faster_than_cold_sets(self):
        layout = DiskLayout.from_delta((5, 10, 25), delta=3)
        schedule = multidisk_program(layout)
        mapping = LogicalPhysicalMapping(layout)
        rng = np.random.default_rng(9)
        hot = []
        cold = []
        for _trial in range(300):
            start = float(rng.uniform(0, schedule.period))
            hot.append(
                fetch_opportunistic(
                    schedule, mapping, [0, 1, 2], start
                ).makespan
            )
            cold.append(
                fetch_opportunistic(
                    schedule, mapping, [37, 38, 39], start
                ).makespan
            )
        assert np.mean(hot) < np.mean(cold)


class TestAnalysis:
    def test_speedup_formula(self):
        assert opportunistic_speedup_flat(1) == 1.0
        assert opportunistic_speedup_flat(9) == 5.0
        expected_ratio = (
            sequential_expected_makespan_flat(100, 9)
            / opportunistic_expected_makespan_flat(100, 9)
        )
        assert expected_ratio == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            opportunistic_expected_makespan_flat(10, 0)
        with pytest.raises(ConfigurationError):
            sequential_expected_makespan_flat(10, 11)
        with pytest.raises(ConfigurationError):
            opportunistic_speedup_flat(0)
