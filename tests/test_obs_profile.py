"""Hot-path profiling (repro.obs.profile).

Covers the accumulator mechanics (phases, counters, peaks, tiers), the
lifecycle errors, the metrics bridge, and the two contracts the
observatory leans on: tier counts reconcile exactly with
``BroadcastSchedule.timing_stats`` on a real run, and a profiled run is
byte-identical to an unprofiled one.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment, sweep_results
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    PROFILE_SCHEMA,
    TIER_NAMES,
    Profiler,
    record_profile_metrics,
)


class TestPhases:
    def test_phase_times_accumulate(self):
        profile = Profiler()
        profile.start_phase("build")
        first = profile.stop_phase("build")
        profile.start_phase("build")
        second = profile.stop_phase("build")
        assert first >= 0.0 and second >= 0.0
        assert profile.phase_seconds["build"] == pytest.approx(
            first + second
        )

    def test_add_phase_folds_external_spans(self):
        profile = Profiler()
        profile.add_phase("run", 1.5)
        profile.add_phase("run", 0.5)
        assert profile.phase_seconds["run"] == pytest.approx(2.0)

    def test_reentrant_start_rejected(self):
        profile = Profiler()
        profile.start_phase("build")
        with pytest.raises(ConfigurationError, match="already running"):
            profile.start_phase("build")

    def test_stop_without_start_rejected(self):
        with pytest.raises(ConfigurationError, match="never started"):
            Profiler().stop_phase("run")

    def test_concurrent_distinct_phases_allowed(self):
        profile = Profiler()
        profile.start_phase("build")
        profile.start_phase("run")
        profile.stop_phase("run")
        profile.stop_phase("build")
        assert set(profile.phase_seconds) == {"build", "run"}


class TestCountersAndPeaks:
    def test_counters_accumulate(self):
        profile = Profiler()
        profile.count("plans")
        profile.count("plans", 3)
        assert profile.counters["plans"] == 4

    def test_peak_keeps_the_maximum(self):
        profile = Profiler()
        profile.peak("heap", 5)
        profile.peak("heap", 3)
        profile.peak("heap", 9)
        assert profile.peaks["heap"] == 9

    def test_tier_counts_fold_and_total(self):
        profile = Profiler()
        profile.add_tier_counts({"closed_form": 10, "bisect": 2})
        profile.add_tier_counts({"closed_form": 5, "wait_table": 1})
        assert profile.tiers == {
            "closed_form": 15, "wait_table": 1, "bisect": 2,
        }
        assert profile.tier_total == 18

    def test_snapshot_shape(self):
        profile = Profiler()
        profile.add_phase("run", 0.25)
        profile.count("plans", 2)
        profile.peak("heap", 4)
        profile.add_tier_counts({"wait_table": 7})
        snapshot = profile.snapshot()
        assert snapshot["schema"] == PROFILE_SCHEMA
        assert snapshot["phase_seconds"] == {"run": 0.25}
        assert snapshot["counters"] == {"plans": 2}
        assert snapshot["peaks"] == {"heap": 4}
        assert snapshot["tiers"]["wait_table"] == 7

    def test_report_mentions_every_block(self):
        profile = Profiler()
        profile.add_phase("run", 1.0)
        profile.count("plans", 2)
        profile.peak("heap", 4)
        profile.add_tier_counts({"closed_form": 3})
        report = profile.report()
        for needle in ("phases", "timing tiers", "engine counters",
                       "peaks", "closed_form"):
            assert needle in report
        assert "(nothing recorded)" in Profiler().report()


class TestMetricsBridge:
    def test_record_profile_metrics_lands_under_profile_prefix(self):
        profile = Profiler()
        profile.count("plans", 4)
        profile.add_tier_counts({"closed_form": 9, "bisect": 1})
        metrics = MetricsRegistry()
        record_profile_metrics(metrics, profile)
        counters = metrics.snapshot()
        assert counters["profile.plans"] == 4
        assert counters["profile.tier.closed_form"] == 9
        assert counters["profile.tier.bisect"] == 1
        assert counters["profile.tier.wait_table"] == 0


class TestRunIntegration:
    def test_tiers_reconcile_with_engine_misses(self, mini_config):
        profile = Profiler()
        result = run_experiment(mini_config, profile=profile)
        measured_misses = round(
            (1.0 - result.hit_rate) * result.measured_requests
        )
        # Every miss resolves through exactly one next_arrival tier; the
        # counter also covers warm-up misses, so it dominates the
        # measured-window estimate.
        assert profile.tier_total == profile.counters["engine.fast.misses"]
        assert profile.counters["engine.fast.misses"] >= measured_misses
        assert profile.counters["plans"] == 1
        assert profile.counters["requests.measured"] == (
            result.measured_requests
        )
        assert set(profile.tiers) == set(TIER_NAMES)
        assert {"build", "run"} <= set(profile.phase_seconds)

    def test_profiled_run_is_byte_identical(self, mini_config):
        bare = run_experiment(mini_config)
        profiled = run_experiment(mini_config, profile=Profiler())
        assert profiled.mean_response_time == bare.mean_response_time
        assert profiled.hit_rate == bare.hit_rate
        assert profiled.response_stats.stddev == bare.response_stats.stddev

    def test_disabled_profiler_records_nothing(self, mini_config):
        profile = Profiler(enabled=False)
        run_experiment(mini_config, profile=profile)
        assert profile.phase_seconds == {}
        assert profile.counters == {}
        assert profile.tier_total == 0

    def test_sweep_accumulates_across_plans(self, mini_config):
        configs = [mini_config.with_(delta=d) for d in (0, 1)]
        profile = Profiler()
        results = sweep_results(configs, profile=profile)
        assert profile.counters["plans"] == 2
        assert profile.counters["requests.measured"] == sum(
            r.measured_requests for r in results
        )
        assert profile.tier_total == profile.counters["engine.fast.misses"]
        # The sweep wraps its fold in the aggregate phase even when
        # nothing is folded, so the phase list is stable.
        assert {"build", "run", "aggregate"} <= set(profile.phase_seconds)

    def test_sweep_manifest_embeds_reconciled_tiers(
        self, mini_config, tmp_path
    ):
        import json

        manifest_path = tmp_path / "sweep.json"
        profile = Profiler()
        sweep_results(
            [mini_config], profile=profile, manifest=str(manifest_path)
        )
        manifest = json.loads(manifest_path.read_text())
        assert manifest["build_cache"]["queries"] == profile.snapshot()[
            "tiers"
        ]
        assert manifest["profile"]["counters"]["plans"] == 1
        assert "aggregate" in profile.phase_seconds
