"""Invariant monitors (repro.obs.monitor).

The load-bearing assertions:

* each monitor flags exactly the synthetic breach built for it and
  stays silent on an honest stream;
* strict mode raises :class:`~repro.errors.MonitorError` from
  ``end_run()`` (never from ``write()``), record mode only collects;
* violations round-trip through their manifest serialisation;
* a strictly-monitored experiment run is byte-identical to an
  unmonitored one and passes on both fast engines.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, MonitorError
from repro.experiments.runner import run_experiment
from repro.obs.manifest import build_manifest
from repro.obs.monitor import (
    CacheOccupancyMonitor,
    ClockMonotonicityMonitor,
    ConservationMonitor,
    FixedInterarrivalMonitor,
    MonitorContext,
    MonitorSuite,
    SchedulePeriodicityMonitor,
    Violation,
)
from repro.obs.trace import TraceRecord, Tracer


def record(kind, time, **fields):
    return TraceRecord(kind=kind, time=time, fields=fields)


def run_suite(records, context=None, factories=None, mode="record"):
    """Feed ``records`` through a one-run suite; return its violations."""
    suite = MonitorSuite(
        factories or (
            FixedInterarrivalMonitor,
            CacheOccupancyMonitor,
            ClockMonotonicityMonitor,
            ConservationMonitor,
            SchedulePeriodicityMonitor,
        ),
        mode=mode,
    )
    suite.begin_run(context or MonitorContext(label="unit"))
    for item in records:
        suite.write(item)
    return suite, suite.end_run()


class TestFixedInterarrival:
    def test_multiples_of_the_gap_pass(self, tiny_schedule):
        context = MonitorContext(schedule=tiny_schedule)
        page = 0
        gap = tiny_schedule.fixed_gap(page)[1]
        stream = [
            record("channel.deliver", float(t), page=page)
            for t in (gap, 2 * gap, 4 * gap, 7 * gap)  # skipped slots OK
        ]
        _, violations = run_suite(
            stream, context, factories=(FixedInterarrivalMonitor,)
        )
        assert violations == []

    def test_off_grid_gap_is_flagged(self, tiny_schedule):
        context = MonitorContext(schedule=tiny_schedule)
        page = 0
        gap = tiny_schedule.fixed_gap(page)[1]
        stream = [
            record("channel.deliver", float(gap), page=page),
            record("channel.deliver", float(gap) + gap / 2, page=page),
        ]
        _, violations = run_suite(
            stream, context, factories=(FixedInterarrivalMonitor,)
        )
        assert [v.invariant for v in violations] == ["fixed_gap_multiple"]

    def test_without_schedule_nothing_is_checked(self):
        stream = [
            record("channel.deliver", 1.0, page=0),
            record("channel.deliver", 1.7, page=0),
        ]
        _, violations = run_suite(
            stream, MonitorContext(), factories=(FixedInterarrivalMonitor,)
        )
        assert violations == []


class TestCacheOccupancy:
    def test_admissions_with_victims_stay_bounded(self):
        context = MonitorContext(cache_capacity=2)
        stream = [
            record("cache.admit", 1.0, page=1, victim=None),
            record("cache.admit", 2.0, page=2, victim=None),
            record("cache.admit", 3.0, page=3, victim=1),
            record("cache.evict", 3.0, page=1),
        ]
        _, violations = run_suite(
            stream, context, factories=(CacheOccupancyMonitor,)
        )
        assert violations == []

    def test_overflow_is_flagged(self):
        context = MonitorContext(cache_capacity=1)
        stream = [
            record("cache.admit", 1.0, page=1, victim=None),
            record("cache.admit", 2.0, page=2, victim=None),
        ]
        _, violations = run_suite(
            stream, context, factories=(CacheOccupancyMonitor,)
        )
        assert [v.invariant for v in violations] == ["occupancy_bound"]

    def test_rejection_is_not_an_admission(self):
        context = MonitorContext(cache_capacity=1)
        stream = [
            record("cache.admit", 1.0, page=1, victim=None),
            record("cache.admit", 2.0, page=2, victim=2),  # declined
        ]
        _, violations = run_suite(
            stream, context, factories=(CacheOccupancyMonitor,)
        )
        assert violations == []


class TestClockMonotonicity:
    def test_backwards_global_stream_is_flagged(self):
        stream = [
            record("sim.event", 2.0),
            record("sim.event", 1.0),
        ]
        _, violations = run_suite(
            stream, factories=(ClockMonotonicityMonitor,)
        )
        assert [v.invariant for v in violations] == ["monotonic_clock"]

    def test_clients_interleave_legitimately(self):
        stream = [
            record("client.request", 5.0, client="a"),
            record("client.request", 3.0, client="b"),
            record("client.request", 6.0, client="a"),
            record("client.request", 4.0, client="b"),
        ]
        _, violations = run_suite(
            stream, factories=(ClockMonotonicityMonitor,)
        )
        assert violations == []


class TestConservation:
    def test_balanced_counts_pass(self):
        stream = [
            record("client.request", 1.0),
            record("client.hit", 1.0, page=1),
            record("client.request", 2.0),
            record("client.miss", 2.0, page=2),
            record("client.wait", 3.0, page=2, wait=1.0),
        ]
        _, violations = run_suite(stream, factories=(ConservationMonitor,))
        assert violations == []

    def test_lost_request_is_flagged(self):
        stream = [
            record("client.request", 1.0),
            record("client.request", 2.0),
            record("client.hit", 2.0, page=1),
        ]
        _, violations = run_suite(stream, factories=(ConservationMonitor,))
        assert [v.invariant for v in violations] == ["request_conservation"]

    def test_final_wait_may_be_truncated(self):
        stream = [
            record("client.request", 1.0),
            record("client.miss", 1.0, page=1),
        ]
        _, violations = run_suite(stream, factories=(ConservationMonitor,))
        assert violations == []

    def test_double_wait_is_flagged(self):
        stream = [
            record("client.request", 1.0),
            record("client.miss", 1.0, page=1),
            record("client.wait", 2.0, page=1, wait=1.0),
            record("client.wait", 3.0, page=1, wait=1.0),
        ]
        _, violations = run_suite(stream, factories=(ConservationMonitor,))
        assert [v.invariant for v in violations] == ["wait_conservation"]


class TestSchedulePeriodicity:
    def test_correct_slot_contents_pass(self, tiny_schedule):
        context = MonitorContext(schedule=tiny_schedule)
        stream = [
            record("channel.deliver", float(slot + 1),
                   page=tiny_schedule.page_at(slot + 0.5))
            for slot in range(tiny_schedule.period)
        ]
        _, violations = run_suite(
            stream, context, factories=(SchedulePeriodicityMonitor,)
        )
        assert violations == []

    def test_wrong_page_in_slot_is_flagged(self, tiny_schedule):
        context = MonitorContext(schedule=tiny_schedule)
        honest = tiny_schedule.page_at(0.5)
        impostor = next(
            page for page in range(14) if page != honest
        )
        stream = [record("channel.deliver", 1.0, page=impostor)]
        _, violations = run_suite(
            stream, context, factories=(SchedulePeriodicityMonitor,)
        )
        assert [v.invariant for v in violations] == ["slot_consistency"]

    def test_fractional_completion_is_flagged(self, tiny_schedule):
        context = MonitorContext(schedule=tiny_schedule)
        stream = [record("channel.deliver", 1.25, page=0)]
        _, violations = run_suite(
            stream, context, factories=(SchedulePeriodicityMonitor,)
        )
        assert [v.invariant for v in violations] == ["integral_completion"]


class TestSuiteLifecycle:
    def test_strict_mode_raises_from_end_run(self):
        suite = MonitorSuite(
            (ClockMonotonicityMonitor,), mode="strict"
        )
        suite.begin_run(MonitorContext(label="broken"))
        suite.write(record("sim.event", 2.0))
        suite.write(record("sim.event", 1.0))  # write() never raises
        with pytest.raises(MonitorError, match="broken"):
            suite.end_run()
        assert not suite.ok
        assert suite.runs == 1

    def test_record_mode_only_collects(self):
        suite, violations = run_suite(
            [record("sim.event", 2.0), record("sim.event", 1.0)],
            factories=(ClockMonotonicityMonitor,),
        )
        assert len(violations) == 1
        assert violations[0].run == "unit"
        assert not suite.ok

    def test_runs_are_isolated_but_violations_accumulate(self):
        suite = MonitorSuite((ClockMonotonicityMonitor,))
        suite.begin_run(MonitorContext(label="first"))
        suite.write(record("sim.event", 2.0))
        suite.write(record("sim.event", 1.0))
        suite.end_run()
        # The second run starts fresh monitors: the old clock state is
        # gone, so an honest stream passes.
        suite.begin_run(MonitorContext(label="second"))
        suite.write(record("sim.event", 0.5))
        assert suite.end_run() == []
        assert [v.run for v in suite.violations] == ["first"]
        assert suite.runs == 2

    def test_nested_begin_run_rejected(self):
        suite = MonitorSuite()
        suite.begin_run(MonitorContext(label="outer"))
        with pytest.raises(ConfigurationError, match="still active"):
            suite.begin_run(MonitorContext(label="inner"))

    def test_end_without_begin_rejected(self):
        with pytest.raises(ConfigurationError, match="no monitor run"):
            MonitorSuite().end_run()

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="record.*strict"):
            MonitorSuite(mode="paranoid")

    def test_records_outside_a_run_are_ignored(self):
        suite = MonitorSuite()
        suite.write(record("sim.event", 1.0))
        assert suite.observed == 0


class TestSerialization:
    def test_violation_round_trips(self):
        violation = Violation(
            monitor="cache_occupancy", invariant="occupancy_bound",
            time=12.5, message="3 resident pages exceed capacity 2",
            run="mini Δ=3",
        )
        assert Violation.from_dict(violation.to_dict()) == violation

    def test_snapshot_embeds_violations_in_manifest(self, mini_config):
        suite = MonitorSuite((ClockMonotonicityMonitor,))
        suite.begin_run(MonitorContext(label="synthetic"))
        suite.write(record("sim.event", 2.0))
        suite.write(record("sim.event", 1.0))
        suite.end_run()
        result = run_experiment(mini_config.with_(num_requests=200))
        manifest = build_manifest(result, monitors=suite)
        block = manifest["monitors"]
        assert block["schema"] == "repro.obs.monitor/1"
        assert block["runs"] == 1
        restored = [
            Violation.from_dict(payload) for payload in block["violations"]
        ]
        assert restored == suite.violations


class TestRunnerIntegration:
    @pytest.mark.parametrize("engine", ["fast", "fast-reference", "process"])
    def test_strict_monitors_pass_and_preserve_results(
        self, mini_config, engine
    ):
        config = mini_config.with_(num_requests=300)
        bare = run_experiment(config, engine=engine)
        monitors = MonitorSuite(mode="strict")
        watched = run_experiment(config, engine=engine, monitors=monitors)
        assert monitors.ok
        assert monitors.runs == 1
        assert monitors.observed > 0
        assert watched.mean_response_time == bare.mean_response_time
        assert watched.hit_rate == bare.hit_rate

    def test_monitors_compose_with_caller_tracer(self, mini_config):
        from repro.obs.trace import MemorySink

        sink = MemorySink(capacity=100_000)
        monitors = MonitorSuite(mode="strict")
        tracer = Tracer(sink)
        run_experiment(
            mini_config.with_(num_requests=200), tracer=tracer,
            monitors=monitors,
        )
        assert monitors.ok
        # The suite observed the same stream the caller's sink received,
        # and detached afterwards: new emissions bypass the monitors.
        assert monitors.observed == len(sink)
        observed_before = monitors.observed
        tracer.emit("sim.event", 1.0)
        assert monitors.observed == observed_before

    def test_disabled_suite_never_runs(self, mini_config):
        monitors = MonitorSuite(enabled=False)
        run_experiment(mini_config.with_(num_requests=200),
                       monitors=monitors)
        assert monitors.runs == 0
        assert monitors.observed == 0
