"""Multi-channel broadcast programs: assignment, tuning, equivalence.

The contract under test, end to end:

* the channel assignment partitions the single-channel page set — no
  page on two channels, no page dropped — and C=1 reduces
  byte-identically to the legacy single-channel schedule;
* the conflict-aware refinement never does worse than the greedy
  bandwidth split under its own objective;
* the fast engine, the process (SimPy-style) engine, the reference
  engine and the batch entry point agree sample-for-sample (and
  retune-for-retune) on multi-channel runs;
* the observability layer carries the channel dimension: per-channel
  utilisation gauges, retune counters, monitor-clean strict runs, and
  journal round-trips.
"""

import collections

import pytest

import repro
from repro.core.channels import (
    ASSIGNMENT_STRATEGIES,
    ChannelAssignment,
    assign_channels,
    build_program,
    channel_schedule,
)
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program
from repro.core.schedule import BroadcastProgram
from repro.errors import ConfigurationError
from repro.exec.build import structural_key
from repro.exec.run import result_from_state, result_state
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import FastEngine
from repro.experiments.runner import run_experiment
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import MonitorSuite
from repro.population import PopulationSpec, SegmentSpec, run_population

LAYOUT = DiskLayout.from_delta((2, 4, 8), 3)


def config(**overrides):
    base = dict(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=400,
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestAssignment:
    def test_single_channel_is_identity(self):
        assignment = assign_channels(LAYOUT, 1)
        assert assignment.channels == (tuple(range(LAYOUT.total_pages)),)

    @pytest.mark.parametrize("num_channels", [2, 3, 4])
    @pytest.mark.parametrize("strategy", ASSIGNMENT_STRATEGIES)
    def test_partition_property(self, num_channels, strategy):
        assignment = assign_channels(
            LAYOUT, num_channels, assignment=strategy
        )
        pages = [p for channel in assignment.channels for p in channel]
        assert sorted(pages) == list(range(LAYOUT.total_pages))
        assert all(assignment.channels)  # no empty channel

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            assign_channels(LAYOUT, 0)
        with pytest.raises(ConfigurationError):
            assign_channels(LAYOUT, LAYOUT.total_pages + 1)
        with pytest.raises(ConfigurationError):
            assign_channels(LAYOUT, 2, assignment="mystery")
        with pytest.raises(ConfigurationError):
            assign_channels(LAYOUT, 2, retune_cost=-1.0)

    def test_refinement_deterministic(self):
        first = assign_channels(LAYOUT, 3)
        second = assign_channels(LAYOUT, 3)
        assert first.channels == second.channels

    def test_assignment_channel_map(self):
        assignment = assign_channels(LAYOUT, 2)
        mapping = assignment.channel_map()
        assert sorted(mapping) == list(range(LAYOUT.total_pages))
        for index, channel in enumerate(assignment.channels):
            for page in channel:
                assert mapping[page] == index


class TestProgramConstruction:
    def test_c1_byte_identical_to_legacy(self):
        program = build_program(LAYOUT, 1)
        legacy = _multidisk_program(LAYOUT)
        assert program.channels[0].slots == legacy.slots

    @pytest.mark.parametrize("num_channels", [2, 3, 4])
    def test_broadcast_partition_per_cycle(self, num_channels):
        # Union of channel rows == single-channel page multiset: every
        # page keeps its per-cycle broadcast count (its Δ-rule relative
        # frequency) on the row that carries it.
        program = build_program(LAYOUT, num_channels)
        legacy = _multidisk_program(LAYOUT)
        for page in range(LAYOUT.total_pages):
            row = program.schedule_of(page)
            assert row.broadcasts_per_period(page) == \
                legacy.broadcasts_per_period(page)

    def test_every_page_has_fixed_gap(self):
        program = build_program(LAYOUT, 3)
        for page in range(LAYOUT.total_pages):
            assert program.fixed_gap(page) is not None

    def test_program_properties(self):
        program = build_program(LAYOUT, 2, label="demo")
        assert program.num_channels == 2
        assert len(program) == program.period
        assert program.num_pages == LAYOUT.total_pages
        assert program.period == max(row.period for row in program.channels)
        assert program.total_slots == sum(
            row.period for row in program.channels
        )
        utilisation = program.channel_utilisation()
        assert len(utilisation) == 2
        assert all(0.0 < value <= 1.0 for value in utilisation)
        assert 5 in program
        assert program.channel_of(5) in (0, 1)

    def test_rejects_overlapping_channels(self):
        from repro.errors import ScheduleError

        rows = (
            channel_schedule(LAYOUT, (0, 1, 2, 3)),
            channel_schedule(LAYOUT, (3, 4, 5)),
        )
        with pytest.raises(ScheduleError, match="partition"):
            BroadcastProgram(rows)

    def test_channel_schedule_translates_pages(self):
        pages = (1, 5, 9, 13)
        row = channel_schedule(LAYOUT, pages)
        broadcast = {slot for slot in row.slots if slot >= 0}
        assert broadcast == set(pages)

    def test_next_arrival_delegates_to_owning_row(self):
        program = build_program(LAYOUT, 2)
        for page in (0, 7, 13):
            row = program.schedule_of(page)
            assert program.next_arrival(page, 2.5) == \
                row.next_arrival(page, 2.5)
            assert program.next_arrival_bisect(page, 2.5) == \
                row.next_arrival_bisect(page, 2.5)


class TestEngineEquivalence:
    @pytest.mark.parametrize("channels", [2, 4])
    def test_fast_process_reference_batch_agree(self, channels):
        cfg = config(channels=channels)
        results = {
            engine: run_experiment(
                cfg, engine=engine, collect_responses=True
            )
            for engine in ("fast", "process", "fast-reference", "batch")
        }
        baseline = results["fast"]
        assert baseline.retunes > 0
        for engine, result in results.items():
            assert result.samples == baseline.samples, engine
            assert result.retunes == baseline.retunes, engine
            assert result.mean_response_time == \
                baseline.mean_response_time, engine

    def test_c1_run_matches_legacy_exactly(self):
        implicit = run_experiment(config(), engine="fast",
                                  collect_responses=True)
        explicit = run_experiment(config(channels=1), engine="fast",
                                  collect_responses=True)
        assert implicit.samples == explicit.samples
        assert implicit.retunes == 0
        assert implicit.channel_utilisation is None

    def test_more_channels_strictly_faster(self):
        means = {
            channels: run_experiment(
                config(channels=channels), engine="fast"
            ).mean_response_time
            for channels in (1, 2, 4)
        }
        assert means[2] < means[1]
        assert means[4] < means[1]

    def test_fast_engine_rejects_negative_retune_cost(self):
        from repro.workload.mapping import LogicalPhysicalMapping

        program = build_program(LAYOUT, 2)
        mapping = LogicalPhysicalMapping(LAYOUT)
        # Validation fires before the cache is touched, so a placeholder
        # policy object is enough to exercise the contract.
        with pytest.raises(ConfigurationError):
            FastEngine(program, mapping, LAYOUT, None, 0.0,
                       retune_cost=-0.5)


class TestObservability:
    def test_strict_monitors_pass_fast_and_process(self):
        for engine in ("fast", "process"):
            monitors = MonitorSuite(mode="strict")
            result = run_experiment(
                config(channels=4, num_requests=300),
                engine=engine, monitors=monitors,
            )
            assert monitors.ok
            assert result.retunes > 0

    def test_per_channel_metrics_recorded(self):
        metrics = MetricsRegistry()
        result = run_experiment(
            config(channels=2), engine="fast", metrics=metrics
        )
        snapshot = metrics.snapshot()
        assert snapshot["client.retunes"] == result.retunes
        for index, value in enumerate(result.channel_utilisation):
            assert snapshot[f"schedule.utilisation.channel.{index}"] == value

    def test_result_state_round_trip(self):
        cfg = config(channels=2)
        result = run_experiment(cfg, engine="fast", collect_responses=True)
        restored = result_from_state(cfg, result_state(result))
        assert restored.retunes == result.retunes
        assert restored.channel_utilisation == result.channel_utilisation
        assert restored.samples == result.samples

    def test_old_journal_state_still_loads(self):
        cfg = config()
        result = run_experiment(cfg, engine="fast")
        state = result_state(result)
        # A 1.1-era journal predates the channel fields entirely.
        state.pop("retunes")
        state.pop("channel_utilisation")
        restored = result_from_state(cfg, state)
        assert restored.retunes == 0
        assert restored.channel_utilisation is None

    def test_structural_key_unchanged_for_single_channel(self):
        assert structural_key(config()) == \
            structural_key(config(channels=1))
        assert structural_key(config()) != \
            structural_key(config(channels=2))

    def test_manifest_carries_channel_block(self):
        from repro.obs.manifest import build_manifest

        single = build_manifest(run_experiment(config(), engine="fast"))
        assert "retunes" not in single
        assert "channel_utilisation" not in single
        multi = build_manifest(
            run_experiment(config(channels=2), engine="fast")
        )
        assert multi["retunes"] > 0
        assert len(multi["channel_utilisation"]) == 2


class TestPopulationIntegration:
    def test_population_runs_with_channels(self):
        spec = PopulationSpec(
            name="multichannel-fleet",
            base=config(channels=2, num_requests=200),
            segments=(
                SegmentSpec(name="small", clients=2, cache_size=25),
                SegmentSpec(name="large", clients=2, cache_size=60),
            ),
            seed=3,
        )
        population = run_population(spec, keep_results=True)
        assert len(population.results) == 4
        assert all(r.retunes > 0 for r in population.results)


class TestConfigValidation:
    def test_channels_bounds(self):
        with pytest.raises(ConfigurationError):
            config(channels=0)
        with pytest.raises(ConfigurationError):
            config(channels=501)
        with pytest.raises(ConfigurationError):
            config(retune_cost=-1.0)

    def test_build_schedule_types(self):
        single = config()
        assert isinstance(single.build_schedule(single.build_layout()),
                          repro.BroadcastSchedule)
        multi = config(channels=2)
        program = multi.build_schedule(multi.build_layout())
        assert isinstance(program, BroadcastProgram)
