"""Unit tests for the Offset/Noise logical→physical mapping (§4.2)."""

import numpy as np
import pytest

from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.errors import ConfigurationError
from repro.workload.mapping import LogicalPhysicalMapping


@pytest.fixture
def layout():
    return DiskLayout((2, 4, 8), (4, 2, 1))


class TestIdentity:
    def test_identity_without_offset_or_noise(self, layout):
        mapping = LogicalPhysicalMapping(layout)
        for page in range(layout.total_pages):
            assert mapping.to_physical(page) == page
            assert mapping.to_logical(page) == page

    def test_hottest_pages_on_fastest_disk(self, layout):
        mapping = LogicalPhysicalMapping(layout)
        assert mapping.disk_of_logical(0) == 0
        assert mapping.disk_of_logical(1) == 0
        assert mapping.disk_of_logical(2) == 1


class TestOffset:
    def test_offset_is_circular_shift(self, layout):
        mapping = LogicalPhysicalMapping(layout, offset=3)
        total = layout.total_pages
        for page in range(total):
            assert mapping.to_physical(page) == (page - 3) % total

    def test_offset_pushes_hottest_to_slowest_disk_tail(self, layout):
        # Figure 4: the K hottest logical pages end up at the end of the
        # slowest disk.
        mapping = LogicalPhysicalMapping(layout, offset=2)
        total = layout.total_pages
        assert mapping.to_physical(0) == total - 2
        assert mapping.to_physical(1) == total - 1
        assert mapping.disk_of_logical(0) == layout.num_disks - 1

    def test_offset_brings_colder_pages_forward(self, layout):
        mapping = LogicalPhysicalMapping(layout, offset=2)
        # Logical pages 2,3 now occupy the fastest disk.
        assert mapping.disk_of_logical(2) == 0
        assert mapping.disk_of_logical(3) == 0

    def test_mapping_is_a_bijection(self, layout):
        mapping = LogicalPhysicalMapping(layout, offset=5)
        physicals = {mapping.to_physical(p) for p in range(layout.total_pages)}
        assert physicals == set(range(layout.total_pages))

    def test_inverse_consistency(self, layout):
        mapping = LogicalPhysicalMapping(layout, offset=5)
        for page in range(layout.total_pages):
            assert mapping.to_logical(mapping.to_physical(page)) == page

    def test_offset_bounds(self, layout):
        with pytest.raises(ConfigurationError):
            LogicalPhysicalMapping(layout, offset=-1)
        with pytest.raises(ConfigurationError):
            LogicalPhysicalMapping(layout, offset=layout.total_pages + 1)

    def test_full_offset_wraps_to_identity(self, layout):
        mapping = LogicalPhysicalMapping(layout, offset=layout.total_pages)
        assert mapping.to_physical(0) == 0


class TestNoise:
    def test_noise_requires_rng(self, layout):
        with pytest.raises(ConfigurationError):
            LogicalPhysicalMapping(layout, noise=0.5)

    def test_noise_bounds(self, layout, rng):
        with pytest.raises(ConfigurationError):
            LogicalPhysicalMapping(layout, noise=1.5, rng=rng)

    def test_zero_noise_leaves_identity(self, layout, rng):
        mapping = LogicalPhysicalMapping(layout, noise=0.0, rng=rng)
        assert all(
            mapping.to_physical(p) == p for p in range(layout.total_pages)
        )

    def test_noisy_mapping_is_still_a_bijection(self, layout, rng):
        mapping = LogicalPhysicalMapping(layout, noise=0.7, rng=rng)
        physicals = {mapping.to_physical(p) for p in range(layout.total_pages)}
        assert physicals == set(range(layout.total_pages))

    def test_inverse_consistency_with_noise(self, layout, rng):
        mapping = LogicalPhysicalMapping(layout, noise=0.7, rng=rng)
        for page in range(layout.total_pages):
            assert mapping.to_logical(mapping.to_physical(page)) == page

    def test_displaced_fraction_bounded_by_noise(self):
        # Noise is an upper bound on disagreement (paper footnote 3);
        # statistically the displaced fraction stays below ~2x noise
        # even counting pages dragged along by swaps.
        layout = DiskLayout((100, 200, 300), (4, 2, 1))
        rng = np.random.default_rng(3)
        mapping = LogicalPhysicalMapping(layout, noise=0.15, rng=rng)
        displaced = mapping.displaced_fraction()
        assert 0.0 < displaced < 0.35

    def test_noise_one_scrambles_most_pages(self):
        layout = DiskLayout((100, 200, 300), (4, 2, 1))
        rng = np.random.default_rng(3)
        mapping = LogicalPhysicalMapping(layout, noise=1.0, rng=rng)
        assert mapping.displaced_fraction() > 0.4

    def test_determinism_under_same_rng_seed(self):
        layout = DiskLayout((10, 20), (2, 1))
        a = LogicalPhysicalMapping(layout, noise=0.5, rng=np.random.default_rng(9))
        b = LogicalPhysicalMapping(layout, noise=0.5, rng=np.random.default_rng(9))
        assert np.array_equal(a.physical_array(), b.physical_array())

    def test_physical_array_read_only(self, layout, rng):
        mapping = LogicalPhysicalMapping(layout, noise=0.3, rng=rng)
        with pytest.raises(ValueError):
            mapping.physical_array()[0] = 99

    def test_noise_scope_limits_the_coin(self):
        # With the coin scoped to the first 4 logical pages, any page
        # outside that range may move only by being chosen as a victim —
        # at most one victim per coin-selected page.
        layout = DiskLayout((100, 200, 300), (4, 2, 1))
        rng = np.random.default_rng(3)
        mapping = LogicalPhysicalMapping(
            layout, noise=1.0, rng=rng, noise_scope=4
        )
        moved = sum(
            1
            for page in range(layout.total_pages)
            if mapping.to_physical(page) != page
        )
        assert moved <= 2 * 4

    def test_noise_scope_validation(self, layout, rng):
        with pytest.raises(ConfigurationError):
            LogicalPhysicalMapping(
                layout, noise=0.5, rng=rng, noise_scope=0
            )
        with pytest.raises(ConfigurationError):
            LogicalPhysicalMapping(
                layout, noise=0.5, rng=rng,
                noise_scope=layout.total_pages + 1,
            )

    def test_default_scope_is_whole_database(self, layout, rng):
        mapping = LogicalPhysicalMapping(layout, noise=0.5, rng=rng)
        assert mapping.noise_scope == layout.total_pages


class TestFrequencyMap:
    def test_frequencies_follow_disks(self, layout):
        mapping = LogicalPhysicalMapping(layout)
        schedule = multidisk_program(layout)
        frequencies = mapping.frequency_map(schedule, access_range=6)
        # Pages 0,1 on disk 0 (rel freq 4); 2..5 on disk 1 (rel freq 2).
        assert frequencies[0] == pytest.approx(4 / schedule.period)
        assert frequencies[2] == pytest.approx(2 / schedule.period)

    def test_offset_changes_frequencies(self, layout):
        mapping = LogicalPhysicalMapping(layout, offset=2)
        schedule = multidisk_program(layout)
        frequencies = mapping.frequency_map(schedule, access_range=2)
        # The two hottest logical pages now ride the slowest disk.
        assert frequencies[0] == pytest.approx(1 / schedule.period)
