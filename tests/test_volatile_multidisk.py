"""Volatile-data engine on multidisk broadcasts with cost-based caches.

The basic volatile tests use a flat carousel and LRU; these exercise the
engine on the paper's actual configuration shape — multidisk program,
Offset, LIX/PIX caches — and check the interactions the volatility bench
relies on.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.updates.engine import VolatileEngine
from repro.updates.process import PeriodicUpdateModel, PoissonUpdateModel
from repro.workload.trace import generate_trace


def build(policy="LIX", update_interval=1e9, report_interval=None, seed=7):
    config = ExperimentConfig(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy=policy,
        offset=50,
        access_range=100,
        region_size=10,
        num_requests=1_200,
        seed=seed,
    )
    layout = config.build_layout()
    schedule = config.build_schedule(layout)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    cache = config.build_policy(schedule, mapping, distribution, layout)
    updates = PeriodicUpdateModel.uniform(
        update_interval, layout.total_pages, rng=streams.stream("updates")
    )
    engine = VolatileEngine(
        schedule=schedule,
        mapping=mapping,
        layout=layout,
        cache=cache,
        updates=updates,
        think_time=config.think_time,
        report_interval=report_interval,
    )
    trace = generate_trace(
        distribution, 2_400, streams.stream("requests")
    )
    return engine, trace


class TestVolatileOnMultidisk:
    @pytest.mark.parametrize("policy", ["LRU", "LIX", "PIX", "P"])
    def test_static_matches_plain_engine(self, policy):
        # With no updates the volatile engine must agree with the plain
        # fast engine request-for-request (same wiring, same trace).
        from repro.experiments.engine import FastEngine

        engine, trace = build(policy=policy)
        outcome = engine.run_trace(trace, warmup_requests=1_200)

        config = ExperimentConfig(
            disk_sizes=(50, 200, 250),
            delta=3,
            cache_size=50,
            policy=policy,
            offset=50,
            access_range=100,
            region_size=10,
            num_requests=1_200,
            seed=7,
        )
        layout = config.build_layout()
        schedule = config.build_schedule(layout)
        streams = config.build_streams()
        mapping = config.build_mapping(layout, streams)
        distribution = config.build_distribution()
        cache = config.build_policy(schedule, mapping, distribution, layout)
        plain = FastEngine(
            schedule, mapping, layout, cache, config.think_time
        )
        trace2 = generate_trace(distribution, 2_400, streams.stream("requests"))
        reference = plain.run_trace(trace2, warmup_requests=1_200)
        assert outcome.mean_response_time == pytest.approx(
            reference.response.mean
        )
        assert outcome.counters.hit_rate == reference.counters.hit_rate

    def test_staleness_grows_with_volatility(self):
        fractions = []
        for interval in (2e6, 2e5, 2e4):
            engine, trace = build(update_interval=interval)
            outcome = engine.run_trace(trace, warmup_requests=600)
            fractions.append(outcome.stale_fraction)
        assert fractions[0] <= fractions[1] <= fractions[2] + 0.02
        assert fractions[-1] > fractions[0]

    def test_reports_cut_staleness_on_multidisk(self):
        engine, trace = build(update_interval=5e4)
        baseline = engine.run_trace(trace, warmup_requests=600)
        engine2, trace2 = build(update_interval=5e4, report_interval=500.0)
        reported = engine2.run_trace(trace2, warmup_requests=600)
        assert reported.stale_fraction < baseline.stale_fraction
        assert reported.invalidations_applied > 0

    def test_reports_cost_latency(self):
        engine, trace = build(update_interval=5e4)
        baseline = engine.run_trace(trace, warmup_requests=600)
        engine2, trace2 = build(update_interval=5e4, report_interval=500.0)
        reported = engine2.run_trace(trace2, warmup_requests=600)
        assert reported.mean_response_time >= baseline.mean_response_time

    def test_poisson_model_agrees_qualitatively(self):
        # Same staleness trend under the stochastic update model.
        config = ExperimentConfig(
            disk_sizes=(50, 200, 250),
            delta=3,
            cache_size=50,
            policy="LIX",
            offset=50,
            access_range=100,
            region_size=10,
            num_requests=1_200,
            seed=7,
        )
        layout = config.build_layout()
        schedule = config.build_schedule(layout)
        streams = config.build_streams()
        mapping = config.build_mapping(layout, streams)
        distribution = config.build_distribution()
        fractions = []
        for rate in (1e-7, 1e-5):
            cache = config.build_policy(schedule, mapping, distribution, layout)
            updates = PoissonUpdateModel(
                lambda page: rate,
                layout.total_pages,
                rng=np.random.default_rng(5),
                horizon=1e8,
            )
            engine = VolatileEngine(
                schedule=schedule,
                mapping=mapping,
                layout=layout,
                cache=cache,
                updates=updates,
                think_time=config.think_time,
            )
            trace = generate_trace(
                distribution, 2_400, streams.stream(f"requests-{rate}")
            )
            outcome = engine.run_trace(trace, warmup_requests=600)
            fractions.append(outcome.stale_fraction)
        assert fractions[1] > fractions[0]
