"""Unit tests for the discrete-event kernel (repro.sim.kernel)."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator, Timeout


class TestSimulatorClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start=10.5).now == 10.5

    def test_run_with_empty_queue_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_peek_empty_queue_is_infinite(self):
        assert Simulator().peek() == float("inf")

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()


class TestTimeout:
    def test_timeout_fires_at_due_time(self):
        sim = Simulator()
        fired = []
        sim.timeout(5.0).add_callback(lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_timeout_value_is_delivered(self):
        sim = Simulator()
        seen = []
        sim.timeout(1.0, value="payload").add_callback(
            lambda ev: seen.append(ev.value)
        )
        sim.run()
        assert seen == ["payload"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Timeout(sim, -1.0)

    def test_timeouts_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay, value=delay).add_callback(
                lambda ev: order.append(ev.value)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_simultaneous_timeouts_fire_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            sim.timeout(1.0, value=tag).add_callback(
                lambda ev: order.append(ev.value)
            )
        sim.run()
        assert order == ["a", "b", "c"]


class TestEvent:
    def test_initially_pending(self):
        event = Simulator().event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_triggers(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        sim.run()
        assert event.processed
        assert event.ok
        assert event.value == 42

    def test_double_trigger_raises(self):
        event = Simulator().event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception_instance(self):
        event = Simulator().event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callback_after_processing_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("done")
        sim.run()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        assert seen == ["done"]

    def test_delayed_succeed(self):
        sim = Simulator()
        event = sim.event()
        fired_at = []
        event.add_callback(lambda ev: fired_at.append(sim.now))
        event.succeed(delay=7.0)
        sim.run()
        assert fired_at == [7.0]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.timeout(10.0).add_callback(lambda ev: fired.append(10))
        sim.timeout(20.0).add_callback(lambda ev: fired.append(20))
        sim.run(until=15.0)
        assert fired == [10]
        assert sim.now == 15.0

    def test_run_until_is_inclusive_of_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.timeout(15.0).add_callback(lambda ev: fired.append(15))
        sim.run(until=15.0)
        assert fired == [15]

    def test_max_events_limits_processing(self):
        sim = Simulator()
        fired = []
        for delay in (1.0, 2.0, 3.0):
            sim.timeout(delay).add_callback(lambda ev: fired.append(sim.now))
        sim.run(max_events=2)
        assert fired == [1.0, 2.0]

    def test_run_until_event_returns_value(self):
        sim = Simulator()
        event = sim.event()
        sim.timeout(3.0).add_callback(lambda ev: event.succeed("ready"))
        assert sim.run_until_event(event) == "ready"
        assert sim.now == 3.0

    def test_run_until_event_detects_drained_queue(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError):
            sim.run_until_event(never)

    def test_run_until_event_respects_limit(self):
        sim = Simulator()
        event = sim.event()
        sim.timeout(100.0).add_callback(lambda ev: event.succeed())
        with pytest.raises(SimulationError):
            sim.run_until_event(event, limit=10.0)

    def test_schedule_callback(self):
        sim = Simulator()
        calls = []
        sim.schedule(4.0, lambda: calls.append(sim.now))
        sim.run()
        assert calls == [4.0]

    def test_drain_discards_pending_events(self):
        sim = Simulator()
        fired = []
        sim.timeout(1.0).add_callback(lambda ev: fired.append(1))
        sim.drain()
        sim.run()
        assert fired == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for delay in (1.0, 2.0):
            sim.timeout(delay)
        sim.run()
        assert sim.events_processed == 2

    def test_clock_never_runs_backwards(self):
        sim = Simulator()
        times = []
        for delay in (5.0, 1.0, 3.0, 1.0):
            sim.timeout(delay).add_callback(lambda ev: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
