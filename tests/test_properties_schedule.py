"""Property-based tests (hypothesis) for broadcast program invariants.

These check the §2.2 algorithm's guarantees over *arbitrary* disk
layouts, not just the paper's presets:

* the program is periodic and every page appears;
* every page's inter-arrival time is fixed (the anti-Bus-Stop property);
* broadcast counts are exactly proportional to the relative frequencies;
* expected delay equals half the inter-arrival gap, and the analytic
  layout-level delay matches the schedule-level computation;
* next_arrival is consistent: strictly in the future, lands on a real
  completion of the right page, and no earlier completion exists.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import multidisk_expected_delay
from repro.core.chunks import EMPTY_SLOT, ChunkPlan
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.core.schedule import BroadcastSchedule


@st.composite
def raw_slot_lists(draw):
    """Arbitrary slot lists — irregular spacing, padding, everything."""
    slots = draw(
        st.lists(
            st.one_of(
                st.just(EMPTY_SLOT),
                st.integers(min_value=0, max_value=8),
            ),
            min_size=1,
            max_size=48,
        )
    )
    if all(slot == EMPTY_SLOT for slot in slots):
        slots = slots + [0]
    return slots


#: Query instants: fractional, exactly integral, and boundary-adjacent.
query_instants = st.one_of(
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    st.integers(min_value=0, max_value=300).map(float),
)


@st.composite
def disk_layouts(draw):
    """Arbitrary small layouts with non-increasing integer frequencies."""
    num_disks = draw(st.integers(min_value=1, max_value=4))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=num_disks,
            max_size=num_disks,
        )
    )
    freqs = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=8),
                min_size=num_disks,
                max_size=num_disks,
            )
        ),
        reverse=True,
    )
    return DiskLayout(sizes, freqs)


@st.composite
def delta_layouts(draw):
    """Layouts built through the paper's delta rule."""
    num_disks = draw(st.integers(min_value=1, max_value=4))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=15),
            min_size=num_disks,
            max_size=num_disks,
        )
    )
    delta = draw(st.integers(min_value=0, max_value=7))
    return DiskLayout.from_delta(sizes, delta)


class TestProgramInvariants:
    @given(disk_layouts())
    @settings(max_examples=120, deadline=None)
    def test_every_page_appears(self, layout):
        program = multidisk_program(layout)
        assert program.num_pages == layout.total_pages

    @given(disk_layouts())
    @settings(max_examples=120, deadline=None)
    def test_fixed_interarrival_for_every_page(self, layout):
        program = multidisk_program(layout)
        for page in range(layout.total_pages):
            assert program.has_fixed_interarrival(page)

    @given(disk_layouts())
    @settings(max_examples=120, deadline=None)
    def test_broadcast_counts_match_rel_freqs(self, layout):
        program = multidisk_program(layout)
        for disk in range(layout.num_disks):
            for page in layout.pages_on_disk(disk):
                assert (
                    program.broadcasts_per_period(page)
                    == layout.rel_freqs[disk]
                )

    @given(disk_layouts())
    @settings(max_examples=120, deadline=None)
    def test_period_matches_chunk_plan(self, layout):
        plan = ChunkPlan.for_layout(layout)
        program = multidisk_program(layout)
        assert program.period == plan.period
        assert program.empty_slots == plan.padding_slots

    @given(disk_layouts())
    @settings(max_examples=100, deadline=None)
    def test_expected_delay_is_half_gap(self, layout):
        program = multidisk_program(layout)
        for disk in range(layout.num_disks):
            page = layout.pages_on_disk(disk)[0]
            gap = program.period / layout.rel_freqs[disk]
            assert math.isclose(program.expected_delay(page), gap / 2.0)

    @given(disk_layouts())
    @settings(max_examples=80, deadline=None)
    def test_analytic_delay_matches_schedule(self, layout):
        total = layout.total_pages
        probabilities = {page: 1.0 / total for page in range(total)}
        program = multidisk_program(layout)
        assert math.isclose(
            multidisk_expected_delay(layout, probabilities),
            program.expected_delay_under(probabilities),
            rel_tol=1e-12,
        )

    @given(delta_layouts())
    @settings(max_examples=100, deadline=None)
    def test_delta_zero_means_every_page_once(self, layout):
        if layout.rel_freqs == tuple([1] * layout.num_disks):
            program = multidisk_program(layout)
            assert program.period == layout.total_pages
            assert program.empty_slots == 0


class TestNextArrivalProperties:
    @given(
        disk_layouts(),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_next_arrival_is_consistent(self, layout, time):
        program = multidisk_program(layout)
        page = layout.total_pages - 1  # slowest page: worst case
        arrival = program.next_arrival(page, time)
        # Strictly in the future.
        assert arrival > time
        # Lands exactly on a completion boundary of that page.
        slot = (math.floor(arrival) - 1) % program.period
        assert program.slots[slot] == page
        # Wait is bounded by the page's gap.
        gap = program.period / layout.rel_freqs[-1]
        assert arrival - time <= gap + 1e-9

    @given(
        disk_layouts(),
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_no_earlier_completion_exists(self, layout, time):
        program = multidisk_program(layout)
        page = 0
        arrival = program.next_arrival(page, time)
        # Check against brute-force enumeration of completions.
        brute = None
        for cycle in range(3):
            for slot in program.occurrences(page):
                completion = (
                    math.floor(time / program.period) + cycle
                ) * program.period + float(slot) + 1.0
                if completion > time and (brute is None or completion < brute):
                    brute = completion
        assert math.isclose(arrival, brute)


class TestTimingStructureEquivalence:
    """ISSUE 5: the table-driven arithmetic IS the bisection reference.

    ``next_arrival`` dispatches fixed-gap closed form → wait table →
    bisection; each path must return the exact float the frozen
    ``next_arrival_bisect`` returns, for arbitrary schedules (irregular
    spacing, padding slots) and arbitrary query instants.
    """

    @given(raw_slot_lists(), query_instants)
    @settings(max_examples=150, deadline=None)
    def test_dispatch_matches_bisection_reference(self, slots, time):
        program = BroadcastSchedule(slots)
        for page in program.pages:
            assert program.next_arrival(page, time) == (
                program.next_arrival_bisect(page, time)
            )

    @given(raw_slot_lists(), query_instants)
    @settings(max_examples=150, deadline=None)
    def test_wait_table_arithmetic_matches_bisection(self, slots, time):
        # Drive the table directly, so fixed-gap pages (which the
        # dispatch would short-circuit) exercise it too.
        program = BroadcastSchedule(slots)
        for page in program.pages:
            table = program.wait_table(page)
            assert table is not None  # default budget covers tiny schedules
            base = math.floor(time) + 1
            arrival = float(base + table[(base - 1) % program.period])
            assert arrival == program.next_arrival_bisect(page, time)

    @given(raw_slot_lists(), query_instants)
    @settings(max_examples=150, deadline=None)
    def test_fixed_gap_closed_form_matches_bisection(self, slots, time):
        program = BroadcastSchedule(slots)
        for page in program.pages:
            entry = program.fixed_gap(page)
            if entry is None:
                continue
            residue, gap = entry
            base = math.floor(time) + 1
            arrival = float(base + (residue - base) % gap)
            assert arrival == program.next_arrival_bisect(page, time)

    @given(raw_slot_lists())
    @settings(max_examples=150, deadline=None)
    def test_request_at_completion_instant_misses_it(self, slots):
        # The channel edge (§2.1): a request issued exactly at a
        # completion boundary has missed that transmission.
        program = BroadcastSchedule(slots)
        for page in program.pages:
            for slot in program.occurrences(page):
                completion = float(int(slot) + 1)
                arrival = program.next_arrival(page, completion)
                assert arrival > completion
                assert arrival == program.next_arrival_bisect(page, completion)

    @given(raw_slot_lists(), query_instants)
    @settings(max_examples=100, deadline=None)
    def test_zero_budget_falls_back_to_bisection(self, slots, time):
        program = BroadcastSchedule(slots, wait_table_budget=0)
        for page in program.pages:
            assert program.wait_table(page) is None
            assert program.next_arrival(page, time) == (
                program.next_arrival_bisect(page, time)
            )
        stats = program.timing_stats()
        assert stats["wait_tables"] == 0
        assert stats["wait_table_bytes"] == 0
        assert stats["wait_tables_declined"] == len(program.pages)

    @given(raw_slot_lists(), query_instants)
    @settings(max_examples=100, deadline=None)
    def test_nonempty_completion_matches_scan(self, slots, time):
        program = BroadcastSchedule(slots)
        fast = program.next_nonempty_completion(time)
        assert fast > time
        assert program.page_at(fast - 0.5) is not None
        # No earlier non-empty completion exists.
        probe = math.floor(time) + 1.0
        while probe < fast:
            assert program.page_at(probe - 0.5) is None
            probe += 1.0


class TestScheduleConstructionProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=64)
    )
    @settings(max_examples=150, deadline=None)
    def test_gaps_always_sum_to_period(self, slots):
        program = BroadcastSchedule(slots)
        for page in program.pages:
            assert int(program.gaps(page).sum()) == program.period

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=64)
    )
    @settings(max_examples=150, deadline=None)
    def test_frequencies_sum_to_utilisation(self, slots):
        program = BroadcastSchedule(slots)
        total = sum(program.frequency(page) for page in program.pages)
        assert math.isclose(
            total, 1.0 - program.empty_slots / program.period
        )

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=48)
    )
    @settings(max_examples=150, deadline=None)
    def test_expected_delay_at_least_fixed_gap_floor(self, slots):
        # The Bus Stop Paradox, as an inequality over arbitrary programs.
        program = BroadcastSchedule(slots)
        for page in program.pages:
            floor = program.period / (
                2.0 * program.broadcasts_per_period(page)
            )
            assert program.expected_delay(page) >= floor - 1e-9
