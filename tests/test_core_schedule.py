"""Unit tests for BroadcastSchedule (repro.core.schedule)."""

import numpy as np
import pytest

from repro.core.chunks import EMPTY_SLOT
from repro.core.schedule import BroadcastSchedule
from repro.errors import ScheduleError


class TestConstruction:
    def test_basic_properties(self):
        schedule = BroadcastSchedule([0, 1, 0, 2])
        assert schedule.period == 4
        assert schedule.num_pages == 3
        assert schedule.pages == [0, 1, 2]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ScheduleError):
            BroadcastSchedule([])

    def test_all_empty_slots_rejected(self):
        with pytest.raises(ScheduleError):
            BroadcastSchedule([EMPTY_SLOT, EMPTY_SLOT])

    def test_negative_page_id_rejected(self):
        with pytest.raises(ScheduleError):
            BroadcastSchedule([0, -5])

    def test_empty_slots_counted(self):
        schedule = BroadcastSchedule([0, EMPTY_SLOT, 1, EMPTY_SLOT])
        assert schedule.empty_slots == 2

    def test_contains(self):
        schedule = BroadcastSchedule([0, 1])
        assert 0 in schedule
        assert 5 not in schedule

    def test_occurrences_sorted(self):
        schedule = BroadcastSchedule([3, 0, 3, 1, 3])
        assert list(schedule.occurrences(3)) == [0, 2, 4]

    def test_occurrences_unknown_page_raises(self):
        schedule = BroadcastSchedule([0, 1])
        with pytest.raises(ScheduleError):
            schedule.occurrences(9)


class TestFrequency:
    def test_frequency_is_fraction_of_slots(self):
        schedule = BroadcastSchedule([0, 1, 0, 2])
        assert schedule.frequency(0) == pytest.approx(0.5)
        assert schedule.frequency(1) == pytest.approx(0.25)

    def test_broadcasts_per_period(self):
        schedule = BroadcastSchedule([0, 0, 0, 1])
        assert schedule.broadcasts_per_period(0) == 3


class TestNextArrival:
    def test_wait_from_time_zero(self):
        # Page 1 broadcast in slot 1, completion at 2.0.
        schedule = BroadcastSchedule([0, 1, 2])
        assert schedule.next_arrival(1, 0.0) == 2.0

    def test_request_mid_slot(self):
        schedule = BroadcastSchedule([0, 1, 2])
        assert schedule.next_arrival(0, 0.5) == 1.0

    def test_request_exactly_at_completion_misses_it(self):
        # §2.1 semantics: must wait for the next full transmission.
        schedule = BroadcastSchedule([0, 1, 2])
        assert schedule.next_arrival(0, 1.0) == 4.0

    def test_wraps_to_next_period(self):
        schedule = BroadcastSchedule([0, 1, 2])
        assert schedule.next_arrival(0, 2.5) == 4.0

    def test_deep_into_later_cycles(self):
        schedule = BroadcastSchedule([0, 1, 2])
        assert schedule.next_arrival(1, 31.0) == 32.0
        assert schedule.next_arrival(1, 32.0) == 35.0

    def test_multiple_occurrences_choose_nearest(self):
        schedule = BroadcastSchedule([0, 1, 0, 2])
        assert schedule.next_arrival(0, 1.5) == 3.0
        assert schedule.next_arrival(0, 3.0) == 5.0

    def test_wait_time(self):
        schedule = BroadcastSchedule([0, 1, 2])
        assert schedule.wait_time(2, 0.25) == pytest.approx(2.75)


class TestGapsAndDelay:
    def test_gaps_single_occurrence(self):
        schedule = BroadcastSchedule([0, 1, 2, 3])
        assert list(schedule.gaps(2)) == [4]

    def test_gaps_multiple_occurrences(self):
        schedule = BroadcastSchedule([0, 0, 1, 2])  # A at slots 0,1
        assert sorted(schedule.gaps(0).tolist()) == [1, 3]

    def test_fixed_interarrival_detection(self):
        multidisk = BroadcastSchedule([0, 1, 0, 2])
        skewed = BroadcastSchedule([0, 0, 1, 2])
        assert multidisk.has_fixed_interarrival(0)
        assert not skewed.has_fixed_interarrival(0)

    def test_expected_delay_flat(self):
        schedule = BroadcastSchedule([0, 1, 2])
        for page in range(3):
            assert schedule.expected_delay(page) == pytest.approx(1.5)

    def test_expected_delay_matches_paper_table1_values(self):
        skewed = BroadcastSchedule([0, 0, 1, 2])
        multidisk = BroadcastSchedule([0, 1, 0, 2])
        assert skewed.expected_delay(0) == pytest.approx(1.25)
        assert skewed.expected_delay(1) == pytest.approx(2.0)
        assert multidisk.expected_delay(0) == pytest.approx(1.0)
        assert multidisk.expected_delay(1) == pytest.approx(2.0)

    def test_expected_delay_equals_brute_force_phase_average(self):
        schedule = BroadcastSchedule([0, 3, 0, 1, 2, 3, 0, 1])
        for page in schedule.pages:
            # Average the wait over a dense grid of arrival phases.
            phases = np.linspace(0, schedule.period, 4001, endpoint=False)
            waits = [schedule.next_arrival(page, t) - t for t in phases]
            assert schedule.expected_delay(page) == pytest.approx(
                np.mean(waits), rel=1e-2
            )

    def test_delay_variance_zero_iff_would_be_wrong(self):
        # Fixed gaps still have within-gap variance (uniform over the gap).
        schedule = BroadcastSchedule([0, 1, 0, 2])
        # Gap 2 -> wait ~ Uniform(0,2): variance 4/12.
        assert schedule.delay_variance(0) == pytest.approx(4.0 / 12.0)

    def test_variance_grows_with_gap_imbalance(self):
        balanced = BroadcastSchedule([0, 1, 0, 2])
        clustered = BroadcastSchedule([0, 0, 1, 2])
        assert clustered.delay_variance(0) > balanced.delay_variance(0)

    def test_expected_delay_under_distribution(self):
        schedule = BroadcastSchedule([0, 1, 0, 2])
        probabilities = {0: 0.5, 1: 0.25, 2: 0.25}
        assert schedule.expected_delay_under(probabilities) == pytest.approx(1.5)

    def test_expected_delay_under_ignores_zero_probability(self):
        schedule = BroadcastSchedule([0, 1])
        # Page 9 is never broadcast; zero probability must not raise.
        assert schedule.expected_delay_under({0: 1.0, 9: 0.0}) == pytest.approx(
            schedule.expected_delay(0)
        )


class TestSlotIteration:
    def test_page_at(self):
        schedule = BroadcastSchedule([5, EMPTY_SLOT, 7])
        assert schedule.page_at(0.5) == 5
        assert schedule.page_at(1.5) is None
        assert schedule.page_at(2.5) == 7
        assert schedule.page_at(3.5) == 5  # wraps

    def test_completions_in_interval(self):
        schedule = BroadcastSchedule([0, 1, 2])
        completions = list(schedule.completions_in(0.0, 3.0))
        assert completions == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_completions_exclude_start_include_stop(self):
        schedule = BroadcastSchedule([0, 1, 2])
        completions = list(schedule.completions_in(1.0, 2.0))
        assert completions == [(2.0, 1)]

    def test_completions_skip_padding(self):
        schedule = BroadcastSchedule([0, EMPTY_SLOT, 2])
        pages = [page for _t, page in schedule.completions_in(0.0, 3.0)]
        assert pages == [0, 2]

    def test_completions_across_period_boundary(self):
        schedule = BroadcastSchedule([0, 1])
        completions = list(schedule.completions_in(1.5, 3.5))
        assert completions == [(2.0, 1), (3.0, 0)]
