"""repro.population: specs, aggregates, and fleet runs.

The contract under test (``docs/POPULATION.md``): a PopulationSpec
expands deterministically into per-client plans; the aggregates merge
exactly (any sharding gives the same rollup); ``run_population`` is
byte-identical across ``jobs`` settings and resumes from a checkpoint
journal without changing the answer.
"""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.exec import SerialExecutor, SweepCheckpoint
from repro.exec.plan import derive_seed
from repro.experiments.config import ExperimentConfig
from repro.obs.manifest import strip_wall_clock
from repro.obs.metrics import MetricsRegistry
from repro.population import (
    Choice,
    Constant,
    FairnessAccumulator,
    PopulationAggregate,
    PopulationSpec,
    QuantileSketch,
    SegmentSpec,
    Uniform,
    UniformInt,
    client_config,
    expand,
    run_population,
    scale_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.sim.rng import RandomStreams


def small_base(**overrides):
    defaults = dict(
        disk_sizes=(50, 200, 250),
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=300,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def small_spec(**overrides):
    defaults = dict(
        name="test-fleet",
        base=small_base(),
        seed=11,
        segments=(
            SegmentSpec("varied", 6,
                        cache_size=UniformInt(10, 80),
                        policy=Choice(("LRU", "LIX"))),
            SegmentSpec("drifty", 4,
                        drift_rotations=Uniform(0.0, 2.0),
                        noise=Uniform(0.0, 0.3)),
        ),
    )
    defaults.update(overrides)
    return PopulationSpec(**defaults)


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------

class TestDistributions:
    def test_constant_returns_value(self):
        rng = RandomStreams(1).stream("population")
        assert Constant(42).sample(rng) == 42
        assert Constant("LIX").sample(rng) == "LIX"

    def test_uniform_int_inclusive_bounds(self):
        rng = RandomStreams(2).stream("population")
        values = {UniformInt(3, 5).sample(rng) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_uniform_within_range(self):
        rng = RandomStreams(3).stream("population")
        for _ in range(100):
            value = Uniform(0.25, 0.75).sample(rng)
            assert 0.25 <= value < 0.75

    def test_choice_uniform_hits_all_values(self):
        rng = RandomStreams(4).stream("population")
        seen = {Choice(("a", "b", "c")).sample(rng) for _ in range(200)}
        assert seen == {"a", "b", "c"}

    def test_choice_weighted_respects_zero_weight(self):
        rng = RandomStreams(5).stream("population")
        choice = Choice(("hot", "cold"), weights=(1.0, 0.0))
        assert {choice.sample(rng) for _ in range(100)} == {"hot"}

    def test_choice_validation(self):
        with pytest.raises(ConfigurationError):
            Choice(())
        with pytest.raises(ConfigurationError):
            Choice(("a", "b"), weights=(1.0,))
        with pytest.raises(ConfigurationError):
            Choice(("a",), weights=(0.0,))

    def test_bound_validation(self):
        with pytest.raises(ConfigurationError):
            UniformInt(5, 3)
        with pytest.raises(ConfigurationError):
            Uniform(1.0, 0.5)


# ---------------------------------------------------------------------------
# Spec expansion
# ---------------------------------------------------------------------------

class TestExpansion:
    def test_expansion_is_deterministic(self):
        spec = small_spec()
        assert expand(spec) == expand(spec)

    def test_one_plan_per_client_in_declaration_order(self):
        spec = small_spec()
        plans = expand(spec)
        assert len(plans) == spec.num_clients == 10
        assert [plan.index for plan in plans] == list(range(10))
        assert plans[0].config.label.startswith("test-fleet/varied/")
        assert plans[9].config.label.startswith("test-fleet/drifty/")

    def test_per_client_seed_uses_stride_derivation(self):
        spec = small_spec()
        for plan in expand(spec):
            assert plan.config.seed == derive_seed(spec.seed, plan.index)

    def test_client_identity_is_independent_of_fleet_shape(self):
        # The same (spec.seed, index, segment) always yields the same
        # client, no matter how many clients the segment holds.
        spec_small = small_spec()
        segment = spec_small.segments[0]
        grown = small_spec(segments=(
            SegmentSpec("varied", 20,
                        cache_size=UniformInt(10, 80),
                        policy=Choice(("LRU", "LIX"))),
        ))
        for index in range(3):
            assert (client_config(spec_small, segment, index)
                    == client_config(grown, grown.segments[0], index))

    def test_undistributed_fields_inherit_base(self):
        spec = small_spec()
        plan = expand(spec)[0]  # "varied" distributes cache_size+policy
        assert plan.config.noise == spec.base.noise
        assert plan.config.think_time == spec.base.think_time

    def test_sampled_fields_respect_distributions(self):
        spec = small_spec()
        for plan in expand(spec)[:6]:
            assert 10 <= plan.config.cache_size <= 80
            assert plan.config.policy in ("LRU", "LIX")
        for plan in expand(spec)[6:]:
            assert 0.0 <= plan.config.drift_rotations <= 2.0
            assert 0.0 <= plan.config.noise <= 0.3

    def test_literal_values_are_wrapped_as_constants(self):
        segment = SegmentSpec("fixed", 2, cache_size=32, policy="LRU")
        assert segment.cache_size == Constant(32)
        assert segment.policy == Constant("LRU")

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            SegmentSpec("", 3)
        with pytest.raises(ConfigurationError):
            SegmentSpec("empty", 0)
        with pytest.raises(ConfigurationError):
            PopulationSpec(name="x", segments=())
        with pytest.raises(ConfigurationError):
            PopulationSpec(
                name="x",
                segments=(SegmentSpec("a", 1), SegmentSpec("a", 1)),
            )
        with pytest.raises(ConfigurationError, match="valid engines"):
            small_spec(engine="bogus")
        with pytest.raises(ConfigurationError, match="plan-capable"):
            small_spec(engine="hybrid")


class TestScaleSpec:
    def test_scales_proportionally_to_exact_total(self):
        spec = small_spec()  # 6 + 4 clients
        scaled = scale_spec(spec, 50)
        assert scaled.num_clients == 50
        assert [segment.clients for segment in scaled.segments] == [30, 20]

    def test_rounds_with_minimum_one_client(self):
        spec = small_spec()
        scaled = scale_spec(spec, 3)
        assert scaled.num_clients == 3
        assert all(segment.clients >= 1 for segment in scaled.segments)

    def test_rejects_fewer_clients_than_segments(self):
        with pytest.raises(ConfigurationError):
            scale_spec(small_spec(), 1)


class TestSpecRoundTrip:
    def test_json_round_trip_is_exact(self):
        spec = small_spec()
        payload = json.loads(json.dumps(spec_to_dict(spec)))
        assert spec_from_dict(payload) == spec

    def test_round_trip_preserves_weighted_choice(self):
        spec = small_spec(segments=(
            SegmentSpec("weighted", 3,
                        policy=Choice(("LRU", "LIX"), weights=(0.7, 0.3))),
        ))
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_rejects_unknown_schema_and_fields(self):
        payload = spec_to_dict(small_spec())
        bad_schema = dict(payload, schema="repro.population.spec/999")
        with pytest.raises(ConfigurationError):
            spec_from_dict(bad_schema)
        bad_base = dict(payload, base=dict(payload["base"], bogus=1))
        with pytest.raises(ConfigurationError, match="bogus"):
            spec_from_dict(bad_base)

    def test_rejects_unknown_distribution_kind(self):
        payload = spec_to_dict(small_spec())
        payload["segments"][0]["cache_size"] = {"kind": "zipfian"}
        with pytest.raises(ConfigurationError, match="zipfian"):
            spec_from_dict(payload)


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

class TestQuantileSketch:
    def test_quantiles_within_relative_error(self):
        sketch = QuantileSketch()
        values = [float(i) for i in range(1, 1001)]
        for value in values:
            sketch.add(value)
        for fraction in (0.5, 0.9, 0.99):
            exact = values[math.ceil(fraction * len(values)) - 1]
            approx = sketch.quantile(fraction)
            assert abs(approx - exact) / exact <= sketch.gamma - 1.0 + 1e-9

    def test_merge_equals_sequential_feed(self):
        left, right, whole = (QuantileSketch() for _ in range(3))
        for i in range(1, 500):
            value = (i * 37) % 997 + 0.5
            (left if i % 2 else right).add(value)
            whole.add(value)
        merged = left.merge(right)
        assert merged.count == whole.count
        for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert merged.quantile(fraction) == whole.quantile(fraction)

    def test_merge_is_commutative(self):
        left, right = QuantileSketch(), QuantileSketch()
        for i in range(100):
            left.add(i + 1.0)
            right.add((i + 1.0) * 3)
        assert (left.merge(right).quantile(0.9)
                == right.merge(left).quantile(0.9))

    def test_zero_values_and_empty(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        sketch.add(0.0)
        sketch.add(0.0)
        sketch.add(10.0)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(10.0, rel=0.03)

    def test_gamma_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch(1.02).merge(QuantileSketch(1.05))
        with pytest.raises(ConfigurationError):
            QuantileSketch(0.5)


class TestFairness:
    def test_even_fleet_is_one(self):
        acc = FairnessAccumulator()
        for _ in range(10):
            acc.add(5.0)
        assert acc.jain == pytest.approx(1.0)

    def test_single_hog_tends_to_one_over_n(self):
        acc = FairnessAccumulator()
        acc.add(100.0)
        for _ in range(9):
            acc.add(0.0)
        assert acc.jain == pytest.approx(0.1)

    def test_merge_exact(self):
        left, right, whole = (FairnessAccumulator() for _ in range(3))
        for i in range(50):
            value = float((i * 13) % 7 + 1)
            (left if i % 3 else right).add(value)
            whole.add(value)
        merged = left.merge(right)
        assert merged.count == whole.count
        # Sums are reassociated by the merge; equality holds to the ulp.
        assert merged.jain == pytest.approx(whole.jain, rel=1e-12)


class TestPopulationAggregateMerge:
    def test_merge_matches_sequential_fold(self):
        spec = small_spec()
        results = SerialExecutor().run(expand(spec))
        whole = PopulationAggregate()
        left, right = PopulationAggregate(), PopulationAggregate()
        for index, result in enumerate(results):
            whole.add_result(result)
            (left if index < 5 else right).add_result(result)
        merged = left.merge(right)
        assert merged.clients == whole.clients
        assert merged.measured_requests == whole.measured_requests
        # Integer bucket counts make sketch quantiles exactly mergeable;
        # the float moments reassociate and agree to the ulp.
        assert (merged.percentiles.quantile(0.9)
                == whole.percentiles.quantile(0.9))
        assert merged.response_means.mean == pytest.approx(
            whole.response_means.mean, rel=1e-12
        )
        assert merged.response_means.stddev == pytest.approx(
            whole.response_means.stddev, rel=1e-9
        )
        assert merged.hit_rate == pytest.approx(whole.hit_rate, rel=1e-12)
        assert merged.fairness.jain == pytest.approx(
            whole.fairness.jain, rel=1e-12
        )


# ---------------------------------------------------------------------------
# run_population
# ---------------------------------------------------------------------------

def fleet_snapshot(result):
    blocks = {"overall": result.overall.snapshot()}
    blocks.update({name: aggregate.snapshot()
                   for name, aggregate in result.segments.items()})
    return strip_wall_clock(blocks)


class TestRunPopulation:
    def test_segment_breakdown_covers_fleet(self):
        result = run_population(small_spec(), keep_results=True)
        assert result.num_clients == 10
        assert [aggregate.clients
                for aggregate in result.segments.values()] == [6, 4]
        assert set(result.segments) == {"varied", "drifty"}
        assert len(result.results) == 10

    def test_results_dropped_by_default(self):
        assert run_population(small_spec()).results is None

    def test_segments_fold_their_own_clients(self):
        spec = small_spec()
        result = run_population(spec, keep_results=True)
        varied_means = [r.mean_response_time for r in result.results[:6]]
        varied = result.segments["varied"]
        assert varied.response_means.mean == pytest.approx(
            sum(varied_means) / len(varied_means)
        )
        assert varied.response_means.count == 6

    def test_parallel_is_byte_identical(self, tmp_path):
        spec = small_spec()
        serial_metrics, parallel_metrics = (
            MetricsRegistry(), MetricsRegistry()
        )
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        serial = run_population(
            spec, jobs=1, metrics=serial_metrics,
            manifest=str(serial_path),
        )
        parallel = run_population(
            spec, jobs=2, metrics=parallel_metrics,
            manifest=str(parallel_path),
        )
        assert fleet_snapshot(serial) == fleet_snapshot(parallel)
        assert serial_metrics.snapshot() == parallel_metrics.snapshot()
        assert (strip_wall_clock(json.loads(serial_path.read_text()))
                == strip_wall_clock(json.loads(parallel_path.read_text())))

    def test_checkpoint_resume_reproduces_fleet(self, tmp_path):
        spec = small_spec()
        reference = run_population(spec)
        journal = tmp_path / "fleet.jsonl"
        half = expand(spec)[:5]
        SerialExecutor().run(half, checkpoint=SweepCheckpoint(str(journal)))
        resume = SweepCheckpoint(str(journal))
        assert resume.resumed == 5
        resumed = run_population(spec, jobs=2, checkpoint=resume)
        assert fleet_snapshot(resumed) == fleet_snapshot(reference)
        # Every client is journalled now; a fresh resume replays all.
        replay = SweepCheckpoint(str(journal))
        assert replay.resumed == 10

    def test_progress_fires_in_plan_order(self):
        seen = []
        run_population(
            small_spec(),
            progress=lambda done, total, _r: seen.append((done, total)),
        )
        assert seen == [(i + 1, 10) for i in range(10)]

    def test_manifest_schema_and_content(self, tmp_path):
        path = tmp_path / "population.json"
        spec = small_spec()
        result = run_population(spec, manifest=str(path))
        document = json.loads(path.read_text())
        assert document == result.manifest
        assert document["schema"] == "repro.population/1"
        assert document["num_clients"] == 10
        assert document["spec"] == spec_to_dict(spec)
        assert set(document["segments"]) == {"varied", "drifty"}
        assert document["summary"]["clients"] == 10
        assert 0.0 < document["summary"]["fairness"] <= 1.0

    def test_metrics_rollup(self):
        metrics = MetricsRegistry()
        result = run_population(small_spec(), metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["population.clients"] == 10
        assert snapshot["population.runs"] == 1
        assert (snapshot["population.response.mean"]
                == result.overall.response_means.mean)
        assert snapshot["population.fairness"] == result.overall.fairness.jain

    def test_homogeneous_fleet_mean_matches_singles(self):
        # A homogeneous fleet is the single-client harness run n times
        # with derived seeds; the rollup must equal the hand fold.
        from repro.experiments.runner import run_experiment

        base = small_base(cache_size=1)
        spec = PopulationSpec(
            name="homogeneous", base=base, seed=5,
            segments=(SegmentSpec("all", 4),),
        )
        fleet = run_population(spec)
        singles = [
            run_experiment(base.with_(
                seed=derive_seed(5, index),
                label=f"homogeneous/all/client{index}",
            )).mean_response_time
            for index in range(4)
        ]
        assert fleet.overall.response_means.mean == pytest.approx(
            sum(singles) / len(singles)
        )
