"""Unit tests for DiskLayout (repro.core.disks)."""

import pytest

from repro.core.disks import DiskLayout
from repro.errors import ConfigurationError


class TestConstruction:
    def test_basic_layout(self):
        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        assert layout.num_disks == 3
        assert layout.total_pages == 14

    def test_sizes_and_freqs_are_coerced_to_int_tuples(self):
        layout = DiskLayout([2.0, 4.0], [3.0, 1.0])
        assert layout.sizes == (2, 4)
        assert layout.rel_freqs == (3, 1)

    def test_empty_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskLayout((), ())

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskLayout((2, 4), (1,))

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskLayout((2, 0), (2, 1))

    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskLayout((2, 4), (1, 0))

    def test_increasing_frequencies_rejected(self):
        # A later (colder) disk must not spin faster than an earlier one.
        with pytest.raises(ConfigurationError):
            DiskLayout((2, 4), (1, 2))

    def test_equal_frequencies_allowed(self):
        layout = DiskLayout((2, 4), (1, 1))
        assert layout.is_flat


class TestDeltaRule:
    def test_delta_zero_is_flat(self):
        layout = DiskLayout.from_delta((10, 20, 30), delta=0)
        assert layout.rel_freqs == (1, 1, 1)
        assert layout.is_flat

    def test_three_disk_delta_one_gives_3_2_1(self):
        # Paper §4.2: "for a 3-disk broadcast, when delta=1, disk 1 spins
        # three times as fast as disk 3, while disk 2 spins twice as fast".
        layout = DiskLayout.from_delta((1, 1, 1), delta=1)
        assert layout.rel_freqs == (3, 2, 1)

    def test_three_disk_delta_three_gives_7_4_1(self):
        # Paper §4.2: "when delta=3, the relative speeds are 7, 4, and 1".
        layout = DiskLayout.from_delta((1, 1, 1), delta=3)
        assert layout.rel_freqs == (7, 4, 1)

    def test_two_disk_delta_rule(self):
        layout = DiskLayout.from_delta((5, 5), delta=4)
        assert layout.rel_freqs == (5, 1)

    def test_negative_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskLayout.from_delta((1, 1), delta=-1)

    def test_flat_constructor(self):
        layout = DiskLayout.flat(100)
        assert layout.num_disks == 1
        assert layout.total_pages == 100
        assert layout.is_flat


class TestPageMapping:
    def test_disk_ranges_are_contiguous(self):
        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        assert layout.disk_ranges() == ((0, 2), (2, 6), (6, 14))

    def test_disk_of_page_boundaries(self):
        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        assert layout.disk_of_page(0) == 0
        assert layout.disk_of_page(1) == 0
        assert layout.disk_of_page(2) == 1
        assert layout.disk_of_page(5) == 1
        assert layout.disk_of_page(6) == 2
        assert layout.disk_of_page(13) == 2

    def test_disk_of_page_out_of_range(self):
        layout = DiskLayout((2, 4), (2, 1))
        with pytest.raises(ConfigurationError):
            layout.disk_of_page(6)
        with pytest.raises(ConfigurationError):
            layout.disk_of_page(-1)

    def test_pages_on_disk(self):
        layout = DiskLayout((2, 4), (2, 1))
        assert list(layout.pages_on_disk(0)) == [0, 1]
        assert list(layout.pages_on_disk(1)) == [2, 3, 4, 5]

    def test_every_page_on_exactly_one_disk(self):
        layout = DiskLayout((3, 5, 7), (5, 3, 1))
        seen = []
        for disk in range(layout.num_disks):
            seen.extend(layout.pages_on_disk(disk))
        assert seen == list(range(layout.total_pages))


class TestDerived:
    def test_bandwidth_shares_sum_to_one(self):
        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        assert sum(layout.bandwidth_shares()) == pytest.approx(1.0)

    def test_bandwidth_shares_values(self):
        layout = DiskLayout((2, 4), (3, 1))
        # weights 6 and 4 -> shares 0.6, 0.4
        assert layout.bandwidth_shares() == pytest.approx((0.6, 0.4))

    def test_iteration_yields_size_freq_pairs(self):
        layout = DiskLayout((2, 4), (3, 1))
        assert list(layout) == [(2, 3), (4, 1)]

    def test_describe(self):
        layout = DiskLayout((500, 4500), (4, 1))
        assert layout.describe() == "<500@4, 4500@1>"

    def test_frozen(self):
        layout = DiskLayout((2, 4), (2, 1))
        with pytest.raises(AttributeError):
            layout.sizes = (1, 1)

    def test_equality_and_hash(self):
        assert DiskLayout((2, 4), (2, 1)) == DiskLayout((2, 4), (2, 1))
        assert hash(DiskLayout((2, 4), (2, 1))) == hash(DiskLayout((2, 4), (2, 1)))
