"""TimeWeightedStat unit tests + the paper's Figure 12 worked example."""

import pytest

from repro.cache.base import PolicyContext
from repro.cache.lix import LIXPolicy
from repro.hybrid.channel import HybridChannel, HybridServer
from repro.core.programs import _flat_program as flat_program
from repro.sim.kernel import Simulator
from repro.sim.stats import TimeWeightedStat


class TestTimeWeightedStat:
    def test_constant_signal(self):
        stat = TimeWeightedStat()
        stat.record(10.0, 5.0)  # value was 0 for 10 units, now 5
        assert stat.mean() == pytest.approx(0.0)
        stat.record(20.0, 5.0)
        assert stat.mean() == pytest.approx(2.5)  # 0 for 10u, 5 for 10u

    def test_weighted_by_duration(self):
        stat = TimeWeightedStat(initial_value=2.0)
        stat.record(1.0, 10.0)   # 2 held for 1 unit
        stat.record(4.0, 0.0)    # 10 held for 3 units
        # mean = (2*1 + 10*3) / 4 = 8
        assert stat.mean() == pytest.approx(8.0)

    def test_mean_up_to_now_extends_last_value(self):
        stat = TimeWeightedStat()
        stat.record(2.0, 4.0)
        # 0 for 2 units, then 4 for 6 more units.
        assert stat.mean(now=8.0) == pytest.approx(3.0)

    def test_maximum_tracked(self):
        stat = TimeWeightedStat()
        stat.record(1.0, 7.0)
        stat.record(2.0, 3.0)
        assert stat.maximum == 7.0

    def test_time_cannot_go_backwards(self):
        stat = TimeWeightedStat()
        stat.record(5.0, 1.0)
        with pytest.raises(ValueError):
            stat.record(4.0, 2.0)
        with pytest.raises(ValueError):
            stat.mean(now=4.0)

    def test_current_value(self):
        stat = TimeWeightedStat()
        stat.record(1.0, 9.0)
        assert stat.current == 9.0

    def test_no_elapsed_time_returns_current(self):
        stat = TimeWeightedStat(initial_value=3.0)
        assert stat.mean() == 3.0

    def test_projection_to_last_change_is_identity(self):
        stat = TimeWeightedStat()
        stat.record(2.0, 4.0)
        stat.record(6.0, 1.0)
        assert stat.mean(now=6.0) == stat.mean()

    def test_projection_matches_closed_form(self):
        # Piecewise-constant: 0 on [0,2), 4 on [2,6), 1 on [6,10).
        stat = TimeWeightedStat()
        stat.record(2.0, 4.0)
        stat.record(6.0, 1.0)
        expected = (0.0 * 2 + 4.0 * 4 + 1.0 * 4) / 10.0
        assert stat.mean(now=10.0) == pytest.approx(expected)
        # Projection must not mutate the accumulator.
        assert stat.mean() == pytest.approx((0.0 * 2 + 4.0 * 4) / 6.0)

    def test_projection_with_no_changes_extends_initial_value(self):
        stat = TimeWeightedStat(start_time=5.0, initial_value=2.0)
        assert stat.mean(now=9.0) == pytest.approx(2.0)

    def test_zero_span_change_keeps_time_and_updates_value(self):
        stat = TimeWeightedStat()
        stat.record(3.0, 1.0)
        stat.record(3.0, 8.0)  # simultaneous change is legal
        assert stat.current == 8.0
        assert stat.maximum == 8.0
        assert stat.mean() == pytest.approx(0.0)  # only value 0 has held


class TestHybridQueueMonitoring:
    def test_queue_stat_reflects_load(self):
        sim = Simulator()
        channel = HybridChannel(sim, flat_program(8), pull_spacing=4)
        HybridServer(sim, channel)
        for page in (1, 2, 3):
            channel.request_pull(page)
        sim.run(until=12.0)  # pulls served at t=4, 8, 12
        assert channel.queue_stat.maximum == 3
        assert channel.pull_slots_used == 3
        # Queue drained: final value zero, time-weighted mean positive.
        assert channel.queue_stat.current == 0
        assert channel.queue_stat.mean() > 0


class TestFigure12WorkedExample:
    """The paper's Figure 12: a two-disk LIX replacement step.

    Two chains (Disk1Q, Disk2Q); the bottoms are evaluated; the bottom
    with the smaller lix value is the victim; the incoming page, being
    broadcast on disk 2, joins Disk2Q — so the queues change size.
    """

    def test_replacement_moves_queue_boundary(self):
        # Disk 1 is broadcast 10x as often as disk 2.
        context = PolicyContext(
            frequency=lambda page: 0.10 if page < 100 else 0.01,
            disk_of=lambda page: 0 if page < 100 else 1,
            num_disks=2,
        )
        policy = LIXPolicy(8, context)
        # Fill: 4 pages per chain (a..g analogue), interleaved history.
        disk1_pages = [0, 1, 2, 3]
        disk2_pages = [100, 101, 102, 103]
        time = 0.0
        for page in (0, 100, 1, 101, 2, 102, 3, 103):
            time += 2.0
            policy.admit(page, time)
        # Touch everything except the bottoms so recency is realistic.
        for page in (1, 2, 3, 101, 102, 103):
            time += 2.0
            policy.lookup(page, time)
        assert policy.chain_pages(0)[0] == 0     # "g": bottom of Disk1Q
        assert policy.chain_pages(1)[0] == 100   # "k": bottom of Disk2Q

        before = (len(policy.chain_pages(0)), len(policy.chain_pages(1)))
        # New page z arrives from disk 2.  The two bottoms have equal
        # aged estimates, but the disk-1 bottom's frequency is 10x, so
        # its lix value is 10x smaller: it is the victim.
        time += 2.0
        victim = policy.admit(150, time)
        after = (len(policy.chain_pages(0)), len(policy.chain_pages(1)))

        assert victim == 0                       # "g" evicted
        assert after[0] == before[0] - 1         # Disk1Q shrank
        assert after[1] == before[1] + 1         # Disk2Q grew
        assert policy.chain_pages(1)[-1] == 150  # z on top of Disk2Q
