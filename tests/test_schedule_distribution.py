"""Tests for the waiting-time distribution queries (CDF/quantiles).

Beyond the mean, the Bus Stop Paradox is a statement about the *shape*
of the wait distribution: clustered programs have heavier tails for the
same bandwidth.  These tests pin the closed-form CDF/quantile against
brute-force phase enumeration and Monte-Carlo sampling.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import BroadcastSchedule
from repro.errors import ScheduleError


class TestDelayCdf:
    def test_flat_program_uniform_wait(self):
        schedule = BroadcastSchedule([0, 1, 2, 3])
        # Single gap of 4: W ~ Uniform(0, 4].
        assert schedule.delay_cdf(0, 0.0) == 0.0
        assert schedule.delay_cdf(0, 2.0) == pytest.approx(0.5)
        assert schedule.delay_cdf(0, 4.0) == pytest.approx(1.0)
        assert schedule.delay_cdf(0, 99.0) == 1.0

    def test_negative_wait(self):
        schedule = BroadcastSchedule([0, 1])
        assert schedule.delay_cdf(0, -1.0) == 0.0

    def test_two_gap_program(self):
        # A at slots 0,1 of period 4: gaps 1 and 3.
        schedule = BroadcastSchedule([0, 0, 1, 2])
        # P(W <= 1) = (min(1,1)+min(1,3))/4 = 0.5
        assert schedule.delay_cdf(0, 1.0) == pytest.approx(0.5)
        # P(W <= 2) = (1 + 2)/4 = 0.75
        assert schedule.delay_cdf(0, 2.0) == pytest.approx(0.75)

    def test_cdf_monotone(self):
        schedule = BroadcastSchedule([0, 3, 0, 1, 2, 3, 0, 1])
        waits = np.linspace(0, 8, 33)
        values = [schedule.delay_cdf(0, w) for w in waits]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_cdf_against_monte_carlo(self, rng):
        schedule = BroadcastSchedule([0, 1, 0, 2, 3, 0, 1, 2])
        times = rng.uniform(0, schedule.period, size=20_000)
        waits = np.array([schedule.wait_time(0, t) for t in times])
        for threshold in (0.5, 1.0, 2.0, 3.0):
            empirical = float(np.mean(waits <= threshold))
            assert schedule.delay_cdf(0, threshold) == pytest.approx(
                empirical, abs=0.02
            )


class TestDelayQuantile:
    def test_flat_median(self):
        schedule = BroadcastSchedule([0, 1, 2, 3])
        assert schedule.delay_quantile(0, 0.5) == pytest.approx(2.0)

    def test_extremes(self):
        schedule = BroadcastSchedule([0, 0, 1, 2])
        assert schedule.delay_quantile(0, 0.0) == 0.0
        assert schedule.delay_quantile(0, 1.0) == pytest.approx(3.0)  # max gap

    def test_invalid_fraction(self):
        schedule = BroadcastSchedule([0, 1])
        with pytest.raises(ScheduleError):
            schedule.delay_quantile(0, 1.5)

    def test_quantile_inverts_cdf(self):
        schedule = BroadcastSchedule([0, 3, 0, 1, 2, 3, 0, 1])
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            wait = schedule.delay_quantile(0, fraction)
            assert schedule.delay_cdf(0, wait) == pytest.approx(fraction)

    @given(
        st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=40),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantile_cdf_round_trip_property(self, slots, fraction):
        schedule = BroadcastSchedule(slots)
        page = schedule.pages[0]
        wait = schedule.delay_quantile(page, fraction)
        assert abs(schedule.delay_cdf(page, wait) - fraction) < 1e-9

    def test_worst_case(self):
        schedule = BroadcastSchedule([0, 0, 1, 2])
        assert schedule.worst_case_delay(0) == 3.0
        assert schedule.worst_case_delay(1) == 4.0


class TestBusStopTails:
    def test_clustered_program_has_heavier_tail(self):
        multidisk = BroadcastSchedule([0, 1, 0, 2])
        clustered = BroadcastSchedule([0, 0, 1, 2])
        # Same bandwidth for page 0 in both; clustered waits longer at
        # the 90th percentile and in the worst case.
        assert clustered.delay_quantile(0, 0.9) > multidisk.delay_quantile(0, 0.9)
        assert clustered.worst_case_delay(0) > multidisk.worst_case_delay(0)

    def test_fixed_gaps_have_linear_cdf(self):
        schedule = BroadcastSchedule([0, 1, 0, 2])
        # W ~ Uniform(0, 2]: CDF is exactly w/2.
        for wait in (0.4, 1.0, 1.6):
            assert schedule.delay_cdf(0, wait) == pytest.approx(wait / 2.0)
