"""Whole-program analysis: the project model and rules RL010-RL014.

Each rule gets the ISSUE-mandated trio — a seeded bug that must fire,
a clean variant that must not, and a suppression check — exercised
through ``lint_paths`` over a temporary package tree so the
cross-module machinery (module graph, re-export resolution, call-graph
reachability) is what is actually under test.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

from repro.lint import (
    LintConfig,
    ProjectModel,
    lint_paths,
    summarize_module,
    to_sarif,
)
from repro.lint.project import module_name_for


def make_tree(tmp_path: Path, files: dict) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def run(tmp_path: Path, files: dict, enabled=None) -> list:
    root = make_tree(tmp_path, files)
    config = LintConfig(scope="src/repro", enabled=enabled)
    return lint_paths([root], config)


def codes(diagnostics) -> list:
    return [d.code for d in diagnostics]


def model_for(files: dict) -> ProjectModel:
    summaries = [
        summarize_module(path, ast.parse(textwrap.dedent(source)))
        for path, source in files.items()
    ]
    return ProjectModel(summaries)


class TestModuleNames:
    def test_src_layout_is_stripped(self):
        assert module_name_for("src/repro/exec/run.py") == "repro.exec.run"

    def test_absolute_prefixes_are_harmless(self):
        name = module_name_for("/tmp/x/src/repro/sim/rng.py")
        assert name == "repro.sim.rng"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/exec/__init__.py") == "repro.exec"


class TestProjectModel:
    def test_find_module_matches_dotted_suffix(self):
        model = model_for({"src/repro/sim/rng.py": "x = 1\n"})
        assert model.find_module("repro.sim.rng") == "src/repro/sim/rng.py"
        assert model.find_module("sim.rng") == "src/repro/sim/rng.py"
        assert model.find_module("nowhere.rng") is None

    def test_resolution_chases_reexport_chain(self):
        model = model_for(
            {
                "src/repro/exec/plan.py": "class RunPlan:\n    pass\n",
                "src/repro/exec/__init__.py": (
                    "from repro.exec.plan import RunPlan\n"
                ),
                "src/repro/top.py": "from repro.exec import RunPlan\n",
            }
        )
        resolved = model.resolve("repro.exec.RunPlan")
        assert resolved is not None
        assert resolved.kind == "class"
        assert resolved.path == "src/repro/exec/plan.py"
        summary = model.summaries["src/repro/top.py"]
        via_import = model.resolve_from(summary, "RunPlan")
        assert via_import is not None
        assert via_import.path == "src/repro/exec/plan.py"

    def test_reverse_dependencies_are_transitive(self):
        model = model_for(
            {
                "src/repro/a.py": "def helper():\n    return 1\n",
                "src/repro/b.py": (
                    "from repro.a import helper\n"
                    "def mid():\n    return helper()\n"
                ),
                "src/repro/c.py": (
                    "from repro.b import mid\n"
                    "def top():\n    return mid()\n"
                ),
                "src/repro/lone.py": "x = 3\n",
            }
        )
        affected = model.reverse_dependencies(["src/repro/a.py"])
        assert affected == {"src/repro/b.py", "src/repro/c.py"}

    def test_reachability_crosses_module_boundaries(self):
        model = model_for(
            {
                "src/repro/exec/run.py": (
                    "from repro.work import step\n"
                    "def execute_plan(plan):\n"
                    "    return step(plan)\n"
                ),
                "src/repro/work.py": (
                    "def step(plan):\n    return inner(plan)\n"
                    "def inner(plan):\n    return plan\n"
                    "def unrelated():\n    return 0\n"
                ),
            }
        )
        roots = model.worker_roots(("exec.run.execute_plan",))
        assert roots == {"src/repro/exec/run.py::execute_plan"}
        reached = model.reachable(roots)
        assert "src/repro/work.py::step" in reached
        assert "src/repro/work.py::inner" in reached
        assert "src/repro/work.py::unrelated" not in reached


class TestRngProvenance:
    """RL010: unmanaged generators flowing into project code."""

    BUG = {
        "src/repro/helpers.py": """
            import numpy


            def make_rng(seed):
                return numpy.random.default_rng(seed)
        """,
        "src/repro/sim.py": """
            from repro.helpers import make_rng


            def simulate(rng):
                return rng.random()


            def drive():
                rng = make_rng(7)
                return simulate(rng)
        """,
    }

    def test_cross_module_taint_fires(self, tmp_path):
        diagnostics = run(tmp_path, self.BUG, enabled=("RL010",))
        assert codes(diagnostics) == ["RL010"]
        assert diagnostics[0].path.endswith("src/repro/sim.py")
        assert "make_rng" in diagnostics[0].message

    def test_stream_derived_rng_is_clean(self, tmp_path):
        files = {
            "src/repro/sim.py": """
                from repro.rngmod import RandomStreams


                def simulate(rng):
                    return rng.random()


                def drive(streams: RandomStreams):
                    rng = streams.stream("clients")
                    return simulate(rng)
            """,
            "src/repro/rngmod.py": """
                class RandomStreams:
                    def stream(self, name):
                        return name
            """,
        }
        assert run(tmp_path, files, enabled=("RL010",)) == []

    GATEWAY = {
        "src/repro/batchrng.py": """
            import numpy as np


            def seeded_generator(entropy):
                sequence = np.random.SeedSequence(entropy)
                return np.random.Generator(np.random.PCG64(sequence))


            def client_generator(seed, index):
                return seeded_generator((seed, index))
        """,
        "src/repro/fleet.py": """
            from repro.batchrng import client_generator


            def simulate(rng):
                return rng.random()


            def drive(seed):
                rng = client_generator(seed, 0)
                return simulate(rng)
        """,
    }

    def test_seeded_gateway_is_clean(self, tmp_path):
        # Generator(PCG64(SeedSequence(entropy))) is the sanctioned
        # array-RNG recipe; the wrapper returning its result is clean
        # too, so the consumer in fleet.py raises no diagnostic.
        assert run(tmp_path, self.GATEWAY, enabled=("RL010",)) == []

    def test_default_rng_seeded_gateway_is_clean(self, tmp_path):
        files = dict(self.GATEWAY)
        files["src/repro/batchrng.py"] = """
            import numpy as np


            def seeded_generator(entropy):
                return np.random.default_rng(np.random.SeedSequence(entropy))


            def client_generator(seed, index):
                return seeded_generator((seed, index))
        """
        assert run(tmp_path, files, enabled=("RL010",)) == []

    def test_os_entropy_gateway_stays_flagged(self, tmp_path):
        # A bare SeedSequence() draws OS entropy — that chain is not a
        # seeded gateway and the taint still reaches simulate().
        files = dict(self.GATEWAY)
        files["src/repro/batchrng.py"] = files[
            "src/repro/batchrng.py"
        ].replace("np.random.SeedSequence(entropy)",
                  "np.random.SeedSequence()")
        diagnostics = run(tmp_path, files, enabled=("RL010",))
        assert codes(diagnostics) == ["RL010"]
        assert diagnostics[0].path.endswith("src/repro/fleet.py")

    def test_noqa_suppresses_the_call_site(self, tmp_path):
        files = dict(self.BUG)
        files["src/repro/sim.py"] = files["src/repro/sim.py"].replace(
            "return simulate(rng)",
            "return simulate(rng)  # repro: noqa[RL010]",
        )
        assert run(tmp_path, files, enabled=("RL010",)) == []

    def test_out_of_scope_tree_is_ignored(self, tmp_path):
        files = {
            f"experiments/{p.split('/')[-1]}": s for p, s in self.BUG.items()
        }
        root = make_tree(tmp_path, files)
        config = LintConfig(scope="src/repro", enabled=("RL010",))
        assert lint_paths([root], config) == []


class TestParallelSafety:
    """RL011/RL012: what pool-reachable code may not touch."""

    BUG = {
        "src/repro/workers.py": """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            _CACHE = {}
            _LOCK = threading.Lock()


            def work(plan):
                _CACHE[plan] = 1
                with _LOCK:
                    pass
                return plan


            def launch(plans):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, plans))
        """,
    }

    def test_pool_mapped_worker_is_flagged(self, tmp_path):
        diagnostics = run(
            tmp_path, self.BUG, enabled=("RL011", "RL012")
        )
        assert codes(diagnostics) == ["RL011", "RL012"]
        assert "_CACHE" in diagnostics[0].message
        assert "_LOCK" in diagnostics[1].message

    def test_executor_suffix_root_is_discovered(self, tmp_path):
        files = {
            "src/repro/exec/run.py": """
                from repro.state import bump


                def execute_plan(plan):
                    return bump(plan)
            """,
            "src/repro/state.py": """
                _COUNTS = {}


                def bump(plan):
                    _COUNTS[plan] = _COUNTS.get(plan, 0) + 1
                    return _COUNTS[plan]
            """,
        }
        diagnostics = run(tmp_path, files, enabled=("RL011",))
        assert codes(diagnostics) == ["RL011"]
        assert diagnostics[0].path.endswith("src/repro/state.py")

    def test_per_call_state_is_clean(self, tmp_path):
        files = {
            "src/repro/workers.py": """
                import threading
                from concurrent.futures import ProcessPoolExecutor


                def work(plan):
                    cache = {}
                    cache[plan] = 1
                    lock = threading.Lock()
                    with lock:
                        pass
                    return plan


                def launch(plans):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(work, plans))
            """,
        }
        assert run(tmp_path, files, enabled=("RL011", "RL012")) == []

    def test_unreachable_mutation_is_clean(self, tmp_path):
        files = {
            "src/repro/tooling.py": """
                _SEEN = []


                def record(item):
                    _SEEN.append(item)
            """,
        }
        assert run(tmp_path, files, enabled=("RL011", "RL012")) == []

    def test_noqa_suppresses_both(self, tmp_path):
        files = dict(self.BUG)
        files["src/repro/workers.py"] = (
            files["src/repro/workers.py"]
            .replace("_CACHE[plan] = 1", "_CACHE[plan] = 1  # repro: noqa[RL011]")
            .replace("with _LOCK:", "with _LOCK:  # repro: noqa[RL012]")
        )
        assert run(tmp_path, files, enabled=("RL011", "RL012")) == []


class TestUnorderedFolds:
    """RL013: platform-ordered iteration feeding results."""

    def test_unsorted_glob_into_manifest_is_flagged(self, tmp_path):
        files = {
            "src/repro/manifest.py": """
                import glob
                import json


                def build_manifest():
                    files = glob.glob("results/*.json")
                    return json.dumps(files)
            """,
        }
        diagnostics = run(tmp_path, files, enabled=("RL013",))
        assert codes(diagnostics) == ["RL013"]
        assert "glob.glob" in diagnostics[0].message

    def test_set_fold_is_flagged(self, tmp_path):
        files = {
            "src/repro/fold.py": """
                def fold(values):
                    total = []
                    for v in {1, 2, 3}:
                        total.append(v)
                    return total
            """,
        }
        diagnostics = run(tmp_path, files, enabled=("RL013",))
        assert codes(diagnostics) == ["RL013"]

    def test_sorted_wrapping_is_clean(self, tmp_path):
        files = {
            "src/repro/manifest.py": """
                import glob


                def build_manifest():
                    return sorted(glob.glob("results/*.json"))
            """,
        }
        assert run(tmp_path, files, enabled=("RL013",)) == []

    def test_order_insensitive_set_read_is_clean(self, tmp_path):
        files = {
            "src/repro/scan.py": """
                def any_even(values):
                    for v in {1, 2, 3}:
                        if v % 2 == 0:
                            return True
                    return False
            """,
        }
        assert run(tmp_path, files, enabled=("RL013",)) == []

    def test_noqa_suppresses(self, tmp_path):
        files = {
            "src/repro/manifest.py": """
                import glob


                def build_manifest():
                    return glob.glob("x/*")  # repro: noqa[RL013]
            """,
        }
        assert run(tmp_path, files, enabled=("RL013",)) == []


class TestDeadNoqa:
    """RL014: suppressions must stay tied to a live finding."""

    def test_dead_scoped_suppression_is_flagged(self, tmp_path):
        files = {
            "src/repro/stale.py": (
                "import os\n\nvalue = os.getpid()  # repro: noqa[RL001]\n"
            ),
        }
        diagnostics = run(tmp_path, files, enabled=("RL001", "RL014"))
        assert codes(diagnostics) == ["RL014"]
        assert "RL001" in diagnostics[0].message

    def test_live_suppression_is_not_flagged(self, tmp_path):
        files = {
            "src/repro/live.py": (
                "import time\n\n"
                "started = time.time()  # repro: noqa[RL001]\n"
            ),
        }
        assert run(tmp_path, files, enabled=("RL001", "RL014")) == []

    def test_blanket_noqa_on_clean_line_is_flagged(self, tmp_path):
        files = {
            "src/repro/blanket.py": "value = 1  # repro: noqa\n",
        }
        diagnostics = run(tmp_path, files, enabled=("RL001", "RL014"))
        assert codes(diagnostics) == ["RL014"]

    def test_partially_dead_list_reports_the_dead_code(self, tmp_path):
        files = {
            "src/repro/partial.py": (
                "import time\n\n"
                "started = time.time()  # repro: noqa[RL001, RL005]\n"
            ),
        }
        diagnostics = run(tmp_path, files, enabled=("RL001", "RL005", "RL014"))
        assert codes(diagnostics) == ["RL014"]
        assert "RL005" in diagnostics[0].message
        assert "RL001" not in diagnostics[0].message.replace(
            "RL001, RL005", ""
        )

    def test_rl014_is_not_self_suppressible(self, tmp_path):
        files = {
            "src/repro/meta.py": "value = 1  # repro: noqa[RL014]\n",
        }
        diagnostics = run(tmp_path, files, enabled=("RL014",))
        assert codes(diagnostics) == ["RL014"]

    def test_noqa_text_inside_string_is_ignored(self, tmp_path):
        # tokenize-based scanning: a string *mentioning* the marker is
        # neither a suppression nor a dead-suppression candidate.
        files = {
            "src/repro/doc.py": (
                'EXAMPLE = "x = 1  # repro: noqa[RL001]"\n'
            ),
        }
        assert run(tmp_path, files, enabled=("RL001", "RL014")) == []


class TestSarifOutput:
    def test_sarif_log_matches_2_1_0_shape(self, tmp_path):
        files = {
            "src/repro/dirty.py": "import random\n\nr = random.Random()\n",
        }
        root = make_tree(tmp_path, files)
        config = LintConfig(scope="src/repro", enabled=("RL002",))
        diagnostics = lint_paths([root], config)
        assert diagnostics, "fixture must produce findings"

        document = to_sarif(diagnostics)
        assert document["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in document["$schema"]
        (sarif_run,) = document["runs"]
        driver = sarif_run["tool"]["driver"]
        assert driver["name"] == "repro.lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for required in ("RL010", "RL011", "RL012", "RL013", "RL014"):
            assert required in rule_ids
        for result in sarif_run["results"]:
            assert result["ruleId"] in rule_ids
            assert driver["rules"][result["ruleIndex"]]["id"] == \
                result["ruleId"]
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1
        # The log must round-trip through JSON unchanged (plain data).
        assert json.loads(json.dumps(document)) == document
