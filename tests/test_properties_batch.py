"""Property tests: batched cache policies == scalar policies, always.

The batched formulations in :mod:`repro.cache.batched` claim to
replicate their scalar counterparts *decision-for-decision* — the same
hits, the same victims, the same declines, in the same tie-break order.
Hypothesis drives both sides of that claim with random fleets over
random request strings:

* every client column of a batched policy behaves exactly like a
  private scalar policy fed the same requests;
* tie-heavy oracles (constant probability, single disk) force the
  tie-break paths: P/PIX must evict the *oldest* minimum-value entry,
  LIX/L must prefer the earliest disk chain — exactly like the scalar
  min-heap and chain walk.

Decision equality on every step subsumes evict-score agreement: a
diverging score would pick a diverging victim somewhere in the stream.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import PolicyContext
from repro.cache.batched import (
    FREE,
    NO_ADMIT,
    BatchedOracles,
    make_batched_policy,
)
from repro.cache.registry import make_policy

PAGE_COUNT = 18
NUM_DISKS = 3
POLICIES = ("lru", "p", "pix", "lix", "l")


def oracle_arrays(*, tie_breaking=False):
    """Matching scalar/batched oracle pairs over PAGE_COUNT pages.

    ``tie_breaking=True`` collapses every score to a constant and every
    page onto one disk, so victim selection is decided purely by the
    tie-break rules under test.
    """
    pages = np.arange(PAGE_COUNT)
    if tie_breaking:
        probability = np.full(PAGE_COUNT, 1.0 / PAGE_COUNT)
        frequency = np.full(PAGE_COUNT, 0.125)
        disk = np.zeros(PAGE_COUNT, dtype=np.int64)
    else:
        probability = (PAGE_COUNT - pages) / 300.0
        frequency = 0.05 + 0.01 * (pages % 5)
        disk = pages % NUM_DISKS
    scalar = PolicyContext(
        probability=lambda page: float(probability[page]),
        frequency=lambda page: float(frequency[page]),
        disk_of=lambda page: int(disk[page]),
        num_disks=NUM_DISKS,
    )
    batched = BatchedOracles(
        probability=probability.astype(np.float64),
        frequency=frequency.astype(np.float64)[None, :],
        disk=disk[None, :],
        num_disks=NUM_DISKS,
    )
    return scalar, batched


def drive_both(name, capacity, request_matrix, *, tie_breaking=False):
    """Advance a batched fleet and per-client scalar twins in lockstep.

    ``request_matrix`` is ``(steps, clients)``.  Asserts hit columns and
    victim columns agree on every step, translating the scalar
    vocabulary (None / page / victim) into the batched sentinels.
    """
    steps, clients = request_matrix.shape
    scalar_context, batched_oracles = oracle_arrays(
        tie_breaking=tie_breaking
    )
    batched = make_batched_policy(name, clients, capacity, batched_oracles)
    assert batched is not None
    twins = [make_policy(name, capacity, scalar_context)
             for _ in range(clients)]

    time = 0.0
    for step in range(steps):
        time += 2.0
        pages = request_matrix[step]
        now = np.full(clients, time)
        hits = batched.lookup(pages, now)
        scalar_hits = np.array([
            twin.lookup(int(page), time)
            for twin, page in zip(twins, pages)
        ])
        assert (hits == scalar_hits).all(), (
            f"{name}: hit column diverged at step {step}"
        )
        victims = batched.admit(pages, now, ~hits)
        for client, twin in enumerate(twins):
            if hits[client]:
                assert victims[client] == NO_ADMIT
                continue
            scalar_victim = twin.admit(int(pages[client]), time)
            expected = FREE if scalar_victim is None else scalar_victim
            assert victims[client] == expected, (
                f"{name}: victim diverged at step {step} for "
                f"client {client}: batched {victims[client]}, "
                f"scalar {expected}"
            )
        assert (batched.count <= capacity).all()


request_matrices = st.integers(min_value=1, max_value=5).flatmap(
    lambda clients: st.lists(
        st.lists(
            st.integers(min_value=0, max_value=PAGE_COUNT - 1),
            min_size=clients, max_size=clients,
        ),
        min_size=1, max_size=60,
    ).map(lambda rows: np.array(rows, dtype=np.int64))
)


class TestBatchedEqualsScalar:
    @given(
        st.sampled_from(POLICIES),
        st.integers(min_value=1, max_value=8),
        request_matrices,
    )
    @settings(max_examples=120, deadline=None)
    def test_decisions_identical(self, name, capacity, matrix):
        drive_both(name, capacity, matrix)

    @given(
        st.sampled_from(("p", "pix")),
        st.integers(min_value=1, max_value=6),
        request_matrices,
    )
    @settings(max_examples=60, deadline=None)
    def test_value_ties_break_by_insertion_order(self, name, capacity,
                                                 matrix):
        # Constant probability: every resident entry shares the minimum
        # value, so the victim must be the oldest insertion — the scalar
        # heap's (value, stamp) order against the batched masked argmin.
        drive_both(name, capacity, matrix, tie_breaking=True)

    @given(
        st.sampled_from(("lix", "l", "lru")),
        st.integers(min_value=1, max_value=6),
        request_matrices,
    )
    @settings(max_examples=60, deadline=None)
    def test_chain_ties_break_by_disk_order(self, name, capacity, matrix):
        # One disk, constant frequency: every candidate sits in chain 0
        # and LIX's inter-access estimator alone picks the victim.
        drive_both(name, capacity, matrix, tie_breaking=True)


class TestBatchedSentinels:
    def test_masked_clients_never_admit(self):
        _, oracles = oracle_arrays()
        batched = make_batched_policy("lru", 3, 2, oracles)
        pages = np.array([0, 1, 2])
        now = np.ones(3)
        victims = batched.admit(pages, now, np.array([True, False, True]))
        assert victims[1] == NO_ADMIT
        assert victims[0] == FREE and victims[2] == FREE
        assert batched.count.tolist() == [1, 0, 1]

    def test_decline_returns_the_offered_page(self):
        # P with a full cache of hotter pages declines a colder one.
        _, oracles = oracle_arrays()
        batched = make_batched_policy("p", 1, 2, oracles)
        now = np.ones(1)
        for page in (0, 1):  # hottest pages (descending probability)
            batched.admit(np.array([page]), now, np.array([True]))
        victims = batched.admit(np.array([17]), now, np.array([True]))
        assert victims[0] == 17  # declined: the page itself comes back
        assert 17 not in batched.slots[0]


# ---------------------------------------------------------------------------
# The vectorized single-frequency tuner == the scalar fast tuner
# ---------------------------------------------------------------------------

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.trace import MemorySink, Tracer
from repro.population import (
    Choice,
    PopulationSpec,
    SegmentSpec,
    UniformInt,
    run_population,
)
from repro.population.run import fold_results  # noqa: F401  (import guard)


def _channel_config(channels, policy, cache_size, retune_cost, think_time,
                    seed):
    return ExperimentConfig(
        disk_sizes=(20, 60, 80),
        delta=2,
        cache_size=cache_size,
        policy=policy,
        access_range=60,
        region_size=6,
        num_requests=120,
        think_time=think_time,
        seed=seed,
        channels=channels,
        retune_cost=retune_cost,
    )


class TestMultiChannelTunerEquivalence:
    """Batched tuner decisions == scalar ``_run_trace_multichannel``.

    Trace-stream equality pins the retune *instants* and the
    from/to channel fields; sample equality pins the retune *costs*
    (waits include the switch penalty); the ``retunes`` counter pins
    the measured-phase accounting.
    """

    @given(
        st.sampled_from((1, 2, 4)),
        st.sampled_from(("LRU", "LIX", "L", "P", "PIX")),
        st.integers(min_value=1, max_value=16),
        st.sampled_from((0.0, 1.0, 2.5)),
        st.sampled_from((0.0, 1.0, 2.5)),
        st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_fast_per_client(self, channels, policy,
                                          cache_size, retune_cost,
                                          think_time, seed):
        config = _channel_config(
            channels, policy, cache_size, retune_cost, think_time, seed
        )
        streams = {}
        results = {}
        for engine in ("fast", "batch"):
            sink = MemorySink()
            results[engine] = run_experiment(
                config, engine=engine, collect_responses=True,
                tracer=Tracer(sink),
            )
            streams[engine] = [
                (r.time, r.kind, r.fields) for r in sink.records
            ]
        fast, batch = results["fast"], results["batch"]
        assert batch.samples == fast.samples
        assert batch.mean_response_time == fast.mean_response_time
        assert batch.hit_rate == fast.hit_rate
        assert batch.retunes == fast.retunes
        assert streams["batch"] == streams["fast"]
        if channels > 1:
            retune_records = [
                r for r in streams["batch"] if r[1] == "client.retune"
            ]
            assert batch.retunes <= sum(
                1 for r in streams["batch"] if r[1] == "client.retune"
            )
            for _, _, fields in retune_records:
                assert fields["from_channel"] != fields["to_channel"]


# ---------------------------------------------------------------------------
# Sub-segmented heterogeneous fleets == the per-client plan path
# ---------------------------------------------------------------------------

class TestSubSegmentationIdentity:
    @given(
        st.sampled_from((1, 2)),
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=10, deadline=None)
    def test_fleet_matches_population(self, channels, clients, seed):
        from repro.batch.fleet import run_fleet

        spec = PopulationSpec(
            name="prop-subseg",
            base=_channel_config(channels, "LIX", 8, 1.0, 1.0, 3),
            seed=seed,
            engine="batch",
            segments=(
                SegmentSpec(
                    "varied", clients,
                    cache_size=UniformInt(2, 10),
                    policy=Choice(("LRU", "LIX")),
                ),
            ),
        )
        fleet = run_fleet(spec, kernel="never")
        population = run_population(spec)

        def strip(document):
            document.pop("total_wall_seconds")
            return document

        assert strip(fleet.overall.snapshot()) == \
            strip(population.overall.snapshot())
