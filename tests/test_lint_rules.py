"""Per-rule fixtures for repro.lint: true positive, true negative, and
``# repro: noqa[CODE]`` suppression for each of RL001-RL006."""

from __future__ import annotations

import textwrap

from repro.lint import LintConfig, lint_paths, lint_source

#: A path inside the default determinism scope (src/repro).
IN_SCOPE = "src/repro/somemodule.py"
#: A path outside it (test code).
OUT_OF_SCOPE = "tests/test_something.py"


def run(source, path=IN_SCOPE, config=None):
    return lint_source(path, textwrap.dedent(source),
                       config=config or LintConfig())


def codes(diagnostics):
    return [d.code for d in diagnostics]


# ---------------------------------------------------------------------------
# RL001 — wall-clock reads
# ---------------------------------------------------------------------------
class TestRL001WallClock:
    def test_true_positive_direct_and_aliased(self):
        diagnostics = run(
            """
            import time
            import time as _time
            from time import perf_counter

            a = time.time()
            b = _time.perf_counter()
            c = perf_counter()
            """
        )
        assert codes(diagnostics) == ["RL001", "RL001", "RL001"]
        assert "wall-clock" in diagnostics[0].message

    def test_true_positive_datetime(self):
        diagnostics = run(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        )
        assert codes(diagnostics) == ["RL001"]

    def test_true_negative_simulated_clock(self):
        assert run(
            """
            def step(kernel):
                return kernel.now + 1.5  # simulated, not wall time
            """
        ) == []

    def test_true_negative_out_of_scope(self):
        assert run(
            """
            import time
            a = time.time()
            """,
            path=OUT_OF_SCOPE,
        ) == []

    def test_true_negative_allowlisted_file(self):
        config = LintConfig(allow={"RL001": ("src/repro/somemodule.py",)})
        assert run(
            """
            import time
            a = time.time()
            """,
            config=config,
        ) == []

    def test_noqa_suppression(self):
        assert run(
            """
            import time
            a = time.time()  # repro: noqa[RL001]
            """
        ) == []


# ---------------------------------------------------------------------------
# RL002 — unmanaged RNGs
# ---------------------------------------------------------------------------
class TestRL002UnmanagedRandom:
    def test_true_positive_random_import(self):
        diagnostics = run("import random\n")
        assert codes(diagnostics) == ["RL002"]
        line = diagnostics[0]
        assert (line.line, line.col) == (1, 1)

    def test_true_positive_numpy_calls(self):
        diagnostics = run(
            """
            import numpy as np
            rng = np.random.default_rng(7)
            np.random.seed(0)
            """
        )
        assert codes(diagnostics) == ["RL002", "RL002"]

    def test_true_positive_from_numpy_random(self):
        diagnostics = run("from numpy.random import default_rng\n")
        assert codes(diagnostics) == ["RL002"]

    def test_true_negative_stream_use(self):
        assert run(
            """
            import numpy as np

            def sample(rng: np.random.Generator, size: int):
                # Annotations and draws from an injected generator are
                # exactly the sanctioned pattern.
                return rng.integers(0, 10, size=size)
            """
        ) == []

    def test_true_negative_out_of_scope(self):
        assert run("import random\n", path=OUT_OF_SCOPE) == []

    def test_true_negative_allowlisted_rng_module(self):
        # The default config allowlists the stream factory itself.
        assert run(
            """
            import numpy as np
            gen = np.random.Generator(np.random.PCG64(1))
            """,
            path="src/repro/sim/rng.py",
        ) == []

    def test_noqa_suppression(self):
        assert run("import random  # repro: noqa[RL002]\n") == []


# ---------------------------------------------------------------------------
# RL003 — float equality on simulation-time expressions
# ---------------------------------------------------------------------------
class TestRL003FloatTimeEquality:
    def test_true_positive_now_and_arrival(self):
        diagnostics = run(
            """
            def poll(self, now, event):
                if now == 1.5:
                    return True
                return self.next_arrival(0) != 0.0
            """
        )
        assert codes(diagnostics) == ["RL003", "RL003"]
        assert "isclose" in diagnostics[0].message

    def test_true_positive_negative_literal(self):
        diagnostics = run("flag = start_time == -1.0\n")
        assert codes(diagnostics) == ["RL003"]

    def test_true_negative_non_time_name(self):
        assert run(
            """
            def classify(rate, noise):
                return rate == 0.0 or noise != 1.0
            """
        ) == []

    def test_true_negative_no_float_literal(self):
        assert run(
            """
            def same(self, now, then):
                return now == then or now == 3
            """
        ) == []

    def test_true_negative_ordering_comparison(self):
        assert run("done = now >= 10.0\n") == []

    def test_noqa_suppression(self):
        assert run(
            "sentinel = now == -1.0  # repro: noqa[RL003]\n"
        ) == []


# ---------------------------------------------------------------------------
# RL004 — mutable default arguments
# ---------------------------------------------------------------------------
class TestRL004MutableDefault:
    def test_true_positive_display_and_call(self):
        diagnostics = run(
            """
            def gather(pages=[], index={}):
                pages.append(1)

            def build(*, slots=list()):
                return slots
            """,
            path=OUT_OF_SCOPE,  # unscoped rule: fires everywhere
        )
        assert codes(diagnostics) == ["RL004", "RL004", "RL004"]

    def test_true_negative_none_sentinel(self):
        assert run(
            """
            def gather(*, pages=None, capacity=8, label=""):
                pages = [] if pages is None else pages
                return pages
            """
        ) == []

    def test_noqa_suppression(self):
        assert run(
            "def gather(pages=[]):  # repro: noqa[RL004]\n    return pages\n"
        ) == []


# ---------------------------------------------------------------------------
# RL005 — bare / over-broad except
# ---------------------------------------------------------------------------
class TestRL005BroadExcept:
    def test_true_positive_bare_and_broad(self):
        diagnostics = run(
            """
            try:
                step()
            except:
                pass

            try:
                step()
            except Exception:
                result = None

            try:
                step()
            except (ValueError, BaseException):
                result = None
            """
        )
        assert codes(diagnostics) == ["RL005", "RL005", "RL005"]
        assert "swallow" in diagnostics[0].message

    def test_true_negative_specific_exception(self):
        assert run(
            """
            try:
                step()
            except ValueError:
                result = None
            """
        ) == []

    def test_true_negative_reraise(self):
        assert run(
            """
            try:
                step()
            except Exception:
                log("simulation step failed")
                raise
            """
        ) == []

    def test_noqa_suppression(self):
        assert run(
            """
            try:
                step()
            except Exception:  # repro: noqa[RL005]
                pass
            """
        ) == []


# ---------------------------------------------------------------------------
# RL006 — registered policies implement the cache protocol
# ---------------------------------------------------------------------------
BASE_MODULE = """
from abc import ABC, abstractmethod


class CachePolicy(ABC):
    @abstractmethod
    def lookup(self, page, now): ...

    @abstractmethod
    def admit(self, page, now): ...

    @abstractmethod
    def discard(self, page): ...

    def shared_helper(self):
        return 0
"""

GOOD_MODULE = """
from cache.base import CachePolicy


class GoodPolicy(CachePolicy):
    def lookup(self, page, now):
        return False

    def admit(self, page, now):
        return None

    def discard(self, page):
        return False


class InheritingPolicy(GoodPolicy):
    def admit(self, page, now):
        return page
"""

BAD_MODULE = """
from cache.base import CachePolicy


class BadPolicy(CachePolicy):
    def lookup(self, page, now):
        return False
"""


def _write_cache_package(tmp_path, registry_source):
    package = tmp_path / "cache"
    package.mkdir()
    (package / "base.py").write_text(BASE_MODULE)
    (package / "good.py").write_text(GOOD_MODULE)
    (package / "bad.py").write_text(BAD_MODULE)
    (package / "registry.py").write_text(textwrap.dedent(registry_source))
    return package


class TestRL006PolicyProtocol:
    def test_true_positive_missing_methods(self, tmp_path):
        package = _write_cache_package(
            tmp_path,
            """
            from cache.bad import BadPolicy
            from cache.good import GoodPolicy

            _FACTORIES = {
                "good": GoodPolicy,
                "bad": BadPolicy,
                "bad-lambda": lambda capacity, context: BadPolicy(capacity),
            }
            """,
        )
        diagnostics = lint_paths([package], LintConfig(scope=""))
        assert codes(diagnostics) == ["RL006", "RL006"]
        assert all(d.path.endswith("cache/registry.py") for d in diagnostics)
        assert "admit" in diagnostics[0].message
        assert "discard" in diagnostics[0].message
        assert "lookup" not in diagnostics[0].message.split(":")[-1]

    def test_true_negative_complete_and_inherited(self, tmp_path):
        package = _write_cache_package(
            tmp_path,
            """
            from cache.good import GoodPolicy, InheritingPolicy

            _FACTORIES = {
                "good": GoodPolicy,
                "heir": InheritingPolicy,
                "lam": lambda capacity, context: GoodPolicy(),
            }
            """,
        )
        assert lint_paths([package], LintConfig(scope="")) == []

    def test_noqa_suppression(self, tmp_path):
        package = _write_cache_package(
            tmp_path,
            """
            from cache.bad import BadPolicy

            _FACTORIES = {
                "bad": BadPolicy,  # repro: noqa[RL006]
            }
            """,
        )
        assert lint_paths([package], LintConfig(scope="")) == []

    def test_sibling_module_loaded_on_demand(self, tmp_path):
        # Lint ONLY base+registry: the rule follows the registry's
        # import to bad.py on disk and still finds the gap.
        package = _write_cache_package(
            tmp_path,
            """
            from cache.bad import BadPolicy

            _FACTORIES = {"bad": BadPolicy}
            """,
        )
        diagnostics = lint_paths(
            [package / "base.py", package / "registry.py"],
            LintConfig(scope=""),
        )
        assert codes(diagnostics) == ["RL006"]


# ---------------------------------------------------------------------------
# RL007 — picklable plans
# ---------------------------------------------------------------------------
class TestRL007PicklablePlan:
    def test_true_positive_lambda_field(self):
        diagnostics = run(
            """
            from repro.experiments.config import ExperimentConfig

            config = ExperimentConfig(label_fn=lambda c: c.describe())
            """
        )
        assert codes(diagnostics) == ["RL007"]
        assert "lambda" in diagnostics[0].message
        assert "pickle" in diagnostics[0].message

    def test_true_positive_nested_closure(self):
        diagnostics = run(
            """
            from repro.exec.plan import RunPlan

            def build(config):
                def score(result):
                    return result.mean_response_time
                return RunPlan(config=config, scorer=score)
            """
        )
        assert codes(diagnostics) == ["RL007"]
        assert "locally-defined function 'score'" in diagnostics[0].message

    def test_true_positive_open_handle_via_with_(self):
        diagnostics = run(
            """
            def widen(config, path):
                return config.with_(sink=open(path, "w"))
            """
        )
        assert codes(diagnostics) == ["RL007"]
        assert "open file handle" in diagnostics[0].message

    def test_true_positive_dataclasses_replace(self):
        diagnostics = run(
            """
            import dataclasses

            def tweak(plan):
                return dataclasses.replace(plan, picker=lambda r: r)
            """
        )
        assert codes(diagnostics) == ["RL007"]

    def test_true_negative_plain_fields(self):
        assert run(
            """
            from repro.experiments.config import ExperimentConfig

            def module_hook(result):
                return result.hit_rate

            config = ExperimentConfig(delta=3, seed=7)
            other = config.with_(noise=0.25)
            REGISTRY = {"hook": module_hook}
            """
        ) == []

    def test_true_negative_lambda_elsewhere(self):
        # Lambdas are fine outside plan construction (sorting keys etc).
        assert run(
            """
            rows = sorted([3, 1, 2], key=lambda value: -value)
            """
        ) == []

    def test_true_negative_out_of_scope(self):
        source = """
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(label_fn=lambda c: c.describe())
        """
        assert run(source, path=OUT_OF_SCOPE) == []

    def test_noqa_suppression(self):
        assert run(
            """
            from repro.exec.plan import RunPlan

            plan = RunPlan(config=None, scorer=lambda r: r)  # repro: noqa[RL007]
            """
        ) == []


# ---------------------------------------------------------------------------
# Engine behaviour shared by all rules
# ---------------------------------------------------------------------------
class TestEngine:
    def test_bare_noqa_suppresses_every_code(self):
        assert run("import random  # repro: noqa\n") == []

    def test_noqa_for_other_code_does_not_suppress(self):
        diagnostics = run("import random  # repro: noqa[RL001]\n")
        assert codes(diagnostics) == ["RL002"]

    def test_disabled_rule_does_not_fire(self):
        config = LintConfig(enabled=("RL001",))
        assert run("import random\n", config=config) == []

    def test_syntax_error_becomes_diagnostic(self):
        diagnostics = run("def broken(:\n")
        assert codes(diagnostics) == ["RL000"]

    def test_diagnostic_format_contract(self):
        diagnostic = run("import random\n")[0]
        rendered = diagnostic.format()
        assert rendered.startswith(f"{IN_SCOPE}:1:1 RL002 ")

    def test_diagnostics_sorted_by_location(self):
        diagnostics = run(
            """
            import random

            def f(x=[]):
                try:
                    pass
                except:
                    pass
            """
        )
        assert [d.line for d in diagnostics] == sorted(
            d.line for d in diagnostics
        )


# ---------------------------------------------------------------------------
# RL008 — keyword-only options
# ---------------------------------------------------------------------------
class TestRL008KeywordOnlyOptions:
    def test_true_positive_two_positional_options(self):
        diagnostics = run(
            """
            def run_study(config, engine="fast", jobs=1):
                return config, engine, jobs
            """
        )
        assert codes(diagnostics) == ["RL008"]
        message = diagnostics[0].message
        assert "'run_study'" in message
        assert "engine, jobs" in message
        assert "'*' marker" in message

    def test_true_negative_keyword_only_options(self):
        assert run(
            """
            def run_study(config, *, engine="fast", jobs=1):
                return config, engine, jobs
            """
        ) == []

    def test_true_negative_single_option(self):
        # One defaulted parameter carries no ordering ambiguity.
        assert run(
            """
            def run_study(config, engine="fast"):
                return config, engine
            """
        ) == []

    def test_true_negative_private_function(self):
        assert run(
            """
            def _helper(config, engine="fast", jobs=1):
                return config, engine, jobs
            """
        ) == []

    def test_true_negative_method(self):
        # Methods keep natural positional use (stats.add, sim.run).
        assert run(
            """
            class Runner:
                def run(self, engine="fast", jobs=1):
                    return engine, jobs
            """
        ) == []

    def test_true_positive_multichannel_builder(self):
        # The 1.2 channel builders are exactly the shape RL008 exists
        # for: channel options drifting positional would let
        # ``build_program(layout, 2, "bandwidth")`` silently swap
        # strategy and retune cost in a later release.
        diagnostics = run(
            """
            def build_program(layout, channels=2, assignment="conflict"):
                return layout, channels, assignment
            """
        )
        assert codes(diagnostics) == ["RL008"]
        assert "channels, assignment" in diagnostics[0].message

    def test_true_negative_multichannel_builder_keyword_only(self):
        assert run(
            """
            def build_program(layout, num_channels, *, assignment="conflict",
                              retune_cost=1.0):
                return layout, num_channels, assignment, retune_cost
            """
        ) == []

    def test_true_negative_nested_function(self):
        assert run(
            """
            def outer():
                def inner(engine="fast", jobs=1):
                    return engine, jobs
                return inner
            """
        ) == []

    def test_out_of_scope_path_exempt(self):
        assert run(
            """
            def run_study(config, engine="fast", jobs=1):
                return config, engine, jobs
            """,
            path=OUT_OF_SCOPE,
        ) == []

    def test_noqa_suppresses(self):
        assert run(
            """
            def run_study(config, engine="fast", jobs=1):  # repro: noqa[RL008]
                return config, engine, jobs
            """
        ) == []
