"""Property tests (hypothesis) for the extension engines' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.prefetch import PrefetchEngine
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program
from repro.query.engine import fetch_opportunistic, fetch_sequential
from repro.updates.engine import VolatileEngine
from repro.updates.process import PeriodicUpdateModel
from repro.cache.base import PolicyContext
from repro.cache.lru import LRUPolicy
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


@st.composite
def small_worlds(draw):
    """A random small broadcast world and a request string over it."""
    sizes = draw(
        st.lists(st.integers(min_value=2, max_value=8), min_size=1, max_size=3)
    )
    delta = draw(st.integers(min_value=0, max_value=3))
    layout = DiskLayout.from_delta(sizes, delta)
    total = layout.total_pages
    requests = draw(
        st.lists(
            st.integers(min_value=0, max_value=total - 1),
            min_size=1,
            max_size=40,
        )
    )
    return layout, requests


class TestPrefetchProperties:
    @given(small_worlds(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_capacity_and_response_bounds(self, world, capacity):
        layout, requests = world
        schedule = multidisk_program(layout)
        mapping = LogicalPhysicalMapping(layout)
        total = layout.total_pages
        engine = PrefetchEngine(
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            probability=lambda page: (total - page) / (total * total),
            cache_capacity=capacity,
            think_time=1.5,
        )
        outcome = engine.run_trace(RequestTrace.from_pages(requests))
        assert len(engine.resident_pages) <= capacity
        assert outcome.response.minimum >= 0.0 or outcome.response.count == 0
        worst = max(
            schedule.worst_case_delay(mapping.to_physical(page))
            for page in set(requests)
        )
        if outcome.response.count:
            assert outcome.response.maximum <= worst + 1.0

    @given(small_worlds())
    @settings(max_examples=60, deadline=None)
    def test_accounting(self, world):
        layout, requests = world
        schedule = multidisk_program(layout)
        mapping = LogicalPhysicalMapping(layout)
        total = layout.total_pages
        engine = PrefetchEngine(
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            probability=lambda page: (total - page) / (total * total),
            cache_capacity=3,
            think_time=2.0,
        )
        outcome = engine.run_trace(RequestTrace.from_pages(requests))
        counters = outcome.counters
        assert counters.hits + counters.misses == len(requests)


class TestVolatileProperties:
    @given(
        small_worlds(),
        st.floats(min_value=5.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_stale_reads_bounded_by_hits(self, world, interval):
        layout, requests = world
        schedule = multidisk_program(layout)
        mapping = LogicalPhysicalMapping(layout)
        import numpy as np

        engine = VolatileEngine(
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            cache=LRUPolicy(3, PolicyContext()),
            updates=PeriodicUpdateModel.uniform(
                interval, layout.total_pages, rng=np.random.default_rng(1)
            ),
            think_time=2.0,
        )
        outcome = engine.run_trace(RequestTrace.from_pages(requests))
        assert outcome.stale_reads <= outcome.counters.hits
        assert 0.0 <= outcome.stale_fraction <= 1.0

    @given(small_worlds())
    @settings(max_examples=40, deadline=None)
    def test_reports_never_increase_staleness(self, world):
        import numpy as np

        layout, requests = world
        schedule = multidisk_program(layout)
        mapping = LogicalPhysicalMapping(layout)
        outcomes = []
        for report_interval in (None, 10.0):
            engine = VolatileEngine(
                schedule=schedule,
                mapping=mapping,
                layout=layout,
                cache=LRUPolicy(3, PolicyContext()),
                updates=PeriodicUpdateModel.uniform(
                    40.0, layout.total_pages, rng=np.random.default_rng(1)
                ),
                think_time=2.0,
                report_interval=report_interval,
            )
            outcomes.append(
                engine.run_trace(RequestTrace.from_pages(requests))
            )
        without, with_reports = outcomes
        assert with_reports.stale_reads <= without.stale_reads + 1


class TestQueryProperties:
    @given(small_worlds())
    @settings(max_examples=80, deadline=None)
    def test_opportunistic_dominates_sequential(self, world):
        layout, requests = world
        schedule = multidisk_program(layout)
        mapping = LogicalPhysicalMapping(layout)
        pages = list(dict.fromkeys(requests))[:6]
        seq = fetch_sequential(schedule, mapping, pages, start=0.7)
        opp = fetch_opportunistic(schedule, mapping, pages, start=0.7)
        assert opp.makespan <= seq.makespan + 1e-9
        # Both collect exactly the requested distinct pages.
        assert sorted(p for _t, p in opp.completions) == sorted(pages)
        assert sorted(p for _t, p in seq.completions) == sorted(pages)
        # Opportunistic completions are time-ordered.
        times = [t for t, _p in opp.completions]
        assert times == sorted(times)
