"""Tests for the analytic cached-client model (cached_p_expected_delay)."""

import pytest

from repro.core.analysis import cached_p_expected_delay, multidisk_expected_delay
from repro.core.disks import DiskLayout
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.zipf import ZipfRegionDistribution


@pytest.fixture
def layout():
    return DiskLayout.from_delta((50, 200, 250), delta=3)


@pytest.fixture
def probabilities():
    return ZipfRegionDistribution(100, 10, 0.95).probability_map()


class TestCachedPExpectedDelay:
    def test_no_cache_reduces_to_plain_model(self, layout, probabilities):
        assert cached_p_expected_delay(
            layout, probabilities, cache_size=1
        ) == pytest.approx(multidisk_expected_delay(layout, probabilities))

    def test_caching_everything_gives_zero_delay(self, layout, probabilities):
        assert cached_p_expected_delay(
            layout, probabilities, cache_size=100
        ) == 0.0

    def test_larger_cache_never_hurts(self, layout, probabilities):
        delays = [
            cached_p_expected_delay(layout, probabilities, size, offset=size)
            for size in (1, 10, 25, 50)
        ]
        # Offset grows with the cache; the paper's arrangement only wins
        # when the cached pages are exactly the offset ones, and delay
        # must fall as more of the range is cached.
        assert all(b <= a + 1e-9 for a, b in zip(delays, delays[1:]))

    def test_offset_equals_cache_is_best_with_p(self, layout, probabilities):
        # §4.2/§5.3: with an idealised P cache the best broadcast shifts
        # exactly the cached pages to the slow disk.
        at_cache = cached_p_expected_delay(
            layout, probabilities, cache_size=50, offset=50
        )
        for offset in (0, 20, 80):
            assert at_cache <= cached_p_expected_delay(
                layout, probabilities, cache_size=50, offset=offset
            ) + 1e-9

    def test_negative_cache_rejected(self, layout, probabilities):
        with pytest.raises(ConfigurationError):
            cached_p_expected_delay(layout, probabilities, cache_size=-1)

    def test_predicts_simulation_at_zero_noise(self):
        layout = DiskLayout.from_delta((500, 2000, 2500), delta=3)
        probabilities = ZipfRegionDistribution(1000, 50, 0.95).probability_map()
        analytic = cached_p_expected_delay(
            layout, probabilities, cache_size=500, offset=500
        )
        config = ExperimentConfig(
            disk_sizes=(500, 2000, 2500),
            delta=3,
            cache_size=500,
            policy="P",
            offset=500,
            num_requests=6_000,
            seed=42,
        )
        measured = run_experiment(config).mean_response_time
        # Within 12%: the simulation's think-time phase correlation is
        # the only unmodelled effect.
        assert measured == pytest.approx(analytic, rel=0.12)
