"""Unit tests for the LCM chunking arithmetic (repro.core.chunks)."""

import pytest

from repro.core.chunks import EMPTY_SLOT, ChunkPlan, lcm_many
from repro.core.disks import DiskLayout
from repro.errors import ConfigurationError


class TestLcmMany:
    def test_single_value(self):
        assert lcm_many([7]) == 7

    def test_coprime_values(self):
        assert lcm_many([3, 4]) == 12

    def test_shared_factors(self):
        assert lcm_many([4, 6]) == 12

    def test_paper_example(self):
        # Figure 3 uses rel freqs 4, 2, 1 -> LCM 4.
        assert lcm_many([4, 2, 1]) == 4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            lcm_many([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            lcm_many([2, 0])


class TestFigure3Example:
    """The worked example of the paper's Figure 3.

    Three disks with rel freqs 4, 2, 1: max_chunks=4, num_chunks=(1,2,4).
    With sizes (1, 2, 4) every chunk holds exactly one page and the major
    cycle has 4 minor cycles of 3 slots each.
    """

    @pytest.fixture
    def plan(self):
        return ChunkPlan.for_layout(DiskLayout((1, 2, 4), (4, 2, 1)))

    def test_max_chunks(self, plan):
        assert plan.max_chunks == 4

    def test_num_chunks(self, plan):
        assert plan.num_chunks == (1, 2, 4)

    def test_chunk_sizes(self, plan):
        assert plan.chunk_sizes == (1, 1, 1)

    def test_minor_cycle_length(self, plan):
        assert plan.minor_cycle_length == 3

    def test_period(self, plan):
        assert plan.period == 12

    def test_no_padding(self, plan):
        assert plan.padding_slots == 0
        assert plan.utilisation == 1.0

    def test_interleave_structure(self, plan):
        # Pages: disk1={0}, disk2={1,2}, disk3={3,4,5,6}.
        # Minor cycles: (0,1,3) (0,2,4) (0,1,5) (0,2,6).
        assert plan.interleave() == [0, 1, 3, 0, 2, 4, 0, 1, 5, 0, 2, 6]


class TestPadding:
    def test_uneven_split_pads_with_empty_slots(self):
        # Disk of 3 pages split into 2 chunks -> chunk size 2, 1 pad slot.
        layout = DiskLayout((1, 3), (2, 1))
        plan = ChunkPlan.for_layout(layout)
        assert plan.chunk_sizes == (1, 2)
        assert plan.padding_slots == 1
        slots = plan.interleave()
        assert slots.count(EMPTY_SLOT) == 1

    def test_padding_preserves_fixed_chunk_length(self):
        layout = DiskLayout((2, 5), (3, 1))
        plan = ChunkPlan.for_layout(layout)
        chunks = plan.chunks_for_disk(1)
        assert len(chunks) == plan.num_chunks[1]
        assert len({len(chunk) for chunk in chunks}) == 1  # equal lengths

    def test_utilisation_accounts_padding(self):
        layout = DiskLayout((1, 3), (2, 1))
        plan = ChunkPlan.for_layout(layout)
        assert plan.utilisation == pytest.approx(1.0 - 1.0 / plan.period)

    def test_every_page_appears_rel_freq_times(self):
        layout = DiskLayout((2, 3, 7), (6, 2, 1))
        plan = ChunkPlan.for_layout(layout)
        slots = plan.interleave()
        for disk in range(layout.num_disks):
            for page in layout.pages_on_disk(disk):
                assert slots.count(page) == layout.rel_freqs[disk]

    def test_interleave_length_equals_period(self):
        layout = DiskLayout((3, 4, 5), (10, 5, 2))
        plan = ChunkPlan.for_layout(layout)
        assert len(plan.interleave()) == plan.period


class TestChunkContents:
    def test_pages_fill_chunks_in_order(self):
        layout = DiskLayout((1, 4), (2, 1))
        plan = ChunkPlan.for_layout(layout)
        chunks = plan.chunks_for_disk(1)
        assert chunks == [[1, 2], [3, 4]]

    def test_single_disk_flat_plan(self):
        layout = DiskLayout.flat(5)
        plan = ChunkPlan.for_layout(layout)
        assert plan.max_chunks == 1
        assert plan.period == 5
        assert plan.interleave() == [0, 1, 2, 3, 4]

    def test_paper_scale_d5_delta_3(self):
        # D5 <500,2000,2500> at delta 3 -> rel freqs 7,4,1, LCM 28.
        layout = DiskLayout.from_delta((500, 2000, 2500), delta=3)
        plan = ChunkPlan.for_layout(layout)
        assert layout.rel_freqs == (7, 4, 1)
        assert plan.max_chunks == 28
        assert plan.num_chunks == (4, 7, 28)
        # 500/4=125, 2000/7=285.71->286, 2500/28=89.28->90
        assert plan.chunk_sizes == (125, 286, 90)
        assert plan.period == 28 * (125 + 286 + 90)
