"""Unit tests for the fast engine and the runner."""

import pytest

from repro.cache.base import PolicyContext
from repro.cache.lru import LRUPolicy
from repro.core.disks import DiskLayout
from repro.core.programs import _flat_program as flat_program, _multidisk_program as multidisk_program
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import FastEngine
from repro.experiments.runner import run_experiment, sweep, sweep_results
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


def make_engine(slots_layout, cache_capacity=1, think=2.0, offset=0):
    layout = slots_layout
    schedule = multidisk_program(layout) if not layout.is_flat else flat_program(
        layout.total_pages
    )
    mapping = LogicalPhysicalMapping(layout, offset=offset)
    cache = LRUPolicy(cache_capacity, PolicyContext())
    return FastEngine(schedule, mapping, layout, cache, think)


class TestFastEngineTiming:
    def test_single_request_wait(self):
        # Flat 4-page disk, think 1.0: request page 2 at t=1.0, completes 3.0.
        engine = make_engine(DiskLayout.flat(4), think=1.0)
        outcome = engine.run_trace(
            RequestTrace.from_pages([2]), warmup_requests=0,
            collect_responses=True,
        )
        assert outcome.samples == [2.0]
        assert engine.now == 3.0

    def test_hit_costs_nothing(self):
        engine = make_engine(DiskLayout.flat(4), cache_capacity=2, think=1.0)
        outcome = engine.run_trace(
            RequestTrace.from_pages([2, 2]), warmup_requests=0,
            collect_responses=True,
        )
        assert outcome.samples == [2.0, 0.0]
        assert outcome.counters.hits == 1

    def test_request_at_exact_completion_misses_that_broadcast(self):
        # Page 0 completes at 1.0 each cycle of 4. Think time 1.0 puts the
        # request exactly at a completion: must wait the full period.
        engine = make_engine(DiskLayout.flat(4), think=1.0)
        outcome = engine.run_trace(
            RequestTrace.from_pages([0]), warmup_requests=0,
            collect_responses=True,
        )
        assert outcome.samples == [4.0]

    def test_clock_accumulates_think_and_wait(self):
        engine = make_engine(DiskLayout.flat(3), think=0.5)
        engine.run_trace(RequestTrace.from_pages([0, 1]), warmup_requests=0)
        # t=0.5 -> page0 completes 1.0; t=1.5 -> page1 completes 2.0.
        assert engine.now == 2.0

    def test_multidisk_fast_page_waits_less_on_average(self):
        layout = DiskLayout.from_delta((1, 7), delta=6)
        engine = make_engine(layout, think=0.9)
        hot = engine.run_trace(
            RequestTrace.from_pages([0] * 200), warmup_requests=0
        )
        engine2 = make_engine(layout, think=0.9)
        cold = engine2.run_trace(
            RequestTrace.from_pages([7] * 200), warmup_requests=0
        )
        assert hot.response.mean < cold.response.mean

    def test_warmup_until_cache_full(self):
        engine = make_engine(DiskLayout.flat(8), cache_capacity=3, think=1.0)
        outcome = engine.run_trace(
            RequestTrace.from_pages([0, 1, 2, 3, 4]),
        )
        # First requests warm the cache (3 slots); measurement starts after.
        assert outcome.warmup_requests == 3
        assert outcome.measured_requests == 2

    def test_explicit_warmup_request_count(self):
        engine = make_engine(DiskLayout.flat(8), cache_capacity=3, think=1.0)
        outcome = engine.run_trace(
            RequestTrace.from_pages([0, 1, 2, 3, 4]), warmup_requests=1
        )
        assert outcome.warmup_requests == 1
        assert outcome.measured_requests == 4

    def test_negative_think_time_rejected(self):
        layout = DiskLayout.flat(4)
        with pytest.raises(ConfigurationError):
            FastEngine(
                flat_program(4),
                LogicalPhysicalMapping(layout),
                layout,
                LRUPolicy(1, PolicyContext()),
                think_time=-1.0,
            )

    def test_flat_disk_no_cache_mean_near_half_db(self):
        config = ExperimentConfig(
            disk_sizes=(500,), delta=0, cache_size=1,
            access_range=100, region_size=10, num_requests=4000, seed=3,
        )
        result = run_experiment(config)
        assert result.mean_response_time == pytest.approx(250.0, rel=0.05)


class TestRunner:
    def test_result_fields(self, mini_config):
        result = run_experiment(mini_config)
        assert result.mean_response_time > 0
        assert 0.0 <= result.hit_rate <= 1.0
        assert result.measured_requests > 0
        assert result.schedule_period > 0
        assert 0.0 < result.schedule_utilisation <= 1.0
        assert sum(result.access_locations.values()) == pytest.approx(1.0)

    def test_summary_text(self, mini_config):
        text = run_experiment(mini_config).summary()
        assert "response=" in text and "hit_rate=" in text

    def test_deterministic_given_seed(self, mini_config):
        a = run_experiment(mini_config)
        b = run_experiment(mini_config)
        assert a.mean_response_time == b.mean_response_time

    def test_different_seed_changes_result(self, mini_config):
        a = run_experiment(mini_config)
        b = run_experiment(mini_config.with_(seed=99))
        assert a.mean_response_time != b.mean_response_time

    def test_unknown_engine_rejected(self, mini_config):
        with pytest.raises(ConfigurationError):
            run_experiment(mini_config, engine="quantum")

    def test_sweep_returns_metric_per_config(self, mini_config):
        configs = [mini_config.with_(delta=d) for d in (0, 2, 4)]
        values = sweep(configs)
        assert len(values) == 3
        assert all(value > 0 for value in values)

    def test_sweep_results_full_objects(self, mini_config):
        results = sweep_results([mini_config])
        assert results[0].config is not None

    def test_collect_responses(self, mini_config):
        result = run_experiment(mini_config, collect_responses=True)
        assert result.samples
        assert len(result.samples) == result.measured_requests
