"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedGauge,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        counter.inc(0)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        counter = Counter("hits")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0

    def test_gauge_overwrites(self):
        gauge = Gauge("response.mean")
        gauge.set(9.5)
        gauge.set(4.25)
        assert gauge.value == 4.25

    def test_time_weighted_gauge_matches_hand_computation(self):
        gauge = TimeWeightedGauge("queue", start_time=0.0, initial_value=0.0)
        gauge.set(2.0, 3.0)   # value 0 held [0, 2)
        gauge.set(6.0, 1.0)   # value 3 held [2, 6)
        # (0*2 + 3*4) / 6 = 2.0; projected to t=8: (12 + 1*2) / 8 = 1.75.
        assert gauge.mean() == 2.0
        assert gauge.mean(now=8.0) == 1.75
        assert gauge.maximum == 3.0
        assert gauge.current == 1.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.time_weighted("c") is registry.time_weighted("c")
        assert len(registry) == 3
        assert "a" in registry and "missing" not in registry
        assert registry.names() == ["a", "b", "c"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.time_weighted("x")

    def test_snapshot_flattens_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(7)
        registry.gauge("mean").set(2.5)
        queue = registry.time_weighted("queue")
        queue.set(4.0, 2.0)
        snapshot = registry.snapshot(now=8.0)
        assert snapshot == {
            "hits": 7,
            "mean": 2.5,
            # 0 held [0,4), 2 held [4,8) -> mean 1.0 projected to t=8.
            "queue": {"mean": 1.0, "max": 2.0, "current": 2.0},
        }


class TestRunnerIntegration:
    def test_run_experiment_fills_registry(self, mini_config):
        registry = MetricsRegistry()
        result = run_experiment(mini_config, metrics=registry)
        snapshot = registry.snapshot()
        assert snapshot["runs"] == 1
        assert snapshot["requests.measured"] == result.measured_requests
        assert snapshot["response.mean"] == result.mean_response_time
        assert snapshot["cache.hits"] + snapshot["cache.misses"] == (
            result.measured_requests
        )
        assert snapshot["schedule.period"] == float(result.schedule_period)

    def test_registry_accumulates_across_runs(self, mini_config):
        registry = MetricsRegistry()
        run_experiment(mini_config, metrics=registry)
        run_experiment(mini_config, metrics=registry)
        snapshot = registry.snapshot()
        assert snapshot["runs"] == 2


class TestTimeWeightedMonotonicity:
    def test_backwards_timestamp_rejected_naming_the_gauge(self):
        gauge = TimeWeightedGauge("cache.occupancy")
        gauge.set(5.0, 3.0)
        with pytest.raises(ConfigurationError, match="cache.occupancy"):
            gauge.set(4.0, 2.0)
        # The rejected sample left no trace on the accumulated signal.
        assert gauge.current == 3.0
        assert gauge.mean(10.0) == pytest.approx(1.5)

    def test_equal_timestamp_is_allowed(self):
        gauge = TimeWeightedGauge("cache.occupancy")
        gauge.set(5.0, 3.0)
        gauge.set(5.0, 4.0)  # zero-width step, last value wins
        assert gauge.current == 4.0
