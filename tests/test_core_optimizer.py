"""Unit tests for the broadcast-shaping optimiser (repro.core.optimizer)."""

import pytest

from repro.core.analysis import multidisk_expected_delay
from repro.core.disks import DiskLayout
from repro.core.optimizer import (
    ShapingResult,
    compare_presets,
    greedy_layout,
    optimize_layout,
    search_frequencies,
)
from repro.errors import ConfigurationError


def skewed_probabilities(total=100, hot=10, hot_mass=0.9):
    """``hot`` pages share ``hot_mass``; the rest share the remainder."""
    probabilities = {}
    for page in range(hot):
        probabilities[page] = hot_mass / hot
    for page in range(hot, total):
        probabilities[page] = (1.0 - hot_mass) / (total - hot)
    return probabilities


class TestOptimizeLayout:
    def test_beats_flat_for_skewed_access(self):
        probabilities = skewed_probabilities()
        result = optimize_layout(probabilities, total_pages=100, max_disks=2)
        flat = multidisk_expected_delay(
            DiskLayout.flat(100), probabilities
        )
        assert result.expected_delay < flat

    def test_flat_is_optimal_for_uniform_access(self):
        probabilities = {page: 0.01 for page in range(100)}
        result = optimize_layout(probabilities, total_pages=100, max_disks=2)
        # Uniform access: nothing beats the flat broadcast (Table 1 point 1).
        assert result.expected_delay == pytest.approx(50.0)
        assert result.layout.is_flat or result.delta == 0

    def test_cuts_land_on_probability_plateau_edges(self):
        probabilities = skewed_probabilities(total=100, hot=10)
        result = optimize_layout(probabilities, total_pages=100, max_disks=2)
        if result.layout.num_disks == 2:
            assert result.layout.sizes[0] == 10

    def test_respects_max_disks(self):
        probabilities = skewed_probabilities()
        result = optimize_layout(probabilities, total_pages=100, max_disks=1)
        assert result.layout.num_disks == 1

    def test_result_reports_evaluation_count(self):
        probabilities = skewed_probabilities()
        result = optimize_layout(probabilities, total_pages=100, max_disks=2)
        assert result.evaluated >= 1

    def test_optimality_gap_at_least_one(self):
        probabilities = skewed_probabilities()
        result = optimize_layout(probabilities, total_pages=100, max_disks=3)
        assert result.optimality_gap >= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            optimize_layout({0: 1.0}, total_pages=0)
        with pytest.raises(ConfigurationError):
            optimize_layout({0: 1.0}, total_pages=10, max_disks=0)
        with pytest.raises(ConfigurationError):
            optimize_layout({50: 1.0}, total_pages=10)

    def test_more_disks_never_hurt(self):
        probabilities = skewed_probabilities(total=60, hot=6)
        two = optimize_layout(probabilities, total_pages=60, max_disks=2)
        three = optimize_layout(probabilities, total_pages=60, max_disks=3)
        assert three.expected_delay <= two.expected_delay + 1e-9


class TestGreedyLayout:
    def test_close_to_exhaustive(self):
        probabilities = skewed_probabilities(total=100, hot=10)
        exhaustive = optimize_layout(probabilities, total_pages=100, max_disks=2)
        greedy = greedy_layout(probabilities, total_pages=100, num_disks=2)
        assert greedy.expected_delay <= exhaustive.expected_delay * 1.25

    def test_needs_two_disks(self):
        with pytest.raises(ConfigurationError):
            greedy_layout({0: 1.0}, total_pages=10, num_disks=1)

    def test_needs_enough_cut_candidates(self):
        with pytest.raises(ConfigurationError):
            greedy_layout(
                {page: 0.1 for page in range(10)},
                total_pages=10,
                num_disks=3,
                cut_candidates=[5],
            )


class TestSearchFrequencies:
    def test_finds_nontrivial_ratio(self):
        probabilities = skewed_probabilities(total=20, hot=4, hot_mass=0.8)
        result = search_frequencies((4, 16), probabilities, max_frequency=6)
        assert result.layout.rel_freqs[0] > result.layout.rel_freqs[-1]

    def test_never_worse_than_flat_vector(self):
        probabilities = skewed_probabilities(total=20, hot=4)
        result = search_frequencies((4, 16), probabilities, max_frequency=6)
        flat = multidisk_expected_delay(DiskLayout((4, 16), (1, 1)), probabilities)
        assert result.expected_delay <= flat + 1e-9

    def test_delta_is_none_for_direct_search(self):
        probabilities = skewed_probabilities(total=20, hot=4)
        result = search_frequencies((4, 16), probabilities, max_frequency=4)
        assert result.delta is None

    def test_empty_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            search_frequencies((), {0: 1.0})


class TestComparePresets:
    def test_returns_delay_per_preset(self):
        probabilities = skewed_probabilities()
        presets = {
            "flat": DiskLayout.flat(100),
            "split": DiskLayout.from_delta((10, 90), 3),
        }
        delays = compare_presets(presets, probabilities)
        assert set(delays) == {"flat", "split"}
        assert delays["split"] < delays["flat"]


class TestShapingResult:
    def test_gap_with_zero_bound(self):
        result = ShapingResult(
            layout=DiskLayout.flat(10),
            delta=0,
            expected_delay=5.0,
            lower_bound=0.0,
            evaluated=1,
        )
        assert result.optimality_gap == float("inf")
