"""Unit tests for the closed-form analysis (repro.core.analysis)."""

import numpy as np
import pytest

from repro.core.analysis import (
    bus_stop_penalty,
    expected_delay,
    flat_expected_delay,
    multidisk_expected_delay,
    per_page_expected_delay,
    program_comparison,
    sqrt_rule_lower_bound,
    sqrt_rule_shares,
    table1_rows,
)
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program as multidisk_program, paper_example_programs
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError


class TestTable1:
    """The paper's Table 1, row by row, to printed precision."""

    @pytest.fixture
    def rows(self):
        return {mix: delays for mix, delays in table1_rows()}

    def test_flat_is_always_one_and_a_half(self, rows):
        for delays in rows.values():
            assert delays["flat"] == pytest.approx(1.50)

    def test_uniform_row(self, rows):
        delays = rows[(1 / 3, 1 / 3, 1 / 3)]
        assert delays["skewed"] == pytest.approx(1.75)
        assert delays["multidisk"] == pytest.approx(5.0 / 3.0)

    def test_half_quarter_quarter_row(self, rows):
        delays = rows[(0.50, 0.25, 0.25)]
        assert delays["skewed"] == pytest.approx(1.625)
        assert delays["multidisk"] == pytest.approx(1.50)

    def test_three_quarters_row(self, rows):
        delays = rows[(0.75, 0.125, 0.125)]
        assert delays["skewed"] == pytest.approx(1.4375)
        assert delays["multidisk"] == pytest.approx(1.25)

    def test_ninety_percent_row(self, rows):
        delays = rows[(0.90, 0.05, 0.05)]
        assert delays["skewed"] == pytest.approx(1.325)
        assert delays["multidisk"] == pytest.approx(1.10)

    def test_degenerate_row(self, rows):
        delays = rows[(1.00, 0.00, 0.00)]
        assert delays["skewed"] == pytest.approx(1.25)
        assert delays["multidisk"] == pytest.approx(1.00)

    def test_flat_wins_at_uniform_access(self, rows):
        # Paper point 1: with uniform probabilities the flat disk is best.
        delays = rows[(1 / 3, 1 / 3, 1 / 3)]
        assert delays["flat"] < delays["skewed"]
        assert delays["flat"] < delays["multidisk"]

    def test_multidisk_always_beats_skewed(self, rows):
        # Paper point 3: the Bus Stop Paradox.
        for delays in rows.values():
            assert delays["multidisk"] < delays["skewed"]

    def test_nonflat_wins_under_skew(self, rows):
        # Paper point 2: skewed access favours non-flat programs.
        delays = rows[(0.90, 0.05, 0.05)]
        assert delays["multidisk"] < delays["flat"]


class TestFlatDelay:
    def test_paper_scale(self):
        assert flat_expected_delay(5000) == 2500.0

    def test_single_page(self):
        assert flat_expected_delay(1) == 0.5

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            flat_expected_delay(0)


class TestMultidiskAnalytic:
    def test_matches_schedule_computation(self):
        layout = DiskLayout((2, 4, 8), (4, 2, 1))
        probabilities = {page: 1 / 14 for page in range(14)}
        analytic = multidisk_expected_delay(layout, probabilities)
        program = multidisk_program(layout)
        assert analytic == pytest.approx(
            program.expected_delay_under(probabilities)
        )

    def test_matches_schedule_with_padding(self):
        layout = DiskLayout((1, 3), (2, 1))  # has one padding slot
        probabilities = {0: 0.7, 1: 0.1, 2: 0.1, 3: 0.1}
        analytic = multidisk_expected_delay(layout, probabilities)
        program = multidisk_program(layout)
        assert analytic == pytest.approx(
            program.expected_delay_under(probabilities)
        )

    def test_ignores_zero_probability_pages(self):
        layout = DiskLayout((1, 1), (2, 1))
        assert multidisk_expected_delay(layout, {0: 1.0, 1: 0.0}) == (
            multidisk_expected_delay(layout, {0: 1.0})
        )


class TestBusStopPenalty:
    def test_zero_for_fixed_gaps(self):
        program = BroadcastSchedule([0, 1, 0, 2])
        assert bus_stop_penalty(program, 0) == pytest.approx(0.0)

    def test_positive_for_clustered_gaps(self):
        program = BroadcastSchedule([0, 0, 1, 2])
        assert bus_stop_penalty(program, 0) > 0.0

    def test_value_for_paper_example(self):
        program = BroadcastSchedule([0, 0, 1, 2])
        # Actual 1.25 vs floor 4/(2*2)=1.0.
        assert bus_stop_penalty(program, 0) == pytest.approx(0.25)


class TestSqrtRule:
    def test_shares_proportional_to_sqrt(self):
        shares = sqrt_rule_shares({0: 0.64, 1: 0.16, 2: 0.16, 3: 0.04})
        assert shares[0] / shares[1] == pytest.approx(2.0)
        assert shares[1] / shares[3] == pytest.approx(2.0)

    def test_shares_sum_to_one(self):
        shares = sqrt_rule_shares({0: 0.5, 1: 0.3, 2: 0.2})
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_uniform_bound_equals_flat(self):
        # With n equally likely pages the bound is n/2: flat is optimal.
        n = 10
        probabilities = {page: 1.0 / n for page in range(n)}
        assert sqrt_rule_lower_bound(probabilities) == pytest.approx(n / 2)

    def test_bound_below_any_actual_program(self):
        probabilities = {0: 0.5, 1: 0.25, 2: 0.25}
        bound = sqrt_rule_lower_bound(probabilities)
        for program in paper_example_programs().values():
            assert bound <= expected_delay(program, probabilities) + 1e-12

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sqrt_rule_shares({})


class TestProgramComparison:
    def test_ordering_under_skew(self, rng):
        layout = DiskLayout.from_delta((2, 8), delta=3)
        probabilities = {page: (0.8 / 2 if page < 2 else 0.2 / 8) for page in range(10)}
        comparison = program_comparison(
            layout, probabilities, rng=rng, random_trials=12
        )
        assert comparison["multidisk"] < comparison["skewed"]
        assert comparison["multidisk"] < comparison["random"]
        assert comparison["multidisk"] < comparison["flat"]

    def test_without_rng_no_random_entry(self):
        layout = DiskLayout.from_delta((2, 8), delta=1)
        probabilities = {page: 0.1 for page in range(10)}
        comparison = program_comparison(layout, probabilities)
        assert "random" not in comparison

    def test_per_page_expected_delay(self):
        program = BroadcastSchedule([0, 1, 0, 2])
        delays = per_page_expected_delay(program)
        assert delays == {
            0: pytest.approx(1.0),
            1: pytest.approx(2.0),
            2: pytest.approx(2.0),
        }
