"""Property-based tests (hypothesis) for multi-channel programs.

Two guarantees, over arbitrary layouts rather than the paper's presets:

* **C=1 reduction** — a one-channel program is byte-identical to the
  legacy single-channel schedule: same slot list, same ``next_arrival``
  floats, same fast-engine measurements;
* **partition** — for any channel count, the union of the channel rows
  is a permutation-free partition of the single-channel page multiset:
  every page appears on exactly one row, with exactly its Δ-rule
  per-cycle broadcast count, and no row ever carries a page twice in
  one gap window (fixed inter-arrival survives the split).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channels import assign_channels, build_program
from repro.core.chunks import EMPTY_SLOT
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


@st.composite
def delta_layouts(draw):
    """Layouts built through the paper's delta rule."""
    num_disks = draw(st.integers(min_value=1, max_value=4))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=num_disks,
            max_size=num_disks,
        )
    )
    delta = draw(st.integers(min_value=0, max_value=7))
    return DiskLayout.from_delta(sizes, delta)


@st.composite
def layouts_and_channel_counts(draw):
    layout = draw(delta_layouts())
    num_channels = draw(
        st.integers(min_value=1, max_value=min(4, layout.total_pages))
    )
    return layout, num_channels


query_instants = st.one_of(
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    st.integers(min_value=0, max_value=300).map(float),
)


class TestSingleChannelReduction:
    @given(delta_layouts())
    @settings(max_examples=120, deadline=None)
    def test_slots_byte_identical(self, layout):
        program = build_program(layout, 1)
        legacy = _multidisk_program(layout)
        assert program.num_channels == 1
        assert program.channels[0].slots == legacy.slots

    @given(delta_layouts(), query_instants)
    @settings(max_examples=120, deadline=None)
    def test_next_arrival_byte_identical(self, layout, time):
        program = build_program(layout, 1)
        legacy = _multidisk_program(layout)
        for page in range(layout.total_pages):
            assert program.next_arrival(page, time) == \
                legacy.next_arrival(page, time)
            assert program.fixed_gap(page) == legacy.fixed_gap(page)

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=4, max_value=30),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_fast_engine_stats_byte_identical(self, fast_pages, slow_pages,
                                              delta, seed):
        base = dict(
            disk_sizes=(fast_pages, slow_pages),
            delta=delta,
            cache_size=max(2, fast_pages // 2),
            policy="LIX",
            access_range=fast_pages + slow_pages,
            region_size=1,  # always divides access_range (§4.1 constraint)
            num_requests=120,
            seed=seed,
        )
        legacy = run_experiment(ExperimentConfig(**base), engine="fast",
                                collect_responses=True)
        reduced = run_experiment(ExperimentConfig(**base, channels=1),
                                 engine="fast", collect_responses=True)
        assert reduced.samples == legacy.samples
        assert reduced.mean_response_time == legacy.mean_response_time
        assert reduced.hit_rate == legacy.hit_rate
        assert reduced.retunes == 0


class TestPartitionProperty:
    @given(layouts_and_channel_counts())
    @settings(max_examples=120, deadline=None)
    def test_rows_partition_the_page_set(self, layout_and_count):
        layout, num_channels = layout_and_count
        assignment = assign_channels(layout, num_channels)
        pages = sorted(
            page for channel in assignment.channels for page in channel
        )
        assert pages == list(range(layout.total_pages))

    @given(layouts_and_channel_counts())
    @settings(max_examples=100, deadline=None)
    def test_per_cycle_broadcast_counts_preserved(self, layout_and_count):
        layout, num_channels = layout_and_count
        program = build_program(layout, num_channels)
        legacy = _multidisk_program(layout)
        assert sorted(program.pages) == sorted(legacy.pages)
        for page in program.pages:
            row = program.schedule_of(page)
            assert row.broadcasts_per_period(page) == \
                legacy.broadcasts_per_period(page)
            # The split never puts one page on two rows.
            assert program.channel_of(page) == \
                program.channel_map()[page]

    @given(layouts_and_channel_counts())
    @settings(max_examples=100, deadline=None)
    def test_fixed_interarrival_survives_the_split(self, layout_and_count):
        layout, num_channels = layout_and_count
        program = build_program(layout, num_channels)
        for page in program.pages:
            assert program.fixed_gap(page) is not None

    @given(layouts_and_channel_counts())
    @settings(max_examples=100, deadline=None)
    def test_row_slots_carry_only_assigned_pages(self, layout_and_count):
        layout, num_channels = layout_and_count
        program = build_program(layout, num_channels)
        for index, row in enumerate(program.channels):
            for slot in row.slots:
                if slot == EMPTY_SLOT:
                    continue
                assert program.channel_of(slot) == index
