"""Tests for the hybrid push/pull extension (repro.hybrid)."""

import math

import pytest

from repro.cache.base import PolicyContext
from repro.cache.lru import LRUPolicy
from repro.core.programs import _flat_program as flat_program, _multidisk_program as multidisk_program
from repro.core.disks import DiskLayout
from repro.errors import ConfigurationError
from repro.hybrid.channel import HybridChannel, HybridServer
from repro.hybrid.client import HybridClient
from repro.hybrid.study import hybrid_population_study, run_hybrid_population
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


def make_channel(slots=8, pull_spacing=4):
    sim = Simulator()
    schedule = flat_program(slots)
    channel = HybridChannel(sim, schedule, pull_spacing=pull_spacing)
    HybridServer(sim, channel)
    return sim, schedule, channel


class TestTimeArithmetic:
    def test_real_time_of_push_slot(self):
        _sim, _schedule, channel = make_channel(pull_spacing=4)
        # k=4: real slots 3, 7, 11 are pull slots.
        assert channel.real_time_of_push_slot(0) == 0
        assert channel.real_time_of_push_slot(2) == 2
        assert channel.real_time_of_push_slot(3) == 4  # skips real slot 3
        assert channel.real_time_of_push_slot(6) == 8

    def test_push_mapping_skips_every_kth_slot(self):
        _sim, _schedule, channel = make_channel(pull_spacing=3)
        reals = [channel.real_time_of_push_slot(j) for j in range(8)]
        assert reals == [0, 1, 3, 4, 6, 7, 9, 10]

    def test_next_push_arrival_simple(self):
        _sim, _schedule, channel = make_channel(slots=4, pull_spacing=4)
        # Push program ABCD; pull slots at real 3, 7, ...
        # Page 0 airs at push slot 0 -> real 0 (completion 1), next cycle
        # push slot 4 -> real 5 (completion 6).
        assert channel.next_push_arrival(0, 0.0) == 1.0
        assert channel.next_push_arrival(0, 1.0) == 6.0

    def test_next_push_arrival_strictly_after(self):
        _sim, _schedule, channel = make_channel(slots=4, pull_spacing=4)
        arrival = channel.next_push_arrival(2, 0.0)
        assert arrival > 0.0
        later = channel.next_push_arrival(2, arrival)
        assert later > arrival

    def test_next_push_arrival_fractional_time(self):
        _sim, _schedule, channel = make_channel(slots=4, pull_spacing=4)
        # Page 1 airs at real slot 1, completing at 2.0.  Same semantics
        # as BroadcastSchedule.next_arrival: a request mid-transmission
        # (t=1.5) still catches the completion at 2.0; a request exactly
        # at the completion has missed it.
        assert channel.next_push_arrival(1, 0.5) == 2.0
        assert channel.next_push_arrival(1, 1.5) == 2.0
        assert channel.next_push_arrival(1, 2.0) > 2.0

    def test_next_pull_slot_completion(self):
        _sim, _schedule, channel = make_channel(pull_spacing=4)
        assert channel.next_pull_slot_completion(0.0, 0) == 4.0
        assert channel.next_pull_slot_completion(4.0, 0) == 8.0
        assert channel.next_pull_slot_completion(0.0, 2) == 12.0

    def test_pull_spacing_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            HybridChannel(sim, flat_program(4), pull_spacing=1)


class TestPullDelivery:
    def test_pull_served_at_next_pull_slot(self):
        sim, _schedule, channel = make_channel(slots=8, pull_spacing=4)
        event = channel.request_pull(6)
        sim.run_until_event(event)
        assert sim.now == 4.0
        assert channel.pull_slots_used == 1

    def test_pull_queue_fifo(self):
        sim, _schedule, channel = make_channel(slots=8, pull_spacing=4)
        first = channel.request_pull(6)
        second = channel.request_pull(7)
        sim.run(until=10.0)
        assert first.value == 4.0
        assert second.value == 8.0

    def test_pull_satisfies_push_waiters_of_same_page(self):
        sim, _schedule, channel = make_channel(slots=8, pull_spacing=4)
        push_wait = channel.wait_for_push(6)
        pull = channel.request_pull(6)
        sim.run(until=6.0)
        # Page 6's push completion would be later; the pulled copy at
        # t=4 satisfies the push waiter too.
        assert pull.value == 4.0
        assert push_wait.processed
        assert push_wait.value == 4.0

    def test_push_waiter_on_hybrid_channel(self):
        sim, _schedule, channel = make_channel(slots=8, pull_spacing=4)
        event = channel.wait_for_push(0)
        sim.run_until_event(event)
        assert sim.now == 1.0


class TestHybridClient:
    def build(self, pull_threshold, trace, slots=16, pull_spacing=4):
        sim = Simulator()
        layout = DiskLayout.flat(slots)
        schedule = flat_program(slots)
        channel = HybridChannel(sim, schedule, pull_spacing=pull_spacing)
        HybridServer(sim, channel)
        upstream = Resource(sim, capacity=1)
        client = HybridClient(
            sim=sim,
            channel=channel,
            mapping=LogicalPhysicalMapping(layout),
            cache=LRUPolicy(2, PolicyContext()),
            trace=RequestTrace.from_pages(trace),
            upstream=upstream,
            think_time=1.0,
            pull_threshold=pull_threshold,
            upstream_latency=1.0,
        )
        sim.run_until_event(client.process)
        return client.report

    def test_mute_client_never_pulls(self):
        report = self.build(math.inf, [5, 9, 13])
        assert report.pulls_sent == 0

    def test_eager_client_pulls_distant_pages(self):
        report = self.build(0.0, [15, 14, 13])
        assert report.pulls_sent > 0

    def test_pull_improves_latency_for_single_client(self):
        mute = self.build(math.inf, [15, 10, 12, 9, 14])
        eager = self.build(0.0, [15, 10, 12, 9, 14])
        assert eager.mean_response_time < mute.mean_response_time

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            self.build(-1.0, [1])

    def test_cache_hits_cost_nothing(self):
        report = self.build(math.inf, [3, 3, 3])
        assert report.counters.hits == 2


class TestTimelineProperties:
    """Property tests for the stretched push timeline."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.integers(min_value=2, max_value=7),   # pull spacing
        st.integers(min_value=2, max_value=12),  # pages
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_next_push_arrival_is_exact(self, spacing, pages, time):
        sim = Simulator()
        schedule = flat_program(pages)
        channel = HybridChannel(sim, schedule, pull_spacing=spacing)
        page = pages - 1
        arrival = channel.next_push_arrival(page, time)
        assert arrival > time
        # The completing real slot must be a push slot carrying the page.
        real_slot = int(arrival) - 1
        assert (real_slot + 1) % spacing != 0, "landed on a pull slot"
        push_index = real_slot - (real_slot + 1) // spacing
        assert schedule.slots[push_index % schedule.period] == page
        # Brute force: no earlier push completion of the page exists.
        for candidate_real in range(int(time), real_slot):
            if (candidate_real + 1) % spacing == 0:
                continue
            candidate_push = candidate_real - (candidate_real + 1) // spacing
            if schedule.slots[candidate_push % schedule.period] == page:
                assert candidate_real + 1 <= time, (
                    "missed an earlier push completion"
                )


class TestPopulationStudy:
    def test_reports_per_client(self):
        reports = run_hybrid_population(
            3, pull_threshold=50.0, requests_per_client=60, seed=5
        )
        assert len(reports) == 3
        for report in reports:
            assert report.response.count > 0

    def test_single_client_pull_wins_big(self):
        mute = run_hybrid_population(
            1, pull_threshold=math.inf, requests_per_client=120, seed=5
        )[0]
        eager = run_hybrid_population(
            1, pull_threshold=20.0, requests_per_client=120, seed=5
        )[0]
        assert eager.mean_response_time < mute.mean_response_time / 2

    def test_population_validation(self):
        with pytest.raises(ConfigurationError):
            run_hybrid_population(0, pull_threshold=1.0)

    def test_study_series_shapes(self):
        data = hybrid_population_study(
            populations=(1, 4), requests_per_client=60, seed=5
        )
        assert set(data.series) == {
            "dedicated push", "push only", "push + pull", "pulls/client"
        }
        assert len(data.series["push + pull"]) == 2

    def test_push_response_population_independent(self):
        data = hybrid_population_study(
            populations=(1, 8), requests_per_client=80, seed=5
        )
        push = data.series["push only"]
        assert push[1] == pytest.approx(push[0], rel=0.15)

    def test_pull_contention_grows_with_population(self):
        data = hybrid_population_study(
            populations=(1, 16), requests_per_client=80, seed=5
        )
        hybrid = data.series["push + pull"]
        assert hybrid[1] > hybrid[0]
