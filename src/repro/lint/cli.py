"""Command line front end: ``python -m repro.lint [paths ...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.config import find_pyproject, load_config
from repro.lint.diagnostics import format_diagnostics
from repro.lint.engine import LintStats, lint_paths
from repro.lint.registry import available_rules

#: Exit-code contract (documented in --help and docs/LINTING.md).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Default cache directory name, created next to pyproject.toml.
CACHE_DIR_NAME = ".repro-lint-cache"

_EPILOG = """\
exit codes:
  0  no findings (the tree is clean)
  1  findings were reported
  2  usage error (unknown option, bad path, bad --format)

suppression:
  append `# repro: noqa[CODE]` to the offending line, or configure a
  per-rule allowlist in pyproject.toml [tool.reprolint.allow].
  RL014 flags suppressions that no longer suppress anything.

caching:
  results are cached by content hash under .repro-lint-cache/ next to
  pyproject.toml; unchanged files are never re-parsed.  --no-cache
  disables it, --cache-dir relocates it, --stats reports hit rates.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Simulation-correctness static analysis for the broadcast-"
            "disks reproduction: rejects wall-clock reads, unmanaged "
            "RNGs, float-equality on simulated time, mutable defaults, "
            "swallowed exceptions, partially implemented cache "
            "policies, unseeded RNG provenance, parallel-unsafe module "
            "state, and platform-ordered folds."
        ),
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml carrying [tool.reprolint] "
        "(default: nearest pyproject.toml above the cwd)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze every file from scratch, ignoring the cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="incremental cache directory (default: "
        f"{CACHE_DIR_NAME}/ next to the governing pyproject.toml)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache/analysis statistics to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit 0",
    )
    return parser


def resolve_cache_dir(
    explicit: Optional[Path],
    pyproject: Optional[Path],
) -> Optional[Path]:
    """Where the cache lives: explicit flag, else next to pyproject.

    Without a pyproject there is no stable anchor, so caching is
    silently skipped rather than scattering cache directories around.
    """
    if explicit is not None:
        return explicit
    anchor = pyproject if pyproject is not None else find_pyproject()
    if anchor is None:
        return None
    return Path(anchor).resolve().parent / CACHE_DIR_NAME


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the exit code per the 0/1/2 contract."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, name, rationale in available_rules():
            print(f"{code}  {name:<22} {rationale}")
        return EXIT_CLEAN

    if args.config is not None and not args.config.is_file():
        print(
            f"error: config file not found: {args.config}", file=sys.stderr
        )
        return EXIT_USAGE

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    config = load_config(pyproject=args.config)
    cache_dir = (
        None
        if args.no_cache
        else resolve_cache_dir(args.cache_dir, args.config)
    )
    stats = LintStats()
    diagnostics = lint_paths(
        paths, config, cache_dir=cache_dir, stats=stats
    )
    output = format_diagnostics(diagnostics, args.format)
    if output:
        print(output)
    if args.stats:
        print(f"lint: {stats.describe()}", file=sys.stderr)
    if diagnostics:
        if args.format == "text":
            print(
                f"\n{len(diagnostics)} finding"
                f"{'s' if len(diagnostics) != 1 else ''}",
                file=sys.stderr,
            )
        return EXIT_FINDINGS
    return EXIT_CLEAN
