"""The whole-program project model behind the cross-module rules.

Per-file analysis (one parse, one walk) distils each module into a
JSON-serialisable :class:`ModuleSummary` — imports, symbol table,
call-site facts, taint origins, state-write facts.  The
:class:`ProjectModel` then stitches the summaries into a module graph
(who imports whom), a symbol resolver that follows ``from x import y``
re-export chains across modules, and an approximate call graph with
reachability queries.

Because summaries carry everything the cross-module rules consume,
the incremental cache (:mod:`repro.lint.engine`) can persist them and
rebuild the model on a warm run *without re-parsing a single file* —
the model is plain-data all the way down.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Bump when the summary shape changes so stale caches self-invalidate.
SUMMARY_VERSION = 1

#: Mutating container methods: calling one on a module-level name is a
#: write to shared module state.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)

#: Constructors whose module-level result cannot cross a process
#: boundary (pickle fails or the copy is useless).
_UNPICKLABLE_CALLS = {
    "threading.Lock": "a thread lock",
    "threading.RLock": "a thread lock",
    "threading.Condition": "a thread condition",
    "threading.Semaphore": "a thread semaphore",
    "threading.Event": "a thread event",
    "multiprocessing.Lock": "a multiprocessing lock",
    "open": "an open file handle",
    "io.open": "an open file handle",
    "gzip.open": "an open file handle",
    "bz2.open": "an open file handle",
}

#: Builtin constructors / displays that create mutable containers.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict",
                            "OrderedDict", "deque", "Counter"})

#: Module-level dict names treated as registries (shared with RL006).
REGISTRY_NAMES = frozenset(
    {"_FACTORIES", "FACTORIES", "_REGISTRY", "REGISTRY", "_POLICIES",
     "POLICIES"}
)

#: Calls returning filesystem listings in OS-dependent order.
LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Ubiquitous method names excluded from the over-approximate
#: "unresolved method call → every same-named method" call-graph edge.
_COMMON_METHODS = frozenset(
    {
        "get",
        "keys",
        "values",
        "items",
        "append",
        "add",
        "update",
        "extend",
        "pop",
        "copy",
        "sort",
        "split",
        "join",
        "strip",
        "read",
        "write",
        "close",
        "open",
        "format",
        "mean",
        "sum",
        "count",
        "index",
        "stream",
        "encode",
        "decode",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, src-layout aware.

    ``src/repro/exec/run.py`` → ``repro.exec.run``;
    ``.../pkg/__init__.py`` → ``...pkg``.  Paths outside a ``src``
    layout keep every component, and resolution matches on dotted
    *suffixes*, so absolute tmp-dir prefixes are harmless.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    return ".".join(p for p in parts if p)


# ---------------------------------------------------------------------------
# Summary records (all JSON-serialisable via to_dict / from_dict)
# ---------------------------------------------------------------------------

@dataclass
class ClassInfo:
    """Statically extracted shape of one class definition."""

    name: str
    lineno: int = 1
    col: int = 1
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    abstract: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "bases": self.bases,
            "methods": self.methods,
            "abstract": self.abstract,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ClassInfo":
        return cls(**data)


@dataclass
class CallFact:
    """One call site: who is called, with which argument origins.

    ``callee`` is the import-resolved dotted target (``None`` when the
    base is a local object); ``attr`` carries the method name for those
    unresolved ``obj.method(...)`` calls.  ``arg_origins`` holds, per
    positional-then-keyword argument, the resolved origin of the value
    (the dotted callee that produced it) or ``None`` when unknown.
    """

    lineno: int
    col: int
    callee: Optional[str] = None
    attr: Optional[str] = None
    arg_origins: List[Optional[str]] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "lineno": self.lineno,
            "col": self.col,
            "callee": self.callee,
            "attr": self.attr,
            "arg_origins": self.arg_origins,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CallFact":
        return cls(**data)


@dataclass
class StateWrite:
    """A write to (potentially) module-level state inside a function."""

    name: str  # resolved dotted name of the written target
    lineno: int
    col: int
    how: str  # "global-assign" | "mutation" | "subscript-store"

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "how": self.how,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StateWrite":
        return cls(**data)


@dataclass
class SymbolRef:
    """A Load reference to a module-level / imported symbol."""

    name: str  # resolved dotted name
    lineno: int
    col: int

    def to_dict(self) -> Dict:
        return {"name": self.name, "lineno": self.lineno, "col": self.col}

    @classmethod
    def from_dict(cls, data: Dict) -> "SymbolRef":
        return cls(**data)


@dataclass
class OrderHazard:
    """An RL013 candidate: iteration order leaking into a result."""

    lineno: int
    col: int
    kind: str  # "listing" | "set"
    detail: str  # the call / expression that produced the unordered data

    def to_dict(self) -> Dict:
        return {
            "lineno": self.lineno,
            "col": self.col,
            "kind": self.kind,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "OrderHazard":
        return cls(**data)


@dataclass
class FunctionInfo:
    """Per-function facts the cross-module rules consume."""

    qualname: str  # module-relative, e.g. "execute_plan" or "Engine.run"
    lineno: int = 1
    col: int = 1
    calls: List[CallFact] = field(default_factory=list)
    returns: List[str] = field(default_factory=list)  # origins of returns
    state_writes: List[StateWrite] = field(default_factory=list)
    symbol_refs: List[SymbolRef] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "col": self.col,
            "calls": [c.to_dict() for c in self.calls],
            "returns": self.returns,
            "state_writes": [w.to_dict() for w in self.state_writes],
            "symbol_refs": [r.to_dict() for r in self.symbol_refs],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"],
            lineno=data["lineno"],
            col=data["col"],
            calls=[CallFact.from_dict(c) for c in data["calls"]],
            returns=list(data["returns"]),
            state_writes=[StateWrite.from_dict(w) for w in data["state_writes"]],
            symbol_refs=[SymbolRef.from_dict(r) for r in data["symbol_refs"]],
        )


@dataclass
class RegistryEntry:
    """One ``_FACTORIES``-style registry mapping: key → class name."""

    key: str
    class_name: str
    lineno: int
    col: int

    def to_dict(self) -> Dict:
        return {
            "key": self.key,
            "class_name": self.class_name,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RegistryEntry":
        return cls(**data)


@dataclass
class ModuleSummary:
    """Everything the project model knows about one module."""

    path: str
    module: str
    imports: List[str] = field(default_factory=list)
    from_imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    module_frame: Optional[FunctionInfo] = None  # top-level statements
    module_mutables: Dict[str, str] = field(default_factory=dict)
    module_unpicklables: Dict[str, str] = field(default_factory=dict)
    registry_entries: List[RegistryEntry] = field(default_factory=list)
    roots: List[str] = field(default_factory=list)  # worker entry refs
    order_hazards: List[OrderHazard] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "path": self.path,
            "module": self.module,
            "imports": self.imports,
            "from_imports": self.from_imports,
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "module_frame": (
                self.module_frame.to_dict() if self.module_frame else None
            ),
            "module_mutables": self.module_mutables,
            "module_unpicklables": self.module_unpicklables,
            "registry_entries": [e.to_dict() for e in self.registry_entries],
            "roots": self.roots,
            "order_hazards": [h.to_dict() for h in self.order_hazards],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ModuleSummary":
        return cls(
            path=data["path"],
            module=data["module"],
            imports=list(data["imports"]),
            from_imports=dict(data["from_imports"]),
            classes={
                k: ClassInfo.from_dict(v) for k, v in data["classes"].items()
            },
            functions={
                k: FunctionInfo.from_dict(v)
                for k, v in data["functions"].items()
            },
            module_frame=(
                FunctionInfo.from_dict(data["module_frame"])
                if data["module_frame"]
                else None
            ),
            module_mutables=dict(data["module_mutables"]),
            module_unpicklables=dict(data["module_unpicklables"]),
            registry_entries=[
                RegistryEntry.from_dict(e) for e in data["registry_entries"]
            ],
            roots=list(data["roots"]),
            order_hazards=[
                OrderHazard.from_dict(h) for h in data["order_hazards"]
            ],
        )

    def all_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
        if self.module_frame is not None:
            yield self.module_frame


# ---------------------------------------------------------------------------
# Extraction: one walk over a parsed module
# ---------------------------------------------------------------------------

class _Frame:
    """Per-function extraction state (locals, origins, globals)."""

    def __init__(self, info: FunctionInfo):
        self.info = info
        self.local_names: Set[str] = set()
        self.origins: Dict[str, str] = {}  # var → origin of last assignment
        self.globals_declared: Set[str] = set()
        self.seen_refs: Set[str] = set()


class _Extractor(ast.NodeVisitor):
    """Builds a :class:`ModuleSummary` in a single AST walk."""

    def __init__(self, path: str, tree: ast.Module):
        self.summary = ModuleSummary(
            path=path, module=module_name_for(path)
        )
        self.module_aliases: Dict[str, str] = {}
        self._class_stack: List[str] = []
        module_frame = FunctionInfo(qualname="<module>")
        self.summary.module_frame = module_frame
        self._frames: List[_Frame] = [_Frame(module_frame)]
        self._sorted_wrapped: Set[int] = set()
        self._index_imports(tree)
        self.visit(tree)

    # -- import table (mirrors engine.FileContext) -------------------------
    def _index_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.summary.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self.summary.imports = sorted(
            set(self.module_aliases.values())
            | {origin.rsplit(".", 1)[0]
               for origin in self.summary.from_imports.values()}
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name for a Name/Attribute chain, import-aware."""
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        if isinstance(node, ast.Name):
            if node.id in self.summary.from_imports:
                return self.summary.from_imports[node.id]
            if node.id in self.module_aliases:
                return self.module_aliases[node.id]
            return node.id
        return None

    # -- expression origins ------------------------------------------------
    def _origin(self, node: ast.AST) -> Optional[str]:
        """The dotted producer of ``node``'s value, if statically known."""
        if isinstance(node, ast.Call):
            return self.resolve(node.func)
        if isinstance(node, ast.Name):
            frame = self._frames[-1]
            if node.id in frame.origins:
                return frame.origins[node.id]
            if node.id in frame.local_names:
                return None
            if len(self._frames) > 1:
                module_origins = self._frames[0].origins
                if node.id in module_origins:
                    return module_origins[node.id]
            if node.id in self.summary.from_imports:
                return self.summary.from_imports[node.id]
            return None
        if isinstance(node, ast.Subscript):
            base = self._origin(node.value)
            return f"{base}[...]" if base else None
        if isinstance(node, ast.Attribute):
            return self.resolve(node)
        if isinstance(node, ast.Lambda):
            return "<lambda>"
        return None

    def _root_name(self, node: ast.AST) -> Optional[ast.Name]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node if isinstance(node, ast.Name) else None

    # -- scope bookkeeping -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        prefix = ".".join(self._class_stack)
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        nested = any(
            frame.info.qualname != "<module>" for frame in self._frames
        )
        info = FunctionInfo(
            qualname=qualname,
            lineno=node.lineno,
            col=node.col_offset + 1,
        )
        if not nested:
            self.summary.functions[qualname] = info
        frame = _Frame(info)
        for arg in (
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ):
            frame.local_names.add(arg.arg)
        if node.args.vararg:
            frame.local_names.add(node.args.vararg.arg)
        if node.args.kwarg:
            frame.local_names.add(node.args.kwarg.arg)
        self._frames.append(frame)
        for statement in node.body:
            self.visit(statement)
        self._frames.pop()
        if nested:
            # Fold a nested function's facts into its enclosing function:
            # the closure runs as part of the outer call for our purposes.
            outer = self._frames[-1].info
            outer.calls.extend(info.calls)
            outer.state_writes.extend(info.state_writes)
            outer.symbol_refs.extend(info.symbol_refs)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=node.name, lineno=node.lineno, col=node.col_offset + 1
        )
        for base in node.bases:
            name = (
                base.id if isinstance(base, ast.Name)
                else getattr(base, "attr", None)
            )
            if name:
                info.bases.append(name)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_abstract(item):
                    info.abstract.append(item.name)
                else:
                    info.methods.append(item.name)
        if not self._class_stack and len(self._frames) == 1:
            self.summary.classes[node.name] = info
        self._class_stack.append(node.name)
        for statement in node.body:
            self.visit(statement)
        self._class_stack.pop()

    def visit_Global(self, node: ast.Global) -> None:
        self._frames[-1].globals_declared.update(node.names)

    # -- assignments -------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        frame = self._frames[-1]
        at_module = len(self._frames) == 1 and not self._class_stack
        origin = self._origin(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._record_name_binding(
                    target.id, node.value, origin, node, at_module
                )
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_store(target, node)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        frame.local_names.add(element.id)
        if at_module:
            self._record_registry(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        at_module = len(self._frames) == 1 and not self._class_stack
        if isinstance(node.target, ast.Name) and node.value is not None:
            origin = self._origin(node.value)
            self._record_name_binding(
                node.target.id, node.value, origin, node, at_module
            )
            if at_module:
                self._record_registry(node)
        elif isinstance(node.target, (ast.Subscript, ast.Attribute)):
            self._record_store(node.target, node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        frame = self._frames[-1]
        if isinstance(node.target, ast.Name):
            if node.target.id in frame.globals_declared:
                frame.info.state_writes.append(
                    StateWrite(
                        name=self._qualify(node.target.id),
                        lineno=node.lineno,
                        col=node.col_offset + 1,
                        how="global-assign",
                    )
                )
            else:
                frame.local_names.add(node.target.id)
        elif isinstance(node.target, (ast.Subscript, ast.Attribute)):
            self._record_store(node.target, node)

    def _record_name_binding(
        self,
        name: str,
        value: ast.AST,
        origin: Optional[str],
        node: ast.AST,
        at_module: bool,
    ) -> None:
        frame = self._frames[-1]
        if name in frame.globals_declared:
            frame.info.state_writes.append(
                StateWrite(
                    name=self._qualify(name),
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    how="global-assign",
                )
            )
        else:
            frame.local_names.add(name)
        if origin is not None:
            frame.origins[name] = origin
        else:
            frame.origins.pop(name, None)
        if at_module:
            kind = _mutable_kind(value, self)
            if kind is not None:
                self.summary.module_mutables[name] = kind
            unpicklable = _unpicklable_kind(value, self)
            if unpicklable is not None:
                self.summary.module_unpicklables[name] = unpicklable

    def _qualify(self, name: str) -> str:
        return f"{self.summary.module}.{name}" if self.summary.module else name

    def _record_store(self, target: ast.AST, node: ast.AST) -> None:
        """A ``base[...] = v`` / ``base.attr = v`` store seen in a function."""
        if len(self._frames) == 1:
            return  # module-level initialisation is fine
        root = self._root_name(
            target.value if isinstance(target, (ast.Subscript, ast.Attribute))
            else target
        )
        if root is None:
            return
        frame = self._frames[-1]
        if root.id in frame.local_names and \
                root.id not in frame.globals_declared:
            return
        resolved = self.resolve(
            target.value
            if isinstance(target, (ast.Subscript, ast.Attribute))
            else target
        )
        if resolved is None:
            return
        if "." not in resolved:
            resolved = self._qualify(resolved)
        frame.info.state_writes.append(
            StateWrite(
                name=resolved,
                lineno=node.lineno,
                col=node.col_offset + 1,
                how="subscript-store",
            )
        )

    def _record_registry(self, node) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if not (names & REGISTRY_NAMES) or not isinstance(value, ast.Dict):
            return
        for key_node, value_node in zip(value.keys, value.values):
            key = (
                key_node.value
                if isinstance(key_node, ast.Constant)
                else "<dynamic>"
            )
            class_name = _value_class_name(value_node)
            if class_name:
                self.summary.registry_entries.append(
                    RegistryEntry(
                        key=str(key),
                        class_name=class_name,
                        lineno=value_node.lineno,
                        col=value_node.col_offset + 1,
                    )
                )

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        frame = self._frames[-1]
        callee = self.resolve(node.func)
        attr = None
        if callee is None and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
        if callee == "sorted":
            for arg in node.args:
                self._sorted_wrapped.add(id(arg))
        arg_origins: List[Optional[str]] = [
            self._origin(arg) for arg in node.args
            if not isinstance(arg, ast.Starred)
        ] + [
            self._origin(keyword.value)
            for keyword in node.keywords
            if keyword.arg is not None
        ]
        frame.info.calls.append(
            CallFact(
                lineno=node.lineno,
                col=node.col_offset + 1,
                callee=callee,
                attr=attr,
                arg_origins=arg_origins,
            )
        )
        self._record_worker_roots(node, callee, attr)
        self._record_mutator(node, callee, attr)
        self._record_listing(node, callee, attr)
        self.generic_visit(node)

    def _record_worker_roots(
        self, node: ast.Call, callee: Optional[str], attr: Optional[str]
    ) -> None:
        """Callables handed to pools / registered as plan engines."""
        candidates: List[ast.AST] = []
        tail = (callee or "").rsplit(".", 1)[-1]
        if attr in ("submit", "map", "apply_async") or tail in (
            "submit", "map", "apply_async"
        ):
            if node.args:
                candidates.append(node.args[0])
        for keyword in node.keywords:
            if keyword.arg in ("target", "run_plan", "initializer"):
                candidates.append(keyword.value)
        for candidate in candidates:
            resolved = self.resolve(candidate)
            if resolved:
                self.summary.roots.append(resolved)

    def _record_mutator(
        self, node: ast.Call, callee: Optional[str], attr: Optional[str]
    ) -> None:
        """``X.append(...)``-style mutation of a non-local container."""
        if len(self._frames) == 1:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in MUTATOR_METHODS:
            return
        root = self._root_name(func.value)
        if root is None:
            return
        frame = self._frames[-1]
        if root.id in frame.local_names and \
                root.id not in frame.globals_declared:
            return
        resolved = self.resolve(func.value)
        if resolved is None:
            return
        if "." not in resolved:
            resolved = self._qualify(resolved)
        frame.info.state_writes.append(
            StateWrite(
                name=resolved,
                lineno=node.lineno,
                col=node.col_offset + 1,
                how="mutation",
            )
        )

    def _record_listing(
        self, node: ast.Call, callee: Optional[str], attr: Optional[str]
    ) -> None:
        detail = None
        if callee in LISTING_CALLS:
            detail = f"{callee}()"
        elif attr in LISTING_METHODS or (
            callee and callee.rsplit(".", 1)[-1] in LISTING_METHODS
            and "." in (callee or "")
        ):
            detail = f".{attr or callee.rsplit('.', 1)[-1]}()"
        if detail is None:
            return
        if id(node) in self._sorted_wrapped:
            return
        self.summary.order_hazards.append(
            OrderHazard(
                lineno=node.lineno,
                col=node.col_offset + 1,
                kind="listing",
                detail=detail,
            )
        )

    # -- unordered-iteration hazards ----------------------------------------
    def visit_For(self, node: ast.For) -> None:
        detail = self._set_origin(node.iter)
        if detail is not None and _accumulates(node.body):
            self.summary.order_hazards.append(
                OrderHazard(
                    lineno=node.iter.lineno,
                    col=node.iter.col_offset + 1,
                    kind="set",
                    detail=detail,
                )
            )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._comprehension_hazard(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._comprehension_hazard(node)
        self.generic_visit(node)

    def _comprehension_hazard(self, node) -> None:
        for generator in node.generators:
            detail = self._set_origin(generator.iter)
            if detail is not None:
                self.summary.order_hazards.append(
                    OrderHazard(
                        lineno=generator.iter.lineno,
                        col=generator.iter.col_offset + 1,
                        kind="set",
                        detail=detail,
                    )
                )

    def _set_origin(self, node: ast.AST) -> Optional[str]:
        """Describe ``node`` if it evaluates to an unordered set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set display"
        if isinstance(node, ast.Call):
            resolved = self.resolve(node.func) or ""
            if resolved in ("set", "frozenset"):
                return f"{resolved}()"
        if isinstance(node, ast.Name):
            origin = self._frames[-1].origins.get(node.id)
            if origin in ("set", "frozenset"):
                return f"{origin}() (via {node.id!r})"
        return None

    # -- symbol references ---------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load) or len(self._frames) == 1:
            return
        frame = self._frames[-1]
        name = node.id
        if name in frame.local_names or name in frame.seen_refs:
            return
        resolved = None
        if name in self.summary.module_unpicklables:
            resolved = self._qualify(name)
        elif name in self.summary.from_imports:
            resolved = self.summary.from_imports[name]
        if resolved is None:
            return
        frame.seen_refs.add(name)
        frame.info.symbol_refs.append(
            SymbolRef(
                name=resolved, lineno=node.lineno, col=node.col_offset + 1
            )
        )

    # -- returns -------------------------------------------------------------
    def visit_Return(self, node: ast.Return) -> None:
        self.generic_visit(node)
        if node.value is None or len(self._frames) == 1:
            return
        origin = self._origin(node.value)
        if origin is not None:
            self._frames[-1].info.returns.append(origin)


def _accumulates(body: Sequence[ast.stmt]) -> bool:
    """True when a loop body folds values into an accumulator.

    The heuristic: an augmented assignment (``total += v``), a store
    into a subscript (``out[k] = v``), or a mutating container method
    (``results.append(v)``).  A loop that merely *reads* each element
    (e.g. membership checks) is order-insensitive and not flagged.
    """
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.AugAssign):
                return True
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if any(isinstance(t, ast.Subscript) for t in targets):
                    return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
            ):
                return True
    return False


def _is_abstract(func: ast.AST) -> bool:
    for decorator in getattr(func, "decorator_list", []):
        name = (
            decorator.id
            if isinstance(decorator, ast.Name)
            else getattr(decorator, "attr", "")
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _value_class_name(node: ast.AST) -> Optional[str]:
    """The class a registry value constructs: Name, lambda, or partial."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Lambda):
        for inner in ast.walk(node.body):
            if isinstance(inner, ast.Call):
                func = inner.func
                return (
                    func.id if isinstance(func, ast.Name)
                    else getattr(func, "attr", None)
                )
        return None
    if isinstance(node, ast.Call):
        func = node.func
        func_name = (
            func.id if isinstance(func, ast.Name)
            else getattr(func, "attr", None)
        )
        if func_name == "partial" and node.args:
            first = node.args[0]
            return (
                first.id if isinstance(first, ast.Name)
                else getattr(first, "attr", None)
            )
        return func_name
    return None


def _mutable_kind(node: ast.AST, extractor: _Extractor) -> Optional[str]:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        tail = (extractor.resolve(node.func) or "").rsplit(".", 1)[-1]
        if tail in _MUTABLE_CALLS:
            return tail
    return None


def _unpicklable_kind(node: ast.AST, extractor: _Extractor) -> Optional[str]:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Call):
        resolved = extractor.resolve(node.func) or ""
        return _UNPICKLABLE_CALLS.get(resolved)
    return None


def summarize_module(path: str, tree: ast.Module) -> ModuleSummary:
    """Distil ``tree`` into the plain-data summary the model consumes."""
    return _Extractor(path, tree).summary


# ---------------------------------------------------------------------------
# The model: module graph + symbol resolution + call graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Resolved:
    """Where a dotted name landed: which module, which kind of symbol."""

    path: str
    module: str
    kind: str  # "function" | "class" | "module" | "value"
    name: str  # qualname within the module ("" for modules)


class ProjectModel:
    """Whole-program view stitched from per-module summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.summaries: Dict[str, ModuleSummary] = {
            s.path: s for s in summaries
        }
        self._by_module: Dict[str, str] = {}  # dotted name → path
        for summary in summaries:
            if summary.module:
                self._by_module.setdefault(summary.module, summary.path)
        self._method_index: Dict[str, List[Tuple[str, str]]] = {}
        for summary in summaries:
            for qualname in summary.functions:
                tail = qualname.rsplit(".", 1)[-1]
                self._method_index.setdefault(tail, []).append(
                    (summary.path, qualname)
                )
        self._edges: Optional[Dict[str, Set[str]]] = None
        self._reverse: Optional[Dict[str, Set[str]]] = None

    # -- module graph --------------------------------------------------------
    def find_module(self, dotted: str) -> Optional[str]:
        """Path of the module ``dotted`` names, matching on suffixes."""
        if dotted in self._by_module:
            return self._by_module[dotted]
        tail = "." + dotted
        matches = sorted(
            name for name in self._by_module if name.endswith(tail)
        )
        return self._by_module[matches[0]] if matches else None

    def imported_paths(self, summary: ModuleSummary) -> Set[str]:
        """Project paths this module's imports resolve to."""
        found: Set[str] = set()
        for target in summary.imports:
            path = self.find_module(target)
            if path is not None and path != summary.path:
                found.add(path)
        for origin in summary.from_imports.values():
            resolved = self.resolve(origin)
            if resolved is not None and resolved.path != summary.path:
                found.add(resolved.path)
        return found

    def reverse_dependencies(self, paths: Sequence[str]) -> Set[str]:
        """Every module that (transitively) imports one of ``paths``."""
        if self._reverse is None:
            reverse: Dict[str, Set[str]] = {}
            for summary in self.summaries.values():
                for imported in self.imported_paths(summary):
                    reverse.setdefault(imported, set()).add(summary.path)
            self._reverse = reverse
        affected: Set[str] = set()
        queue = [p for p in paths if p in self.summaries]
        while queue:
            current = queue.pop()
            for dependant in self._reverse.get(current, ()):
                if dependant not in affected:
                    affected.add(dependant)
                    queue.append(dependant)
        return affected

    # -- symbol resolution ----------------------------------------------------
    def resolve(self, dotted: str, *, _depth: int = 0) -> Optional[Resolved]:
        """Resolve ``dotted`` to a project symbol, chasing re-exports.

        ``repro.exec.RunPlan`` resolves through ``exec/__init__.py``'s
        ``from repro.exec.plan import RunPlan`` to the class in
        ``plan.py``; bare names resolve only when qualified by the
        caller (use :meth:`resolve_from`).
        """
        if not dotted or _depth > 8:
            return None
        direct = self.find_module(dotted)
        if direct is not None:
            summary = self.summaries[direct]
            return Resolved(direct, summary.module, "module", "")
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            path = self.find_module(prefix)
            if path is None:
                continue
            summary = self.summaries[path]
            symbol = ".".join(parts[split:])
            found = self._resolve_in(summary, symbol, _depth)
            if found is not None:
                return found
        return None

    def resolve_from(
        self, summary: ModuleSummary, dotted: str
    ) -> Optional[Resolved]:
        """Resolve a name as written inside ``summary``'s module."""
        if "." not in dotted:
            found = self._resolve_in(summary, dotted, 0)
            if found is not None:
                return found
        return self.resolve(dotted)

    def _resolve_in(
        self, summary: ModuleSummary, symbol: str, depth: int
    ) -> Optional[Resolved]:
        if symbol in summary.functions:
            return Resolved(summary.path, summary.module, "function", symbol)
        if symbol in summary.classes:
            return Resolved(summary.path, summary.module, "class", symbol)
        head, _, rest = symbol.partition(".")
        if head in summary.classes and rest:
            qualname = f"{head}.{rest}"
            if qualname in summary.functions:
                return Resolved(
                    summary.path, summary.module, "function", qualname
                )
            return Resolved(summary.path, summary.module, "class", head)
        if head in summary.from_imports:
            origin = summary.from_imports[head]
            target = origin + (f".{rest}" if rest else "")
            return self.resolve(target, _depth=depth + 1)
        if head in summary.module_mutables or \
                head in summary.module_unpicklables:
            return Resolved(summary.path, summary.module, "value", head)
        return None

    # -- call graph ------------------------------------------------------------
    def _function_key(self, path: str, qualname: str) -> str:
        return f"{path}::{qualname}"

    def function(self, key: str) -> Optional[FunctionInfo]:
        path, _, qualname = key.partition("::")
        summary = self.summaries.get(path)
        if summary is None:
            return None
        if qualname == "<module>":
            return summary.module_frame
        return summary.functions.get(qualname)

    def call_edges(self) -> Dict[str, Set[str]]:
        """Approximate call graph: function key → callee function keys."""
        if self._edges is not None:
            return self._edges
        edges: Dict[str, Set[str]] = {}
        for summary in self.summaries.values():
            for info in summary.all_functions():
                key = self._function_key(summary.path, info.qualname)
                targets = edges.setdefault(key, set())
                for fact in info.calls:
                    if fact.callee is not None:
                        resolved = self.resolve_from(summary, fact.callee)
                        if resolved is not None and \
                                resolved.kind == "function":
                            targets.add(
                                self._function_key(
                                    resolved.path, resolved.name
                                )
                            )
                        elif resolved is not None and resolved.kind == "class":
                            init = f"{resolved.name}.__init__"
                            target_summary = self.summaries[resolved.path]
                            if init in target_summary.functions:
                                targets.add(
                                    self._function_key(resolved.path, init)
                                )
                    elif fact.attr and fact.attr not in _COMMON_METHODS:
                        # Unresolved method call: over-approximate with
                        # every same-named method in the project.
                        for path, qualname in self._method_index.get(
                            fact.attr, ()
                        ):
                            if "." in qualname:  # methods only
                                targets.add(
                                    self._function_key(path, qualname)
                                )
        self._edges = edges
        return edges

    def worker_roots(self, suffixes: Sequence[str]) -> Set[str]:
        """Function keys acting as parallel-execution entry points.

        A function is a root when its dotted name ends with one of
        ``suffixes`` (the executor-side plan runner), when it is handed
        to a pool (``submit``/``map``/``target=``), or when it is
        registered as an engine's ``run_plan`` implementation.
        """
        roots: Set[str] = set()
        for summary in self.summaries.values():
            for info in summary.functions.values():
                full = (
                    f"{summary.module}.{info.qualname}"
                    if summary.module else info.qualname
                )
                if any(
                    full == suffix or full.endswith("." + suffix)
                    for suffix in suffixes
                ):
                    roots.add(self._function_key(summary.path, info.qualname))
            for ref in summary.roots:
                resolved = self.resolve_from(summary, ref)
                if resolved is not None and resolved.kind == "function":
                    roots.add(
                        self._function_key(resolved.path, resolved.name)
                    )
        return roots

    def reachable(self, roots: Set[str]) -> Set[str]:
        """Function keys reachable from ``roots`` over the call graph."""
        edges = self.call_edges()
        seen: Set[str] = set()
        queue = [root for root in roots if root in edges]
        seen.update(queue)
        while queue:
            current = queue.pop()
            for target in edges.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen
