"""The incremental whole-program lint engine.

Each file is read and parsed at most once per content hash.  One walk
over the AST dispatches every node to the registered file rules; a
second, summary-building walk distils the module into the plain-data
facts (:class:`~repro.lint.project.ModuleSummary`) that the
cross-module rules consume through a
:class:`~repro.lint.project.ProjectModel`.

Everything a lint run derives from a file — its diagnostics, its
``# repro: noqa`` table, its module summary — is JSON-serialisable, so
:class:`LintCache` can persist it keyed by content hash.  A warm run
over an unchanged tree re-parses *nothing*: per-file results come from
the cache, and the cross-module phase is either served from its own
cached entry (keyed by the digest of every file hash) or re-run over
cached summaries.  When files did change, the cross-module phase
re-analyzes them together with their transitive reverse dependencies —
the modules whose cross-module conclusions the edit can invalidate.

Finally ``# repro: noqa[CODE]`` comments (found with :mod:`tokenize`,
so string literals that merely *mention* noqa do not count) filter the
collected diagnostics by line, and RL014 reports the suppressions that
no longer suppress anything.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig, path_in_scope
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import (
    ModuleSummary,
    ProjectModel,
    summarize_module,
)
from repro.lint.registry import Rule, file_rules, project_rules

#: Matches the suppression comment: bare ``repro: noqa`` (every code)
#: or ``repro: noqa[RL001]`` / ``repro: noqa[RL001, RL004]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?",
)

#: Marker meaning "suppress every code on this line".
_ALL_CODES = "*"

#: The dead-suppression rule the engine implements itself.
_DEAD_NOQA_CODE = "RL014"

#: Bump to invalidate every existing cache (format or semantics change).
CACHE_VERSION = 2


class FileContext:
    """Everything a file-scoped rule may consult while checking a node."""

    def __init__(self, path: str, tree: ast.Module, config: LintConfig):
        self.path = path.replace("\\", "/")
        self.config = config
        self.diagnostics: List[Diagnostic] = []
        # alias → dotted module for `import numpy as np`;
        # name → dotted origin for `from time import perf_counter`.
        self.module_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        self._index_imports(tree)

    def _index_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # -- name resolution -----------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name for a Name/Attribute chain, import-aware.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` aliases ``numpy``; an
        unimported bare name resolves to itself, which still catches
        the classic forgot-the-import hazards.
        """
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        if isinstance(node, ast.Name):
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            if node.id in self.module_aliases:
                return self.module_aliases[node.id]
            return node.id
        return None

    # -- scope / reporting ---------------------------------------------------
    def applies(self, rule: Rule) -> bool:
        """Whether ``rule`` runs on this file at all (scope + allowlist)."""
        if rule.scoped and not path_in_scope(self.path, self.config.scope):
            return False
        return not self.config.is_allowed(rule.code, self.path)

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )


# ---------------------------------------------------------------------------
# noqa scanning (tokenize-based: comments only, never string literals)
# ---------------------------------------------------------------------------

@dataclass
class NoqaEntry:
    """One ``# repro: noqa`` comment: where it sits and what it names."""

    col: int
    codes: Set[str]

    def to_jsonable(self) -> Dict:
        return {"col": self.col, "codes": sorted(self.codes)}

    @classmethod
    def from_jsonable(cls, data: Dict) -> "NoqaEntry":
        return cls(col=data["col"], codes=set(data["codes"]))


def _entry_from_match(match: "re.Match[str]", col: int) -> NoqaEntry:
    codes = match.group("codes")
    if codes is None:
        return NoqaEntry(col=col, codes={_ALL_CODES})
    return NoqaEntry(
        col=col,
        codes={
            token.strip().upper()
            for token in codes.split(",")
            if token.strip()
        },
    )


def scan_noqa(source: str) -> Dict[int, NoqaEntry]:
    """Map line number → the noqa suppression declared on that line.

    Comments are found with :mod:`tokenize`, so a *string literal*
    containing ``# repro: noqa`` (a lint-rule fixture, a docstring
    example) neither suppresses anything nor counts as a suppression
    for RL014.  Unparseable source falls back to a line-regex scan.
    """
    suppressed: Dict[int, NoqaEntry] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match:
                suppressed[lineno] = _entry_from_match(
                    match, match.start() + 1
                )
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match:
            lineno, col = token.start
            suppressed[lineno] = _entry_from_match(
                match, col + match.start() + 1
            )
    return suppressed


def _apply_noqa(
    diagnostics: Iterable[Diagnostic],
    noqa_by_path: Dict[str, Dict[int, NoqaEntry]],
) -> List[Diagnostic]:
    kept = []
    for diagnostic in diagnostics:
        entry = noqa_by_path.get(diagnostic.path, {}).get(diagnostic.line)
        if entry and (
            _ALL_CODES in entry.codes or diagnostic.code in entry.codes
        ):
            continue
        kept.append(diagnostic)
    return kept


def _dead_noqa(
    config: LintConfig,
    noqa_by_path: Dict[str, Dict[int, NoqaEntry]],
    diagnostics: Iterable[Diagnostic],
) -> List[Diagnostic]:
    """RL014: suppressions that no longer suppress any finding."""
    if not config.is_enabled(_DEAD_NOQA_CODE):
        return []
    fired: Dict[Tuple[str, int], Set[str]] = {}
    for diagnostic in diagnostics:
        fired.setdefault(
            (diagnostic.path, diagnostic.line), set()
        ).add(diagnostic.code)
    found: List[Diagnostic] = []
    for path, entries in noqa_by_path.items():
        if config.is_allowed(_DEAD_NOQA_CODE, path):
            continue
        for line, entry in entries.items():
            live = fired.get((path, line), set())
            if _ALL_CODES in entry.codes:
                if live:
                    continue
                message = (
                    "blanket '# repro: noqa' suppresses nothing on this "
                    "line; delete it (and scope future suppressions to "
                    "codes)"
                )
            else:
                dead = sorted(entry.codes - live)
                if not dead:
                    continue
                message = (
                    f"dead suppression: {', '.join(dead)} never fire"
                    f"{'s' if len(dead) == 1 else ''} on this line; "
                    "delete the stale code(s) from the noqa comment"
                )
            found.append(
                Diagnostic(path, line, entry.col, _DEAD_NOQA_CODE, message)
            )
    return found


# ---------------------------------------------------------------------------
# Per-file analysis
# ---------------------------------------------------------------------------

@dataclass
class FileAnalysis:
    """Everything one lint run derives from one file (cacheable)."""

    path: str
    digest: str
    diagnostics: List[Diagnostic] = field(default_factory=list)  # pre-noqa
    noqa: Dict[int, NoqaEntry] = field(default_factory=dict)
    summary: Optional[ModuleSummary] = None

    def to_jsonable(self) -> Dict:
        return {
            "path": self.path,
            "digest": self.digest,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "noqa": {
                str(line): entry.to_jsonable()
                for line, entry in self.noqa.items()
            },
            "summary": self.summary.to_dict() if self.summary else None,
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "FileAnalysis":
        return cls(
            path=data["path"],
            digest=data["digest"],
            diagnostics=[
                Diagnostic.from_dict(d) for d in data["diagnostics"]
            ],
            noqa={
                int(line): NoqaEntry.from_jsonable(entry)
                for line, entry in data["noqa"].items()
            },
            summary=(
                ModuleSummary.from_dict(data["summary"])
                if data["summary"]
                else None
            ),
        )


def _analyze_file(
    posix: str,
    raw: bytes,
    digest: str,
    config: LintConfig,
    rules: List[Rule],
) -> FileAnalysis:
    """Parse ``raw`` once and derive diagnostics + noqa + summary."""
    analysis = FileAnalysis(path=posix, digest=digest)
    try:
        source = raw.decode("utf-8")
    except UnicodeDecodeError as error:
        analysis.diagnostics.append(
            Diagnostic(posix, 1, 1, "RL000", f"unreadable file: {error}")
        )
        return analysis
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as error:
        analysis.diagnostics.append(
            Diagnostic(
                posix,
                error.lineno or 1,
                (error.offset or 0) or 1,
                "RL000",
                f"syntax error: {error.msg}",
            )
        )
        return analysis
    analysis.noqa = scan_noqa(source)
    analysis.diagnostics = _lint_tree(posix, tree, config, rules)
    analysis.summary = summarize_module(posix, tree)
    return analysis


def _lint_tree(
    path: str,
    tree: ast.Module,
    config: LintConfig,
    rules: Optional[List[Rule]] = None,
) -> List[Diagnostic]:
    """One walk of ``tree``, dispatching nodes to interested rules."""
    ctx = FileContext(path, tree, config)
    active = [
        rule
        for rule in (rules if rules is not None else file_rules())
        if config.is_enabled(rule.code) and ctx.applies(rule)
    ]
    if not active:
        return []
    dispatch: Dict[type, List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            for diagnostic in rule.check(node, ctx):
                ctx.diagnostics.append(diagnostic)
    return ctx.diagnostics


# ---------------------------------------------------------------------------
# The incremental cache
# ---------------------------------------------------------------------------

@dataclass
class LintStats:
    """What a :func:`lint_paths` run actually did (for --stats and CI)."""

    files: int = 0
    parsed: int = 0
    cache_hits: int = 0
    project_from_cache: bool = False
    reanalyzed: List[str] = field(default_factory=list)

    def describe(self) -> str:
        project = "cached" if self.project_from_cache else (
            f"re-analyzed {len(self.reanalyzed)} module(s)"
        )
        return (
            f"files={self.files} parsed={self.parsed} "
            f"cache-hits={self.cache_hits} cross-module: {project}"
        )


def _config_digest(config: LintConfig) -> str:
    from repro.lint.registry import available_rules

    payload = repr(
        (
            CACHE_VERSION,
            config.enabled,
            config.scope,
            sorted(config.allow.items()),
            config.exclude,
            tuple(code for code, _n, _r in available_rules()),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintCache:
    """Content-hash cache persisted under ``.repro-lint-cache/``.

    One JSON document holds a per-file table (keyed by path, validated
    by content hash) plus the cross-module phase's output keyed by the
    digest of every file hash.  A version/config digest guards the
    whole document: changing the rule set, the config, or the summary
    format invalidates everything at once.
    """

    FILENAME = "cache.json"

    def __init__(self, directory: Path, config: LintConfig):
        self.directory = Path(directory)
        self._config_key = _config_digest(config)
        self._files: Dict[str, Dict] = {}
        self._project: Dict[str, List[Dict]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        path = self.directory / self.FILENAME
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(document, dict):
            return
        if document.get("key") != self._config_key:
            return  # stale: different rules/config/cache version
        files = document.get("files")
        project = document.get("project")
        if isinstance(files, dict):
            self._files = files
        if isinstance(project, dict):
            self._project = project

    def get_file(self, posix: str, digest: str) -> Optional[FileAnalysis]:
        entry = self._files.get(posix)
        if not entry or entry.get("digest") != digest:
            return None
        try:
            return FileAnalysis.from_jsonable(entry)
        except (KeyError, TypeError, ValueError):
            return None

    def put_file(self, analysis: FileAnalysis) -> None:
        self._files[analysis.path] = analysis.to_jsonable()
        self._dirty = True

    def get_project(self, key: str) -> Optional[List[Diagnostic]]:
        entries = self._project.get(key)
        if entries is None:
            return None
        try:
            return [Diagnostic.from_dict(d) for d in entries]
        except (KeyError, TypeError, ValueError):
            return None

    def put_project(self, key: str, diagnostics: List[Diagnostic]) -> None:
        # One project entry suffices: a new key means the tree changed.
        self._project = {key: [d.to_dict() for d in diagnostics]}
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        # Drop entries whose file is gone (deleted files, tmp trees).
        self._files = {
            posix: entry
            for posix, entry in self._files.items()
            if os.path.exists(posix)
        }
        document = {
            "key": self._config_key,
            "files": self._files,
            "project": self._project,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / self.FILENAME
            path.write_text(
                json.dumps(document, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            return  # caching is best-effort; linting already succeeded
        self._dirty = False


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_source(
    path: str,
    source: str,
    *, config: Optional[LintConfig] = None,
    rules: Optional[List[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one module's source text (file rules only), noqa applied."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Diagnostic(
                path=path.replace("\\", "/"),
                line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                code="RL000",
                message=f"syntax error: {error.msg}",
            )
        ]
    diagnostics = _lint_tree(path, tree, config, rules)
    noqa = {path.replace("\\", "/"): scan_noqa(source)}
    return sorted(_apply_noqa(diagnostics, noqa))


def collect_files(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
) -> List[Path]:
    """Expand files/directories into the sorted list of lintable files."""
    config = config or LintConfig()
    found: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not config.is_excluded(str(candidate))
            )
        elif path.suffix == ".py" and not config.is_excluded(str(path)):
            found.append(path)
    # De-duplicate while keeping deterministic order.
    unique: List[Path] = []
    seen = set()
    for candidate in found:
        key = str(candidate)
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def _project_diagnostics(
    model: ProjectModel, config: LintConfig
) -> List[Diagnostic]:
    """Run every enabled cross-module rule, scope/allow filtered."""
    collected: List[Diagnostic] = []
    for rule in project_rules():
        if not config.is_enabled(rule.code):
            continue
        if getattr(rule, "engine_implemented", False):
            continue  # e.g. RL014: produced by the engine itself
        for diagnostic in rule.check_project(model, config):
            if rule.scoped and not path_in_scope(
                diagnostic.path, config.scope
            ):
                continue
            if config.is_allowed(rule.code, diagnostic.path):
                continue
            collected.append(diagnostic)
    return collected


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *, cache_dir: Optional[Path] = None,
    stats: Optional[LintStats] = None,
) -> List[Diagnostic]:
    """Lint files and directories; returns sorted, noqa-filtered findings.

    Runs the per-file rules in a single pass over each module, then the
    cross-module rules over the project model, then RL014 over the
    suppression table.  With ``cache_dir`` set, per-file analyses are
    served from / persisted to the content-hash cache and the
    cross-module phase is reused whenever no file changed; ``stats``
    (when given) is filled with what actually happened.
    """
    config = config or LintConfig()
    stats = stats if stats is not None else LintStats()
    cache = LintCache(cache_dir, config) if cache_dir is not None else None
    rules = file_rules()

    analyses: List[FileAnalysis] = []
    changed: List[str] = []
    for file_path in collect_files(paths, config):
        posix = str(file_path).replace("\\", "/")
        stats.files += 1
        try:
            raw = file_path.read_bytes()
        except OSError as error:
            analyses.append(
                FileAnalysis(
                    path=posix,
                    digest="",
                    diagnostics=[
                        Diagnostic(
                            posix, 1, 1, "RL000",
                            f"unreadable file: {error}",
                        )
                    ],
                )
            )
            changed.append(posix)
            stats.parsed += 1
            continue
        digest = hashlib.sha256(raw).hexdigest()
        cached = cache.get_file(posix, digest) if cache else None
        if cached is not None:
            analyses.append(cached)
            stats.cache_hits += 1
            continue
        analysis = _analyze_file(posix, raw, digest, config, rules)
        analyses.append(analysis)
        changed.append(posix)
        stats.parsed += 1
        if cache is not None:
            cache.put_file(analysis)

    diagnostics: List[Diagnostic] = []
    for analysis in analyses:
        diagnostics.extend(analysis.diagnostics)

    # -- cross-module phase -------------------------------------------------
    project_key = hashlib.sha256(
        repr(sorted((a.path, a.digest) for a in analyses)).encode("utf-8")
    ).hexdigest()
    project_diags = cache.get_project(project_key) if cache else None
    if project_diags is not None:
        stats.project_from_cache = True
    else:
        summaries = [a.summary for a in analyses if a.summary is not None]
        model = ProjectModel(summaries)
        if cache is not None and changed != [a.path for a in analyses]:
            affected = set(changed) | model.reverse_dependencies(changed)
            stats.reanalyzed = sorted(affected)
        else:
            stats.reanalyzed = [a.path for a in analyses]
        project_diags = _project_diagnostics(model, config)
        if cache is not None:
            cache.put_project(project_key, project_diags)
    diagnostics.extend(project_diags)

    # -- suppressions and their hygiene -------------------------------------
    noqa_by_path = {a.path: a.noqa for a in analyses if a.noqa}
    kept = _apply_noqa(diagnostics, noqa_by_path)
    kept.extend(_dead_noqa(config, noqa_by_path, diagnostics))

    if cache is not None:
        cache.save()
    return sorted(kept)
