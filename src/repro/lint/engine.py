"""The single-pass lint engine.

Each file is read and parsed exactly once.  One walk over the AST
dispatches every node to the registered rules interested in that node
type; a per-file import table lets rules resolve dotted call targets
(``_time.perf_counter`` → ``time.perf_counter``) without a second
pass.  Cross-module rules then run over the full set of parsed
modules.  Finally ``# repro: noqa[CODE]`` comments filter the
collected diagnostics by line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig, path_in_scope
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, file_rules, project_rules

#: ``# repro: noqa`` or ``# repro: noqa[RL001]`` or ``[RL001, RL004]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?",
)

#: Marker meaning "suppress every code on this line".
_ALL_CODES = "*"


class FileContext:
    """Everything a file-scoped rule may consult while checking a node."""

    def __init__(self, path: str, tree: ast.Module, config: LintConfig):
        self.path = path.replace("\\", "/")
        self.config = config
        self.diagnostics: List[Diagnostic] = []
        # alias → dotted module for `import numpy as np`;
        # name → dotted origin for `from time import perf_counter`.
        self.module_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        self._index_imports(tree)

    def _index_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # -- name resolution -----------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name for a Name/Attribute chain, import-aware.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` aliases ``numpy``; an
        unimported bare name resolves to itself, which still catches
        the classic forgot-the-import hazards.
        """
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        if isinstance(node, ast.Name):
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            if node.id in self.module_aliases:
                return self.module_aliases[node.id]
            return node.id
        return None

    # -- scope / reporting ---------------------------------------------------
    def applies(self, rule: Rule) -> bool:
        """Whether ``rule`` runs on this file at all (scope + allowlist)."""
        if rule.scoped and not path_in_scope(self.path, self.config.scope):
            return False
        return not self.config.is_allowed(rule.code, self.path)

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )


def scan_noqa(source: str) -> Dict[int, Set[str]]:
    """Map line number → codes suppressed on that line."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressed[lineno] = {_ALL_CODES}
        else:
            suppressed[lineno] = {
                token.strip().upper()
                for token in codes.split(",")
                if token.strip()
            }
    return suppressed


def _apply_noqa(
    diagnostics: Iterable[Diagnostic],
    noqa_by_path: Dict[str, Dict[int, Set[str]]],
) -> List[Diagnostic]:
    kept = []
    for diagnostic in diagnostics:
        codes = noqa_by_path.get(diagnostic.path, {}).get(diagnostic.line)
        if codes and (_ALL_CODES in codes or diagnostic.code in codes):
            continue
        kept.append(diagnostic)
    return kept


def lint_source(
    path: str,
    source: str,
    *, config: Optional[LintConfig] = None,
    rules: Optional[List[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one module's source text (file rules only), noqa applied."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Diagnostic(
                path=path.replace("\\", "/"),
                line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                code="RL000",
                message=f"syntax error: {error.msg}",
            )
        ]
    diagnostics = _lint_tree(path, tree, config, rules)
    noqa = {path.replace("\\", "/"): scan_noqa(source)}
    return sorted(_apply_noqa(diagnostics, noqa))


def _lint_tree(
    path: str,
    tree: ast.Module,
    config: LintConfig,
    rules: Optional[List[Rule]] = None,
) -> List[Diagnostic]:
    """One walk of ``tree``, dispatching nodes to interested rules."""
    ctx = FileContext(path, tree, config)
    active = [
        rule
        for rule in (rules if rules is not None else file_rules())
        if config.is_enabled(rule.code) and ctx.applies(rule)
    ]
    if not active:
        return []
    dispatch: Dict[type, List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            for diagnostic in rule.check(node, ctx):
                ctx.diagnostics.append(diagnostic)
    return ctx.diagnostics


def collect_files(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
) -> List[Path]:
    """Expand files/directories into the sorted list of lintable files."""
    config = config or LintConfig()
    found: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not config.is_excluded(str(candidate))
            )
        elif path.suffix == ".py" and not config.is_excluded(str(path)):
            found.append(path)
    # De-duplicate while keeping deterministic order.
    unique: List[Path] = []
    seen = set()
    for candidate in found:
        key = str(candidate)
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
) -> List[Diagnostic]:
    """Lint files and directories; returns sorted, noqa-filtered findings.

    Runs the per-file rules in a single pass over each module, then
    the cross-module rules over the complete parsed set.
    """
    config = config or LintConfig()
    diagnostics: List[Diagnostic] = []
    modules: Dict[str, ast.Module] = {}
    noqa_by_path: Dict[str, Dict[int, Set[str]]] = {}
    rules = file_rules()

    for file_path in collect_files(paths, config):
        posix = str(file_path).replace("\\", "/")
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            diagnostics.append(
                Diagnostic(posix, 1, 1, "RL000", f"unreadable file: {error}")
            )
            continue
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as error:
            diagnostics.append(
                Diagnostic(
                    posix,
                    error.lineno or 1,
                    (error.offset or 0) or 1,
                    "RL000",
                    f"syntax error: {error.msg}",
                )
            )
            continue
        modules[posix] = tree
        noqa_by_path[posix] = scan_noqa(source)
        diagnostics.extend(_lint_tree(posix, tree, config, rules))

    for project_rule in project_rules():
        if config.is_enabled(project_rule.code):
            diagnostics.extend(project_rule.check_project(modules, config))

    return sorted(_apply_noqa(diagnostics, noqa_by_path))
