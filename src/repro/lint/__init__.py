"""repro.lint — simulation-correctness static analysis.

The reproduction's figures are only trustworthy if two runs with the
same seed produce identical schedules, cache states, and response
times.  This package is a stdlib-only (:mod:`ast`-based) linter that
statically rejects the determinism hazards that silently break that
property — wall-clock reads, unseeded module-level RNGs, float
equality on simulation timestamps — plus the robustness and protocol
mistakes (mutable defaults, swallowed exceptions, partially
implemented cache policies) that corrupt results without failing a
test.

Usage::

    python -m repro.lint [paths ...]       # 0 clean / 1 findings / 2 usage
    python -m repro.lint --list-rules

or programmatically::

    from repro.lint import lint_paths, load_config
    diagnostics = lint_paths(["src"], load_config())

Per-line suppression uses ``# repro: noqa[CODE]`` (or bare
``# repro: noqa`` for every rule); project-wide allowlists live in the
``[tool.reprolint]`` table of ``pyproject.toml``.  See
``docs/LINTING.md`` for the rule catalogue and the rationale tying
each rule to reproducibility.
"""

from __future__ import annotations

from repro.lint.config import LintConfig, load_config
from repro.lint.diagnostics import Diagnostic, format_diagnostics, to_sarif
from repro.lint.engine import (
    LintStats,
    collect_files,
    lint_paths,
    lint_source,
)
from repro.lint.project import ProjectModel, summarize_module
from repro.lint.registry import available_rules

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintStats",
    "ProjectModel",
    "available_rules",
    "collect_files",
    "format_diagnostics",
    "lint_paths",
    "lint_source",
    "load_config",
    "summarize_module",
    "to_sarif",
]
