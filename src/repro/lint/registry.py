"""Rule base classes and the registry the engine dispatches from.

Two kinds of rule exist:

* :class:`Rule` — file-scoped, fed individual AST nodes during the
  engine's single pass over each module;
* :class:`ProjectRule` — cross-module, handed the whole-program
  :class:`~repro.lint.project.ProjectModel` (e.g. RL006's
  policy-protocol check, which must see both ``cache/base.py`` and
  ``cache/registry.py``, or RL010's RNG-provenance dataflow).

Rules self-register via the :func:`register` decorator; importing
:mod:`repro.lint.rules` populates the registry.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Tuple, Type, Union

from repro.lint.diagnostics import Diagnostic


class Rule:
    """A file-scoped check dispatched per AST node type.

    Attributes
    ----------
    code:
        Stable diagnostic code (``RLxxx``) used in output, ``noqa``
        suppressions, and the config's ``enabled``/``allow`` tables.
    name:
        Short human name for ``--list-rules``.
    rationale:
        One-line tie back to determinism/reproducibility.
    scoped:
        True when the rule only applies inside ``config.scope`` (the
        simulator source tree) — the determinism rules are scoped, the
        robustness rules are not.
    node_types:
        AST node classes this rule wants to see.
    """

    code: str = "RL000"
    name: str = "abstract"
    rationale: str = ""
    scoped: bool = False
    node_types: Tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: "FileContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.code}>"


class ProjectRule:
    """A cross-module check run once over the whole linted file set.

    ``check_project`` receives a
    :class:`~repro.lint.project.ProjectModel` built from every linted
    module's summary — plain data, so the engine can serve it from the
    incremental cache without re-parsing anything.  Diagnostics from a
    ``scoped`` project rule are filtered to ``config.scope`` (and the
    per-rule allowlist) by the engine, keyed on each diagnostic's path.
    """

    code: str = "RL000"
    name: str = "abstract"
    rationale: str = ""
    scoped: bool = False

    def check_project(self, model, config) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.code}>"


_FILE_RULES: List[Type[Rule]] = []
_PROJECT_RULES: List[Type[ProjectRule]] = []

AnyRule = Union[Type[Rule], Type[ProjectRule]]


def register(rule_class: AnyRule) -> AnyRule:
    """Class decorator adding a rule to the registry (idempotent)."""
    if issubclass(rule_class, Rule):
        if rule_class not in _FILE_RULES:
            _FILE_RULES.append(rule_class)
    elif issubclass(rule_class, ProjectRule):
        if rule_class not in _PROJECT_RULES:
            _PROJECT_RULES.append(rule_class)
    else:  # pragma: no cover - developer error
        raise TypeError(f"{rule_class!r} is neither Rule nor ProjectRule")
    return rule_class


def _ensure_loaded() -> None:
    # Deferred so `import repro.lint.registry` alone has no side effects.
    import repro.lint.rules  # noqa: F401  (registration side effect)


def file_rules() -> List[Rule]:
    """Fresh instances of every registered file-scoped rule."""
    _ensure_loaded()
    return [cls() for cls in _FILE_RULES]


def project_rules() -> List[ProjectRule]:
    """Fresh instances of every registered cross-module rule."""
    _ensure_loaded()
    return [cls() for cls in _PROJECT_RULES]


def available_rules() -> List[Tuple[str, str, str]]:
    """(code, name, rationale) for every registered rule, sorted."""
    _ensure_loaded()
    rows: Iterable[AnyRule] = [*_FILE_RULES, *_PROJECT_RULES]
    return sorted(
        (cls.code, cls.name, cls.rationale) for cls in rows
    )
