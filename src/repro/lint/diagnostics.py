"""Diagnostic records and their text/JSON renderings."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why.

    Ordering is (path, line, col, code) so a sorted report reads
    top-to-bottom through each file.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The canonical ``file:line:col CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for ``--format json`` consumers."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            code=str(data["code"]),
            message=str(data["message"]),
        )


#: SARIF 2.1.0 boilerplate (the schema CI's upload-sarif action expects).
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_VERSION = "2.1.0"
_TOOL_NAME = "repro.lint"
_TOOL_URI = "docs/LINTING.md"


def to_sarif(diagnostics: Iterable[Diagnostic]) -> Dict[str, object]:
    """Render ``diagnostics`` as a SARIF 2.1.0 log (one run).

    The rule catalogue is embedded in ``tool.driver.rules`` so viewers
    (GitHub code scanning among them) can show each rule's name and
    rationale; every result carries a ``ruleIndex`` into that array.
    """
    # Imported lazily: the registry imports this module for Diagnostic.
    from repro.lint.registry import available_rules

    catalogue = available_rules()
    index = {code: i for i, (code, _name, _rationale) in enumerate(catalogue)}
    rules = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": name},
            "fullDescription": {"text": rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for code, name, rationale in catalogue
    ]
    results = []
    for diagnostic in sorted(diagnostics):
        result: Dict[str, object] = {
            "ruleId": diagnostic.code,
            "level": "error",
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diagnostic.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diagnostic.line,
                            "startColumn": diagnostic.col,
                        },
                    }
                }
            ],
        }
        if diagnostic.code in index:
            result["ruleIndex"] = index[diagnostic.code]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_diagnostics(
    diagnostics: Iterable[Diagnostic],
    fmt: str = "text",
) -> str:
    """Render diagnostics as ``text`` lines, ``json``, or ``sarif``."""
    ordered: List[Diagnostic] = sorted(diagnostics)
    if fmt == "json":
        return json.dumps(
            {
                "diagnostics": [d.to_dict() for d in ordered],
                "count": len(ordered),
            },
            indent=2,
        )
    if fmt == "sarif":
        return json.dumps(to_sarif(ordered), indent=2)
    if fmt == "text":
        return "\n".join(d.format() for d in ordered)
    raise ValueError(f"unknown diagnostic format {fmt!r}")
