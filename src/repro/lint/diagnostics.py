"""Diagnostic records and their text/JSON renderings."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why.

    Ordering is (path, line, col, code) so a sorted report reads
    top-to-bottom through each file.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The canonical ``file:line:col CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for ``--format json`` consumers."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def format_diagnostics(
    diagnostics: Iterable[Diagnostic],
    fmt: str = "text",
) -> str:
    """Render ``diagnostics`` as ``text`` lines or a ``json`` document."""
    ordered: List[Diagnostic] = sorted(diagnostics)
    if fmt == "json":
        return json.dumps(
            {
                "diagnostics": [d.to_dict() for d in ordered],
                "count": len(ordered),
            },
            indent=2,
        )
    if fmt == "text":
        return "\n".join(d.format() for d in ordered)
    raise ValueError(f"unknown diagnostic format {fmt!r}")
