"""Cross-module dataflow rules: RL010 RNG provenance, RL013 order folds.

RL010 is a taint-style provenance check over the project model: every
``random.Random`` / ``numpy.random`` generator that *flows into* code
defined in this project must originate from the seeded-stream
discipline (``RandomStreams`` / ``derive_seed``).  Unlike RL002 —
which flags the unmanaged construction site itself — RL010 follows the
value: through local variables, through function returns (a helper
returning ``numpy.random.default_rng(...)`` taints every caller, across
modules and re-exports), and into the call that hands it to simulation
code.

One construction is exempt: a **seeded gateway** — a function that
returns a ``Generator`` built from an *explicitly-seeded* bit-generator
chain, ``Generator(PCG64(SeedSequence(<entropy>)))`` or
``default_rng(SeedSequence(<entropy>))``.  That is the batch engine's
array-RNG recipe (``repro.batch.rng``): the entropy argument carries
the ``derive_seed`` provenance, so the generators it mints are as
seed-coupled as a ``RandomStreams`` stream.  A bare ``SeedSequence()``
(OS entropy) does not qualify, and inlining the chain at a simulation
call site is still flagged — the exemption is for gateway *functions*,
keeping construction auditable in one place.

RL013 flags iteration whose order the platform, not the seed, decides:
unsorted filesystem listings (``os.listdir``, ``glob.glob``,
``Path.iterdir``/``glob``/``rglob``) and folds over ``set`` values.
Aggregates, manifests, and JSON output built from such iteration differ
between machines with identical seeds — the exact failure mode the
byte-identity gates exist to catch.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleSummary, ProjectModel
from repro.lint.registry import ProjectRule, register

#: Constructors whose result is an RNG outside the stream discipline.
TAINTED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)

#: Origin markers proving a value came from the seeded-stream gateway.
_BLESSED_MARKERS = ("RandomStreams", "derive_seed", "build_streams")
_BLESSED_TAILS = (".stream", ".fork")

#: Dotted names of the numpy seeding chain a gateway must thread.
_GENERATOR = "numpy.random.Generator"
_DEFAULT_RNG = "numpy.random.default_rng"
_PCG64 = "numpy.random.PCG64"
_SEED_SEQUENCE = "numpy.random.SeedSequence"


def _is_blessed(origin: str) -> bool:
    base = origin[:-len("[...]")] if origin.endswith("[...]") else origin
    return any(marker in base for marker in _BLESSED_MARKERS) or \
        base.endswith(_BLESSED_TAILS)


@register
class RngProvenanceRule(ProjectRule):
    """RL010 — every RNG reaching project code is stream-derived."""

    code = "RL010"
    name = "rng-provenance"
    rationale = (
        "an RNG minted outside RandomStreams/derive_seed and passed "
        "into simulation code decouples results from the experiment "
        "seed, across any number of module boundaries"
    )
    scoped = True

    def check_project(
        self,
        model: ProjectModel,
        config,
    ) -> Iterator[Diagnostic]:
        producers = self._tainted_producers(model)
        for path in sorted(model.summaries):
            summary = model.summaries[path]
            for info in summary.all_functions():
                for fact in info.calls:
                    if fact.callee is None:
                        continue
                    callee = model.resolve_from(summary, fact.callee)
                    if callee is None or callee.kind not in (
                        "function", "class"
                    ):
                        continue
                    if _is_blessed(fact.callee):
                        continue
                    for origin in fact.arg_origins:
                        if origin is None:
                            continue
                        if not self._is_tainted(
                            model, summary, origin, producers
                        ):
                            continue
                        display = origin[:-len("[...]")] \
                            if origin.endswith("[...]") else origin
                        yield Diagnostic(
                            path,
                            fact.lineno,
                            fact.col,
                            self.code,
                            f"RNG from {display}() flows into "
                            f"{fact.callee}() without RandomStreams/"
                            "derive_seed provenance; draw generators "
                            "from the seeded stream factory so results "
                            "stay coupled to the experiment seed",
                        )
                        break  # one diagnostic per call site

    def _tainted_producers(self, model: ProjectModel) -> Set[str]:
        """Function keys returning an unmanaged RNG, to a fixpoint.

        Round one marks direct constructors (``return default_rng(7)``);
        later rounds propagate through wrappers that return a tainted
        producer's result, across modules.
        """
        producers: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for path in sorted(model.summaries):
                summary = model.summaries[path]
                for qualname, info in summary.functions.items():
                    key = f"{path}::{qualname}"
                    if key in producers:
                        continue
                    if self._is_seeded_gateway(info):
                        continue
                    for origin in info.returns:
                        if self._is_tainted(
                            model, summary, origin, producers
                        ):
                            producers.add(key)
                            changed = True
                            break
        return producers

    @staticmethod
    def _is_seeded_gateway(info) -> bool:
        """True when ``info`` mints its RNG via an explicit seed chain.

        The recognised shapes (arguments may flow through locals — the
        extractor resolves variable origins back to the producing call):

        * ``Generator(PCG64(SeedSequence(<entropy>)))``
        * ``default_rng(SeedSequence(<entropy>))``

        ``SeedSequence`` must receive at least one argument; a bare
        ``SeedSequence()`` draws OS entropy and stays tainted.  Such a
        function is excluded from the producer fixpoint, so both it and
        wrappers returning its result are clean origins.
        """
        seeded_sequence = any(
            fact.callee == _SEED_SEQUENCE and len(fact.arg_origins) >= 1
            for fact in info.calls
        )
        if not seeded_sequence:
            return False
        for fact in info.calls:
            if (fact.callee == _DEFAULT_RNG and fact.arg_origins
                    and fact.arg_origins[0] == _SEED_SEQUENCE):
                return True
            if (fact.callee == _GENERATOR and fact.arg_origins
                    and fact.arg_origins[0] == _PCG64):
                if any(
                    inner.callee == _PCG64 and inner.arg_origins
                    and inner.arg_origins[0] == _SEED_SEQUENCE
                    for inner in info.calls
                ):
                    return True
        return False

    def _is_tainted(
        self,
        model: ProjectModel,
        summary: ModuleSummary,
        origin: str,
        producers: Set[str],
    ) -> bool:
        base = origin[:-len("[...]")] if origin.endswith("[...]") else origin
        if base in TAINTED_CONSTRUCTORS:
            return True
        if _is_blessed(base):
            return False
        resolved = model.resolve_from(summary, base)
        if resolved is not None and resolved.kind == "function":
            return f"{resolved.path}::{resolved.name}" in producers
        return False


@register
class UnorderedFoldRule(ProjectRule):
    """RL013 — no platform-ordered iteration feeding results."""

    code = "RL013"
    name = "unordered-fold"
    rationale = (
        "filesystem listing order and set iteration order are decided "
        "by the OS and the hash seed, not the experiment seed; folding "
        "them into aggregates, manifests, or JSON output breaks "
        "byte-identity between identically-seeded runs"
    )
    scoped = True

    def check_project(
        self,
        model: ProjectModel,
        config,
    ) -> Iterator[Diagnostic]:
        for path in sorted(model.summaries):
            for hazard in model.summaries[path].order_hazards:
                if hazard.kind == "listing":
                    message = (
                        f"unsorted filesystem listing {hazard.detail} "
                        "yields OS-dependent order; wrap it in sorted() "
                        "before it feeds a fold, manifest, or JSON output"
                    )
                else:
                    message = (
                        f"iterating {hazard.detail} folds results in "
                        "nondeterministic set order; sort the elements "
                        "before accumulating"
                    )
                yield Diagnostic(
                    path, hazard.lineno, hazard.col, self.code, message
                )
