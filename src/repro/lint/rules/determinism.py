"""Determinism rules: RL001 wall-clock, RL002 stray RNGs, RL003 float==.

These three are *scoped* rules: they police the simulator source tree
(``[tool.reprolint] scope``, default ``src/repro``).  Test code
legitimately builds throwaway generators and asserts exact analytic
floats, so the scope keeps the signal clean.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.registry import Rule, register

#: Calls that read the host's clock.  Any of these inside the simulator
#: couples results to the machine's speed or the time of day.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module prefixes whose callables draw from process-global RNG state
#: (or mint fresh generators outside the seeded-stream discipline).
RNG_MODULE_PREFIXES = ("random.", "numpy.random.")
RNG_MODULES = ("random", "numpy.random")


@register
class WallClockRule(Rule):
    """RL001 — no wall-clock reads inside the simulator."""

    code = "RL001"
    name = "wall-clock-read"
    rationale = (
        "simulated time must come from the event kernel; a host clock "
        "read makes two identically-seeded runs diverge"
    )
    scoped = True
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Diagnostic]:
        resolved = ctx.resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            yield Diagnostic(
                ctx.path,
                node.lineno,
                node.col_offset + 1,
                self.code,
                f"wall-clock read {resolved}() in simulator code; use the "
                "event kernel's simulated clock (or allowlist this file "
                "in [tool.reprolint])",
            )


@register
class UnseededRandomRule(Rule):
    """RL002 — all randomness flows through ``sim/rng.py``."""

    code = "RL002"
    name = "unmanaged-rng"
    rationale = (
        "every random draw must come from a named, seeded stream "
        "(repro.sim.rng.RandomStreams) so adding one consumer never "
        "perturbs another's sequence"
    )
    scoped = True
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in RNG_MODULES or alias.name.startswith(
                    "numpy.random."
                ):
                    yield self._diagnostic(node, ctx, f"import of {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            names = {alias.name for alias in node.names}
            if (
                module in RNG_MODULES
                or module.startswith("numpy.random.")
                or (module == "numpy" and "random" in names)
            ):
                yield self._diagnostic(node, ctx, f"import from {module or '.'}")
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved and resolved.startswith(RNG_MODULE_PREFIXES):
                yield self._diagnostic(node, ctx, f"call to {resolved}()")

    def _diagnostic(
        self, node: ast.AST, ctx: FileContext, what: str
    ) -> Diagnostic:
        return Diagnostic(
            ctx.path,
            node.lineno,
            node.col_offset + 1,
            self.code,
            f"{what} bypasses the seeded stream discipline; draw from "
            "repro.sim.rng.RandomStreams instead",
        )


#: Identifier tokens that mark an expression as simulation-time-like.
TIME_TOKENS: Set[str] = {
    "time",
    "times",
    "now",
    "clock",
    "timestamp",
    "tick",
    "ticks",
    "deadline",
    "arrival",
    "arrivals",
    "departure",
    "start",
    "finish",
    "elapsed",
    "delay",
    "latency",
    "instant",
    "expiry",
    "expires",
    "when",
}


def _name_hint(node: ast.AST) -> Optional[str]:
    """The identifier that best names what ``node`` evaluates to."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _name_hint(node.func)
    if isinstance(node, ast.Subscript):
        return _name_hint(node.value)
    if isinstance(node, ast.UnaryOp):
        return _name_hint(node.operand)
    if isinstance(node, ast.BinOp):
        return _name_hint(node.left) or _name_hint(node.right)
    return None


def _is_time_like(node: ast.AST) -> bool:
    hint = _name_hint(node)
    if hint is None:
        return False
    if hint == "t":
        return True
    tokens = hint.lower().split("_")
    return any(token in TIME_TOKENS for token in tokens)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Unary minus on a float literal: `-1.0`.
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


@register
class FloatTimeEqualityRule(Rule):
    """RL003 — no ``==``/``!=`` between sim-time expressions and floats."""

    code = "RL003"
    name = "float-time-equality"
    rationale = (
        "simulated timestamps accumulate floating-point error; exact "
        "comparison works on one machine and silently fails on another "
        "— compare with a tolerance or integer broadcast units"
    )
    scoped = True
    node_types = (ast.Compare,)

    def check(self, node: ast.Compare, ctx: FileContext) -> Iterator[Diagnostic]:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                pair = (left, right)
                if any(_is_float_literal(side) for side in pair) and any(
                    _is_time_like(side) for side in pair
                ):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield Diagnostic(
                        ctx.path,
                        node.lineno,
                        node.col_offset + 1,
                        self.code,
                        f"exact {symbol} between a simulation-time "
                        "expression and a float literal; use math.isclose "
                        "or an integer time base",
                    )
                    break
            left = right
