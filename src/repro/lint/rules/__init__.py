"""Rule modules; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401
    api,
    dataflow,
    determinism,
    hygiene,
    parallel,
    plans,
    protocol,
    robustness,
)
