"""Rule modules; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import determinism, protocol, robustness  # noqa: F401
