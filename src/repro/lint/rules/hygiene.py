"""RL014 — dead ``# repro: noqa[...]`` suppressions.

A suppression that no longer suppresses anything is worse than noise:
it advertises a hazard that is not there, and it silently re-arms if
the code around it changes.  The check itself lives in the engine
(:func:`repro.lint.engine.lint_paths`), because deciding whether a
suppression fires requires the complete pre-suppression diagnostic set
— file rules *and* cross-module rules — plus the per-line noqa table.
This class carries the rule's identity for the registry: the catalogue
(``--list-rules``), the ``enabled`` table, and per-rule allowlists.

RL014 diagnostics are deliberately *not* themselves suppressible with
``# repro: noqa[RL014]`` — the fix for a dead suppression is deleting
the comment, and a self-referential suppression would always be alive.
Use the config allowlist for a file that must keep speculative noqas.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectModel
from repro.lint.registry import ProjectRule, register


@register
class DeadNoqaRule(ProjectRule):
    """RL014 — every ``# repro: noqa`` must suppress a live finding."""

    code = "RL014"
    name = "dead-noqa"
    rationale = (
        "a noqa comment whose codes never fire hides nothing today and "
        "hides a real regression tomorrow; suppressions must stay "
        "tied to a live finding"
    )
    scoped = False

    #: Marker consulted by the engine: the diagnostics are produced
    #: there, after the full pre-suppression set is known.
    engine_implemented = True

    def check_project(self, model: ProjectModel, config) -> Iterator[Diagnostic]:
        return iter(())
