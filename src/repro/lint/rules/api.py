"""RL008 — public option arguments must be keyword-only.

The 1.1 API redesign made every public entry point take its options as
keywords (``run_experiment(config, engine="fast")``, never
``run_experiment(config, "fast")``): positional options silently change
meaning when a parameter is inserted, and a fleet-scale call site with
five anonymous literals is unreviewable.  This rule keeps the surface
that way: a *public module-level function* whose signature has two or
more defaulted positional-or-keyword parameters — options that a caller
could still pass positionally — is flagged until the options move
behind a ``*`` marker.

Methods are exempt (natural positional use like ``stats.add(value)`` or
``sim.run(until)``), as are private helpers and functions with a single
defaulted parameter (no ordering ambiguity to defend against).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.registry import Rule, register

#: Defaulted positional-or-keyword parameters a public function may
#: keep before the rule demands a ``*`` marker.
_MAX_POSITIONAL_OPTIONS = 1


@register
class KeywordOnlyOptionsRule(Rule):
    """RL008 — public functions must take their options keyword-only."""

    code = "RL008"
    name = "keyword-only-options"
    rationale = (
        "positional option arguments silently change meaning when the "
        "signature grows; public entry points take options as keywords "
        "so call sites stay reviewable and insert-safe"
    )
    scoped = True
    node_types = (ast.Module,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        # Walk only the module's top-level statements: methods and
        # nested helpers are exempt by construction.
        for statement in node.body:
            if not isinstance(statement, ast.FunctionDef):
                continue
            if statement.name.startswith("_"):
                continue
            arguments = statement.args
            # ``defaults`` aligns to the tail of posonly + positional-or-
            # keyword params; every one of them is an option a caller
            # could pass positionally.
            positional_options = len(arguments.defaults)
            if positional_options <= _MAX_POSITIONAL_OPTIONS:
                continue
            names = [
                parameter.arg
                for parameter in (*arguments.posonlyargs, *arguments.args)
            ][-positional_options:]
            yield Diagnostic(
                ctx.path,
                statement.lineno,
                statement.col_offset + 1,
                self.code,
                f"public function {statement.name!r} exposes "
                f"{positional_options} option arguments "
                f"({', '.join(names)}) positionally; put them behind a "
                "'*' marker so calls must name them",
            )
