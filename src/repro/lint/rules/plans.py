"""RL007 — plans must stay picklable (executor-safe).

The execution layer ships :class:`repro.exec.plan.RunPlan` objects —
and therefore the :class:`ExperimentConfig` they wrap — across process
boundaries.  A lambda, a locally-defined closure, or an open file
handle stored on a plan field pickles either not at all or (worse) as
a dangling reference, so the sweep works serially and then dies (or
silently diverges) the first time someone passes ``jobs=2``.

This rule inspects every ``ExperimentConfig(...)`` / ``RunPlan(...)``
construction, every ``.with_(...)`` update, and every
``dataclasses.replace(...)`` call, and flags argument values that are
statically non-picklable:

* lambda expressions;
* references to locally-defined (nested) functions — picklable only
  by qualified name, which multiprocessing cannot resolve;
* ``open(...)`` calls — a live file handle.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.registry import Rule, register

#: Constructor names whose arguments become plan fields.
_PLAN_TYPES = frozenset({"ExperimentConfig", "RunPlan"})

#: Resolved call names that return a live file handle.
_OPEN_CALLS = frozenset({"open", "io.open", "gzip.open", "bz2.open"})


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function in ``tree``."""
    nested: Set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _plan_call_name(call: ast.Call, ctx: FileContext) -> Optional[str]:
    """How ``call`` stores plan fields, or ``None`` if it does not.

    Recognises direct construction (``ExperimentConfig(...)``,
    ``RunPlan(...)``, however imported), the frozen-dataclass update
    idiom (``config.with_(...)``), and ``dataclasses.replace(...)``.
    """
    func = call.func
    resolved = ctx.resolve(func) or ""
    tail = resolved.rsplit(".", 1)[-1]
    if tail in _PLAN_TYPES:
        return tail
    if isinstance(func, ast.Attribute) and func.attr == "with_":
        return "with_"
    if resolved == "dataclasses.replace" or tail == "replace":
        if resolved.startswith("dataclasses."):
            return "replace"
    return None


def _non_picklable(value: ast.AST, ctx: FileContext,
                   nested: Set[str]) -> Optional[str]:
    """Why ``value`` cannot cross a process boundary, or ``None``."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.Call):
        resolved = ctx.resolve(value.func) or ""
        if resolved in _OPEN_CALLS:
            return "an open file handle"
    if isinstance(value, ast.Name) and value.id in nested:
        return f"locally-defined function {value.id!r}"
    return None


@register
class PicklablePlanRule(Rule):
    """RL007 — no non-picklable values on ExperimentConfig/RunPlan fields."""

    code = "RL007"
    name = "picklable-plan"
    rationale = (
        "plans are shipped to worker processes; a lambda, closure, or "
        "open handle on a plan field breaks (or silently diverges) the "
        "moment a sweep runs with jobs > 1"
    )
    scoped = True
    node_types = (ast.Module, ast.Call)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Module):
            # Per-file preparation: the engine walks the Module first,
            # so nested-function names are ready for every Call after.
            ctx.rl007_nested = _nested_function_names(node)
            return
        target = _plan_call_name(node, ctx)
        if target is None:
            return
        nested = getattr(ctx, "rl007_nested", set())
        values = list(node.args) + [
            keyword.value for keyword in node.keywords
            if keyword.arg is not None
        ]
        for value in values:
            reason = _non_picklable(value, ctx, nested)
            if reason is not None:
                yield Diagnostic(
                    ctx.path,
                    value.lineno,
                    value.col_offset + 1,
                    self.code,
                    f"{reason} stored on a plan field via {target}(...); "
                    "plans must pickle cleanly for parallel executors — "
                    "pass plain data and rebuild callables/handles "
                    "inside the run",
                )
