"""Robustness rules: RL004 mutable defaults, RL005 over-broad excepts.

Unlike the determinism rules these run everywhere (src *and* tests):
a mutable default in a test helper corrupts later tests just as surely
as one in the simulator, and a swallowed exception hides failures no
matter where it lives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.registry import Rule, register

#: Builtin constructors whose call as a default shares one instance
#: across every invocation of the function.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    """RL004 — no mutable default arguments."""

    code = "RL004"
    name = "mutable-default"
    rationale = (
        "a mutable default is evaluated once and shared: state leaks "
        "across experiment runs, so run order changes results"
    )
    scoped = False
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        args = node.args
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        label = getattr(node, "name", "<lambda>")
        for default in defaults:
            if _is_mutable_default(default):
                yield Diagnostic(
                    ctx.path,
                    default.lineno,
                    default.col_offset + 1,
                    self.code,
                    f"mutable default argument in {label}(); use None and "
                    "create the container inside the function",
                )


#: Exception names too broad to catch around simulator machinery.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(node: ast.AST) -> str:
    """The over-broad exception name ``node`` denotes, or ''."""
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _BROAD_NAMES:
        return node.attr
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name:
                return name
    return ""


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True if the handler re-raises (bare ``raise``) somewhere."""
    return any(
        isinstance(inner, ast.Raise) and inner.exc is None
        for inner in ast.walk(handler)
    )


@register
class BroadExceptRule(Rule):
    """RL005 — no bare/over-broad except that can swallow sim failures."""

    code = "RL005"
    name = "broad-except"
    rationale = (
        "a bare except around a simulated process swallows the "
        "PolicyError/ConfigurationError that would have flagged a "
        "corrupted run; results then look valid but are not"
    )
    scoped = False
    node_types = (ast.ExceptHandler,)

    def check(
        self, node: ast.ExceptHandler, ctx: FileContext
    ) -> Iterator[Diagnostic]:
        if node.type is None:
            what = "bare except:"
        else:
            name = _broad_name(node.type)
            if not name:
                return
            what = f"except {name}"
        if _reraises(node):
            return  # catch-log-reraise keeps the failure visible
        yield Diagnostic(
            ctx.path,
            node.lineno,
            node.col_offset + 1,
            self.code,
            f"{what} can swallow simulator failures; catch the specific "
            "exception (see repro.errors) or re-raise",
        )
