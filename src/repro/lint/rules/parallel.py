"""Parallel-safety rules: RL011 shared module state, RL012 captures.

The exec layer's contract (``docs/ARCHITECTURE.md``) is that
``ParallelExecutor`` is a pure wall-clock optimisation — byte-identical
to the serial run.  That holds only if the code a worker executes
neither mutates module-level state (each process would fold its own
divergent copy) nor leans on module-level values that cannot cross a
process boundary.  These rules generalise the file-local RL007 into a
whole-program race detector: starting from the executor-side entry
points, they walk the approximate call graph and inspect everything a
worker can reach.

Entry points ("worker roots") are found three ways:

* the executor-side plan runner itself (``exec.run.execute_plan``);
* callables handed to a pool (``submit``/``map``/``target=``);
* callables registered as an engine's ``run_plan=`` implementation.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectModel
from repro.lint.registry import ProjectRule, register

#: Dotted-name suffixes that mark a function as an executor-side root.
ROOT_SUFFIXES: Tuple[str, ...] = ("exec.run.execute_plan",)


def _reachable(model: ProjectModel):
    """(function key, summary, info) for every worker-reachable function."""
    roots = model.worker_roots(ROOT_SUFFIXES)
    keys = model.reachable(roots) | roots
    for key in sorted(keys):
        info = model.function(key)
        if info is None:
            continue
        path = key.partition("::")[0]
        yield key, model.summaries[path], info


@register
class ParallelStateRule(ProjectRule):
    """RL011 — worker-reachable code must not write module-level state."""

    code = "RL011"
    name = "parallel-shared-state"
    rationale = (
        "a function reachable from ParallelExecutor that mutates "
        "module-level state diverges silently the moment a sweep runs "
        "with jobs > 1: each worker process folds its own copy"
    )
    scoped = True

    def check_project(
        self,
        model: ProjectModel,
        config,
    ) -> Iterator[Diagnostic]:
        for _key, summary, info in _reachable(model):
            for write in info.state_writes:
                if write.how != "global-assign":
                    resolved = model.resolve_from(summary, write.name)
                    if resolved is None or resolved.kind != "value":
                        continue
                yield Diagnostic(
                    summary.path,
                    write.lineno,
                    write.col,
                    self.code,
                    f"{info.qualname}() is reachable from the parallel "
                    f"executor and writes module-level state "
                    f"({write.name}, {write.how}); workers must not "
                    "share mutable module state — thread it through the "
                    "plan or keep it per-call",
                )


@register
class ParallelCaptureRule(ProjectRule):
    """RL012 — worker-reachable code must not capture unpicklable values."""

    code = "RL012"
    name = "parallel-unpicklable-capture"
    rationale = (
        "a worker-reachable function leaning on a module-level lock, "
        "open handle, or lambda breaks (or silently diverges) when the "
        "executor ships it to another process — the value cannot cross "
        "the boundary, generalising the plan-field check RL007"
    )
    scoped = True

    def check_project(
        self,
        model: ProjectModel,
        config,
    ) -> Iterator[Diagnostic]:
        for _key, summary, info in _reachable(model):
            for ref in info.symbol_refs:
                resolved = model.resolve_from(summary, ref.name)
                if resolved is None or resolved.kind != "value":
                    continue
                target = model.summaries[resolved.path]
                kind = target.module_unpicklables.get(resolved.name)
                if kind is None:
                    continue
                yield Diagnostic(
                    summary.path,
                    ref.lineno,
                    ref.col,
                    self.code,
                    f"{info.qualname}() is reachable from the parallel "
                    f"executor and captures {kind} ({ref.name}) defined "
                    "at module level; it cannot cross a process "
                    "boundary — construct it inside the call",
                )
