"""RL006 — every registered cache policy implements the full protocol.

The engines drive policies through the abstract protocol declared in
``cache/base.py`` (``lookup``/``admit``/``discard``/...).  A policy
that reaches the registry with a method missing fails *at runtime*,
deep inside a long simulation — or worse, inherits a sibling's
behaviour silently.  This cross-module rule consumes the
:class:`~repro.lint.project.ProjectModel`: registry entries and class
shapes come from the per-module summaries (so a warm cached run needs
no re-parse), and a class the linted file set never saw is resolved by
following the registry's own imports to the sibling file on disk.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ClassInfo, ProjectModel, summarize_module
from repro.lint.registry import ProjectRule, register


@register
class PolicyProtocolRule(ProjectRule):
    """RL006 — registered cache policies fully implement CachePolicy."""

    code = "RL006"
    name = "policy-protocol"
    rationale = (
        "a registered policy missing a protocol method fails mid-"
        "simulation (or silently inherits the wrong behaviour); the "
        "registry and the abstract base are checked against each other "
        "statically"
    )

    def check_project(
        self,
        model: ProjectModel,
        config,
    ) -> Iterator[Diagnostic]:
        base_path = _find(model, "cache/base.py")
        registry_path = _find(model, "cache/registry.py")
        if base_path is None or registry_path is None:
            return  # cache package not part of this lint run

        classes: Dict[str, ClassInfo] = {}
        # Cache-package classes take precedence on name collisions, so
        # index the other modules first and let cache/* overwrite.
        paths = sorted(model.summaries)
        cache_paths = [p for p in paths if "cache/" in p or p == base_path]
        for path in [*paths, *cache_paths]:
            classes.update(model.summaries[path].classes)

        registry = model.summaries[registry_path]
        for entry in registry.registry_entries:
            info = classes.get(entry.class_name)
            if info is None:
                info = _load_sibling_class(
                    Path(registry_path), registry, entry.class_name, classes
                )
            if info is None:
                yield Diagnostic(
                    registry_path,
                    entry.lineno,
                    entry.col,
                    self.code,
                    f"policy {entry.key!r} maps to unresolvable class "
                    f"{entry.class_name!r}; cannot verify the CachePolicy "
                    "protocol",
                )
                continue
            required, implemented = _flatten(info, classes)
            missing = sorted(required - implemented)
            if missing:
                yield Diagnostic(
                    registry_path,
                    entry.lineno,
                    entry.col,
                    self.code,
                    f"policy {entry.key!r} ({entry.class_name}) does not "
                    "implement required protocol method(s): "
                    f"{', '.join(missing)}",
                )


def _find(model: ProjectModel, suffix: str) -> Optional[str]:
    for path in sorted(model.summaries):
        if path.endswith(suffix):
            return path
    return None


def _flatten(
    info: ClassInfo,
    classes: Dict[str, ClassInfo],
) -> Tuple[Set[str], Set[str]]:
    """(abstract requirements, concrete implementations) over the MRO."""
    required: Set[str] = set()
    implemented: Set[str] = set()
    seen: Set[str] = set()
    stack = [info.name]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        current = classes.get(name)
        if current is None:
            continue  # e.g. ABC / object: nothing to require
        required.update(current.abstract)
        implemented.update(current.methods)
        stack.extend(current.bases)
    return required, implemented


def _load_sibling_class(
    registry_path: Path,
    registry,
    class_name: str,
    classes: Dict[str, ClassInfo],
) -> Optional[ClassInfo]:
    """Resolve ``class_name`` through the registry's own imports.

    When the linted file set did not include the defining module (e.g.
    a single-file lint of registry.py), follow the ``from x import y``
    that brought the class in and parse the sibling file on demand.
    """
    origins: List[str] = [
        origin
        for name, origin in registry.from_imports.items()
        if name == class_name or origin.endswith("." + class_name)
    ]
    for origin in origins:
        module_tail = origin.rsplit(".", 2)[-2] if "." in origin else origin
        module_file = registry_path.parent / f"{module_tail}.py"
        if not module_file.is_file():
            continue
        try:
            tree = ast.parse(
                module_file.read_text(encoding="utf-8"),
                filename=str(module_file),
            )
        except (OSError, SyntaxError):
            continue
        sibling = summarize_module(str(module_file), tree)
        for name, info in sibling.classes.items():
            classes.setdefault(name, info)
        if class_name in sibling.classes:
            return classes.get(class_name)
    return None
