"""RL006 — every registered cache policy implements the full protocol.

The engines drive policies through the abstract protocol declared in
``cache/base.py`` (``lookup``/``admit``/``discard``/...).  A policy
that reaches the registry with a method missing fails *at runtime*,
deep inside a long simulation — or worse, inherits a sibling's
behaviour silently.  This cross-module rule statically visits both
``cache/base.py`` and ``cache/registry.py``, resolves each registered
class (following the registry's imports to sibling modules when
needed), and compares method sets across the inheritance chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ProjectRule, register

#: Module-level dict names treated as policy registries.
_REGISTRY_NAMES = frozenset(
    {"_FACTORIES", "FACTORIES", "_REGISTRY", "REGISTRY", "_POLICIES", "POLICIES"}
)


@dataclass
class _ClassInfo:
    """Statically extracted shape of one class definition."""

    name: str
    bases: List[str] = field(default_factory=list)
    methods: Set[str] = field(default_factory=set)  # concrete defs
    abstract: Set[str] = field(default_factory=set)  # @abstractmethod defs


def _is_abstract(func: ast.AST) -> bool:
    for decorator in getattr(func, "decorator_list", []):
        name = (
            decorator.id
            if isinstance(decorator, ast.Name)
            else getattr(decorator, "attr", "")
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _classes_in(tree: ast.Module) -> Iterator[Tuple[_ClassInfo, ast.ClassDef]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = _ClassInfo(name=node.name)
        for base in node.bases:
            name = _base_name(base)
            if name:
                info.bases.append(name)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_abstract(item):
                    info.abstract.add(item.name)
                else:
                    info.methods.add(item.name)
        yield info, node


def _registered_policies(
    tree: ast.Module,
) -> Iterator[Tuple[str, str, ast.AST]]:
    """(registry key, class name, value node) for each registry entry."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        names = {
            target.id for target in targets if isinstance(target, ast.Name)
        }
        if not (names & _REGISTRY_NAMES) or not isinstance(value, ast.Dict):
            continue
        for key_node, value_node in zip(value.keys, value.values):
            key = (
                key_node.value
                if isinstance(key_node, ast.Constant)
                else "<dynamic>"
            )
            class_name = _value_class_name(value_node)
            if class_name:
                yield str(key), class_name, value_node


def _value_class_name(node: ast.AST) -> Optional[str]:
    """The class a registry value constructs: Name, lambda, or partial."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Lambda):
        for inner in ast.walk(node.body):
            if isinstance(inner, ast.Call):
                return _base_name(inner.func)
        return None
    if isinstance(node, ast.Call):
        func_name = _base_name(node.func)
        if func_name == "partial" and node.args:
            return _base_name(node.args[0])
        return func_name
    return None


@register
class PolicyProtocolRule(ProjectRule):
    """RL006 — registered cache policies fully implement CachePolicy."""

    code = "RL006"
    name = "policy-protocol"
    rationale = (
        "a registered policy missing a protocol method fails mid-"
        "simulation (or silently inherits the wrong behaviour); the "
        "registry and the abstract base are checked against each other "
        "statically"
    )

    def check_project(
        self,
        modules: Dict[str, ast.Module],
        config,
    ) -> Iterator[Diagnostic]:
        base_path = _find(modules, "cache/base.py")
        registry_path = _find(modules, "cache/registry.py")
        if base_path is None or registry_path is None:
            return  # cache package not part of this lint run

        classes: Dict[str, _ClassInfo] = {}
        # Cache-package classes take precedence on name collisions, so
        # index the other modules first and let cache/* overwrite.
        cache_paths = [p for p in modules if "cache/" in p or p == base_path]
        for path in [*modules, *cache_paths]:
            for info, _node in _classes_in(modules[path]):
                classes[info.name] = info

        registry_tree = modules[registry_path]
        for key, class_name, value_node in _registered_policies(registry_tree):
            info = classes.get(class_name)
            if info is None:
                info = _load_sibling_class(
                    Path(registry_path), registry_tree, class_name, classes
                )
            if info is None:
                yield Diagnostic(
                    registry_path,
                    value_node.lineno,
                    value_node.col_offset + 1,
                    self.code,
                    f"policy {key!r} maps to unresolvable class "
                    f"{class_name!r}; cannot verify the CachePolicy "
                    "protocol",
                )
                continue
            required, implemented = _flatten(info, classes)
            missing = sorted(required - implemented)
            if missing:
                yield Diagnostic(
                    registry_path,
                    value_node.lineno,
                    value_node.col_offset + 1,
                    self.code,
                    f"policy {key!r} ({class_name}) does not implement "
                    f"required protocol method(s): {', '.join(missing)}",
                )


def _find(modules: Dict[str, ast.Module], suffix: str) -> Optional[str]:
    for path in modules:
        if path.endswith(suffix):
            return path
    return None


def _flatten(
    info: _ClassInfo,
    classes: Dict[str, _ClassInfo],
) -> Tuple[Set[str], Set[str]]:
    """(abstract requirements, concrete implementations) over the MRO."""
    required: Set[str] = set()
    implemented: Set[str] = set()
    seen: Set[str] = set()
    stack = [info.name]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        current = classes.get(name)
        if current is None:
            continue  # e.g. ABC / object: nothing to require
        required.update(current.abstract)
        implemented.update(current.methods)
        stack.extend(current.bases)
    return required, implemented


def _load_sibling_class(
    registry_path: Path,
    registry_tree: ast.Module,
    class_name: str,
    classes: Dict[str, _ClassInfo],
) -> Optional[_ClassInfo]:
    """Resolve ``class_name`` through the registry's own imports.

    When the linted file set did not include the defining module (e.g.
    a single-file lint of registry.py), follow the ``from x import Y``
    that brought the class in and parse the sibling file on demand.
    """
    for node in ast.walk(registry_tree):
        if not isinstance(node, ast.ImportFrom) or node.module is None:
            continue
        if not any(alias.name == class_name for alias in node.names):
            continue
        module_file = registry_path.parent / (
            node.module.rsplit(".", 1)[-1] + ".py"
        )
        if not module_file.is_file():
            return None
        try:
            tree = ast.parse(
                module_file.read_text(encoding="utf-8"), filename=str(module_file)
            )
        except (OSError, SyntaxError):
            return None
        for info, _node in _classes_in(tree):
            classes.setdefault(info.name, info)
        return classes.get(class_name)
    return None
