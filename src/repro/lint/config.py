"""Linter configuration: defaults plus the ``[tool.reprolint]`` table.

The configuration answers three questions:

* which rules are enabled (``enabled``);
* where the *scoped* determinism rules apply (``scope`` — the
  simulator source tree; test code may legitimately compare exact
  analytic floats or build throwaway generators);
* which files are allowlisted per rule (``allow`` — e.g. the seeded
  stream factory itself is the one place allowed to touch
  ``numpy.random``).

``tomllib`` ships with Python 3.11+; on older interpreters the loader
degrades gracefully to the built-in defaults rather than crashing,
because this environment is offline and no third-party TOML parser can
be installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

try:
    import tomllib
except ImportError:  # pragma: no cover - Python < 3.11
    tomllib = None  # type: ignore[assignment]

#: Files every configuration excludes from collection.
ALWAYS_EXCLUDE = ("__pycache__", ".egg-info", ".repro-lint-cache")

#: Built-in allowlists, mirrored by the shipped ``pyproject.toml`` so
#: behaviour is identical whether or not a config file is found.
DEFAULT_ALLOW: Dict[str, Tuple[str, ...]] = {
    # The obs clock shim is the single sanctioned wall-clock gateway;
    # wall time is reported *alongside* the simulated clock and never
    # feeds back into the model.
    "RL001": ("src/repro/obs/clock.py",),
    # The seeded stream factory is the single sanctioned gateway to
    # numpy's generators.
    "RL002": ("src/repro/sim/rng.py",),
}

#: Scope of the determinism rules when no config says otherwise.
DEFAULT_SCOPE = "src/repro"


def _split_parts(pattern: str) -> Tuple[str, ...]:
    return tuple(p for p in pattern.replace("\\", "/").split("/") if p)


def _contains_parts(path: str, pattern: str) -> bool:
    """True if ``pattern``'s components appear contiguously in ``path``."""
    path_parts = _split_parts(path)
    pattern_parts = _split_parts(pattern)
    span = len(pattern_parts)
    return any(
        path_parts[i : i + span] == pattern_parts
        for i in range(len(path_parts) - span + 1)
    )


def path_matches(path: str, pattern: str) -> bool:
    """True if ``path`` matches an allowlist ``pattern``.

    A pattern naming a file (ending in ``.py``) matches on trailing
    path components, so allowlists work no matter which directory the
    linter is invoked from (absolute paths, ``src`` vs ``./src``).  A
    pattern naming a directory (anything else, e.g. ``benchmarks``)
    matches every file under it.
    """
    if not pattern.endswith(".py"):
        return bool(pattern) and _contains_parts(path, pattern)
    path_parts = _split_parts(path)
    pattern_parts = _split_parts(pattern)
    if not pattern_parts or len(pattern_parts) > len(path_parts):
        return False
    return path_parts[-len(pattern_parts):] == pattern_parts


#: A scope is one component sequence or several of them.
ScopeSpec = Union[str, Tuple[str, ...]]


def path_in_scope(path: str, scope: ScopeSpec) -> bool:
    """True if ``path`` lies under any of the ``scope`` trees.

    ``scope`` is one component sequence (``"src/repro"``) or a tuple of
    them.  An empty scope means "everywhere" (useful for fixture
    tests).
    """
    if not scope:
        return True
    scopes = (scope,) if isinstance(scope, str) else scope
    return any(_contains_parts(path, s) for s in scopes if s) or not any(
        s for s in scopes
    )


@dataclass
class LintConfig:
    """Effective linter settings after merging defaults and pyproject."""

    enabled: Optional[Tuple[str, ...]] = None  # None → all registered rules
    scope: ScopeSpec = DEFAULT_SCOPE
    allow: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    exclude: Tuple[str, ...] = ()

    def is_enabled(self, code: str) -> bool:
        return self.enabled is None or code in self.enabled

    def is_allowed(self, code: str, path: str) -> bool:
        """True if ``path`` is allowlisted for rule ``code``."""
        return any(
            path_matches(path, pattern)
            for pattern in self.allow.get(code, ())
        )

    def is_excluded(self, path: str) -> bool:
        candidates = ALWAYS_EXCLUDE + self.exclude
        posix = path.replace("\\", "/")
        return any(token in posix for token in candidates)


def find_pyproject(start: Optional[Path] = None) -> Optional[Path]:
    """Walk upward from ``start`` (default: cwd) to find pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for directory in (here, *here.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(
    *, start: Optional[Path] = None,
    pyproject: Optional[Path] = None,
) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.reprolint]`` if present.

    ``pyproject`` names an explicit file; otherwise the nearest
    ``pyproject.toml`` above ``start`` is used.  Missing file, missing
    table, or a missing TOML parser all yield the defaults.
    """
    config = LintConfig()
    source = pyproject if pyproject is not None else find_pyproject(start)
    if source is None or tomllib is None or not Path(source).is_file():
        return config
    try:
        with open(source, "rb") as handle:
            document = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError):
        return config
    table = document.get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        return config

    enabled = table.get("enabled")
    if isinstance(enabled, Sequence) and not isinstance(enabled, str):
        config.enabled = tuple(str(code).upper() for code in enabled)
    scope = table.get("scope")
    if isinstance(scope, str):
        config.scope = scope
    elif isinstance(scope, Sequence):
        config.scope = tuple(str(tree) for tree in scope)
    exclude = table.get("exclude")
    if isinstance(exclude, Sequence) and not isinstance(exclude, str):
        config.exclude = tuple(str(token) for token in exclude)
    allow = table.get("allow")
    if isinstance(allow, dict):
        merged = dict(DEFAULT_ALLOW)
        for code, patterns in allow.items():
            if isinstance(patterns, Sequence) and not isinstance(patterns, str):
                merged[str(code).upper()] = tuple(str(p) for p in patterns)
        config.allow = merged
    return config
