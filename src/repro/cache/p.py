"""The idealised P policy: keep the highest-probability pages (§5.3).

P has perfect knowledge of the client's access probabilities and always
holds the most valuable set it has seen: a new page is cached only if its
probability beats the least valuable resident, which it then replaces.
In steady state the cache therefore contains exactly the CacheSize
hottest pages the client ever requests — the paper's stated behaviour.

P is not implementable (perfect knowledge, global comparisons); the paper
uses it to expose the *flaw* of probability-only caching on a broadcast
disk: it caches hot pages even when they ride the fastest disk, making
its misses expensive and the client noise-sensitive (Figure 8).

Implementation: probabilities are static, so eviction uses a lazy
min-heap keyed by probability with stale-entry skipping — O(log n)
amortised per admit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, Optional

from repro.cache.base import CachePolicy, PolicyContext


class PPolicy(CachePolicy):
    """Evict (or refuse) the page with the lowest access probability."""

    name = "P"

    def __init__(self, capacity: int, context: PolicyContext):
        super().__init__(capacity)
        context.require("probability")
        self._probability = context.probability
        self._resident: Dict[int, float] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._stamp = itertools.count()

    # -- protocol ------------------------------------------------------------
    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def pages(self) -> Iterable[int]:
        return iter(self._resident)

    def lookup(self, page: int, now: float) -> bool:
        # Probabilities are static: a hit carries no new information.
        return page in self._resident

    def admit(self, page: int, now: float) -> Optional[int]:
        self._check_not_resident(page)
        value = self._value(page)
        if not self.is_full:
            self._insert(page, value)
            return None
        victim = self._peek_min()
        if self._resident[victim] >= value:
            # Nothing resident is less valuable: decline the new page.
            return page
        self._remove_min(victim)
        self._insert(page, value)
        return victim

    def discard(self, page: int) -> bool:
        # Heap entries for the page go stale and are skipped lazily.
        return self._resident.pop(page, None) is not None

    # -- internals ------------------------------------------------------------
    def _value(self, page: int) -> float:
        return float(self._probability(page))

    def _insert(self, page: int, value: float) -> None:
        self._resident[page] = value
        heapq.heappush(self._heap, (value, next(self._stamp), page))

    def _peek_min(self) -> int:
        while True:
            value, _stamp, page = self._heap[0]
            if self._resident.get(page) == value:
                return page
            heapq.heappop(self._heap)  # stale entry

    def _remove_min(self, page: int) -> None:
        heapq.heappop(self._heap)
        del self._resident[page]
