"""Columnar cache policies: N clients' caches stepped as arrays.

The batch engine (:mod:`repro.batch.engine`) advances a whole fleet in
lockstep, so its cache state must be columnar too: one ``(N, C)`` page
matrix instead of N dict-based policies.  Each class here replicates one
scalar policy from this package *decision-for-decision* — the same
victims in the same tie-break order — which the hypothesis property
tests in ``tests/test_properties_batch.py`` assert against random
request interleavings:

* :class:`BatchedLRU` — recency stamps; the victim is the minimum stamp
  (the scalar ``OrderedDict``'s bottom entry).
* :class:`BatchedP` / :class:`BatchedPIX` — static per-page values; the
  victim is the lexicographic ``(value, insertion stamp)`` minimum,
  matching the scalar lazy min-heap, and a new page less valuable than
  everything resident is declined (``admit`` returns the page itself).
* :class:`BatchedLIX` / :class:`BatchedL` — per-disk chains encoded as
  a disk column; candidates are each chain's minimum recency stamp and
  the strict ``<`` comparison in ascending disk order reproduces the
  scalar first-chain-wins tie-break.

``admit`` takes a client mask (only the clients that missed admit) and
returns a victim column using the scalar protocol's vocabulary in array
form: :data:`FREE` where a free slot absorbed the page (scalar
``None``), the page itself where the policy declined it, the evicted
page otherwise, and :data:`NO_ADMIT` for clients outside the mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

#: ``admit`` victim sentinel: this client was outside the admit mask.
NO_ADMIT = -2

#: ``admit`` victim sentinel: a free slot absorbed the page (scalar
#: policies return ``None`` here).
FREE = -1

#: Slot content marking an empty cache slot (page ids are >= 0).
EMPTY = -1

#: Stamp placed on non-candidate slots before an argmin, so they lose.
_STAMP_MAX = np.iinfo(np.int64).max

#: Minimum inter-access gap in the LIX estimator (mirrors the scalar
#: module's ``_MIN_GAP``).
_MIN_GAP = 1e-9

#: Policy names (registry-normalised) with a columnar formulation.
BATCHABLE_POLICIES = frozenset({"lru", "p", "pix", "lix", "l"})


def _gather(table: np.ndarray, rows: np.ndarray, pages: np.ndarray):
    """Index a per-client (N, R) or shared (1, R) oracle table."""
    if table.shape[0] == 1:
        return table[0, pages]
    return table[rows, pages]


@dataclass
class BatchedOracles:
    """The :class:`~repro.cache.base.PolicyContext` oracles, as arrays.

    ``probability`` is indexed by logical page; ``frequency`` and
    ``disk`` are ``(clients, pages)`` matrices (or ``(1, pages)`` when
    every client shares one mapping — noise-free groups).
    """

    probability: Optional[np.ndarray] = None
    frequency: Optional[np.ndarray] = None
    disk: Optional[np.ndarray] = None
    num_disks: int = 1
    lix_alpha: float = 0.25


class BatchedPolicy:
    """Base: ``(N, C)`` slot/stamp matrices and the array protocol."""

    name = "batched"

    def __init__(self, num_clients: int, capacity: int):
        if num_clients < 1:
            raise ConfigurationError(
                f"batched policies need >= 1 client, got {num_clients}"
            )
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1 page, got {capacity}"
            )
        self.num_clients = num_clients
        self.capacity = capacity
        self.slots = np.full((num_clients, capacity), EMPTY, dtype=np.int64)
        self.stamps = np.zeros((num_clients, capacity), dtype=np.int64)
        self.count = np.zeros(num_clients, dtype=np.int64)
        self._seq = np.zeros(num_clients, dtype=np.int64)
        self._rows = np.arange(num_clients)

    # -- protocol ----------------------------------------------------------
    def is_full(self) -> np.ndarray:
        """Boolean column: which clients' caches are at capacity."""
        return self.count >= self.capacity

    def _match(self, pages: np.ndarray):
        """``(hit, position)``: where each client's page is resident."""
        match = self.slots == pages[:, None]
        return match.any(axis=1), match.argmax(axis=1)

    def lookup(self, pages: np.ndarray, now: np.ndarray) -> np.ndarray:
        """Hit column; recency state updated where applicable."""
        hit, _ = self._match(pages)
        return hit

    def admit(
        self, pages: np.ndarray, now: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Offer each masked client's page; return the victim column."""
        raise NotImplementedError

    # -- shared admit plumbing --------------------------------------------
    def _free_positions(self, rows: np.ndarray) -> np.ndarray:
        """First empty slot of each listed client (scalar: dict append)."""
        return (self.slots[rows] == EMPTY).argmax(axis=1)

    def _stamp(self, rows: np.ndarray) -> np.ndarray:
        """Consume one per-client sequence number (the scalar counter)."""
        self._seq[rows] += 1
        return self._seq[rows]


class BatchedLRU(BatchedPolicy):
    """Columnar :class:`~repro.cache.lru.LRUPolicy`: min-stamp eviction."""

    name = "LRU"

    def lookup(self, pages: np.ndarray, now: np.ndarray) -> np.ndarray:
        hit, position = self._match(pages)
        rows = np.nonzero(hit)[0]
        if len(rows):
            self.stamps[rows, position[rows]] = self._stamp(rows)
        return hit

    def admit(self, pages, now, mask) -> np.ndarray:
        victims = np.full(self.num_clients, NO_ADMIT, dtype=np.int64)
        rows = np.nonzero(mask)[0]
        if not len(rows):
            return victims
        full = self.count[rows] >= self.capacity
        free_rows = rows[~full]
        if len(free_rows):
            position = self._free_positions(free_rows)
            self.slots[free_rows, position] = pages[free_rows]
            self.stamps[free_rows, position] = self._stamp(free_rows)
            self.count[free_rows] += 1
            victims[free_rows] = FREE
        full_rows = rows[full]
        if len(full_rows):
            position = self.stamps[full_rows].argmin(axis=1)
            victims[full_rows] = self.slots[full_rows, position]
            self.slots[full_rows, position] = pages[full_rows]
            self.stamps[full_rows, position] = self._stamp(full_rows)
        return victims


class BatchedP(BatchedPolicy):
    """Columnar :class:`~repro.cache.p.PPolicy`: static-value eviction.

    The scalar policy's lazy min-heap holds one live entry per resident
    page (engines never ``discard``), so its victim is exactly the
    lexicographic ``(value, insertion stamp)`` minimum — computed here
    as a value argmin refined by a masked stamp argmin.
    """

    name = "P"

    def __init__(self, num_clients: int, capacity: int,
                 oracles: BatchedOracles):
        super().__init__(num_clients, capacity)
        if oracles.probability is None:
            raise ConfigurationError(
                "this policy requires the 'probability' oracle in its context"
            )
        self._oracles = oracles
        self.values = np.zeros((num_clients, capacity), dtype=np.float64)

    def _value_of(self, rows: np.ndarray, pages: np.ndarray) -> np.ndarray:
        return self._oracles.probability[pages]

    def admit(self, pages, now, mask) -> np.ndarray:
        victims = np.full(self.num_clients, NO_ADMIT, dtype=np.int64)
        rows = np.nonzero(mask)[0]
        if not len(rows):
            return victims
        value = self._value_of(rows, pages[rows])
        full = self.count[rows] >= self.capacity
        free_rows = rows[~full]
        if len(free_rows):
            position = self._free_positions(free_rows)
            self.slots[free_rows, position] = pages[free_rows]
            self.values[free_rows, position] = value[~full]
            self.stamps[free_rows, position] = self._stamp(free_rows)
            self.count[free_rows] += 1
            victims[free_rows] = FREE
        full_rows = rows[full]
        if len(full_rows):
            resident = self.values[full_rows]
            minimum = resident.min(axis=1)
            # Decline when nothing resident is less valuable (scalar:
            # ``self._resident[victim] >= value`` — no stamp consumed).
            declined = minimum >= value[full]
            victims[full_rows[declined]] = pages[full_rows[declined]]
            evict_rows = full_rows[~declined]
            if len(evict_rows):
                candidates = (
                    self.values[evict_rows]
                    == minimum[~declined][:, None]
                )
                masked = np.where(
                    candidates, self.stamps[evict_rows], _STAMP_MAX
                )
                position = masked.argmin(axis=1)
                victims[evict_rows] = self.slots[evict_rows, position]
                self.slots[evict_rows, position] = pages[evict_rows]
                self.values[evict_rows, position] = value[full][~declined]
                self.stamps[evict_rows, position] = self._stamp(evict_rows)
        return victims


class BatchedPIX(BatchedP):
    """Columnar :class:`~repro.cache.pix.PIXPolicy`: probability/frequency."""

    name = "PIX"

    def __init__(self, num_clients: int, capacity: int,
                 oracles: BatchedOracles):
        super().__init__(num_clients, capacity, oracles)
        if oracles.frequency is None:
            raise ConfigurationError(
                "this policy requires the 'frequency' oracle in its context"
            )

    def _value_of(self, rows: np.ndarray, pages: np.ndarray) -> np.ndarray:
        probability = self._oracles.probability[pages]
        frequency = _gather(self._oracles.frequency, rows, pages)
        with np.errstate(divide="ignore", invalid="ignore"):
            value = probability / frequency
        return np.where(frequency > 0.0, value, np.inf)


class BatchedLIX(BatchedPolicy):
    """Columnar :class:`~repro.cache.lix.LIXPolicy`: per-disk chains.

    A slot's chain membership is its ``chain`` column entry; each
    chain's bottom (the scalar ``next(iter(chain))``) is its minimum
    recency stamp.  Victim search walks disks in ascending order with a
    strict ``<``, so the earliest chain wins ties exactly as the scalar
    ``_choose_victim`` does.
    """

    name = "LIX"
    use_frequency = True

    def __init__(self, num_clients: int, capacity: int,
                 oracles: BatchedOracles):
        super().__init__(num_clients, capacity)
        if oracles.disk is None:
            raise ConfigurationError(
                "this policy requires the 'disk_of' oracle in its context"
            )
        if self.use_frequency and oracles.frequency is None:
            raise ConfigurationError(
                "this policy requires the 'frequency' oracle in its context"
            )
        if not 0.0 < oracles.lix_alpha <= 1.0:
            raise ConfigurationError(
                f"lix_alpha must be in (0, 1], got {oracles.lix_alpha}"
            )
        if oracles.num_disks < 1:
            raise ConfigurationError(
                f"num_disks must be >= 1, got {oracles.num_disks}"
            )
        self._oracles = oracles
        self._alpha = float(oracles.lix_alpha)
        self.estimates = np.zeros((num_clients, capacity), dtype=np.float64)
        self.last_access = np.zeros((num_clients, capacity), dtype=np.float64)
        self.chain = np.full((num_clients, capacity), -1, dtype=np.int64)

    def _evaluate(self, estimates, last_access, now):
        """The scalar ``_evaluate`` formula, elementwise."""
        gap = np.maximum(now - last_access, _MIN_GAP)
        return self._alpha / gap + (1.0 - self._alpha) * estimates

    def lookup(self, pages: np.ndarray, now: np.ndarray) -> np.ndarray:
        hit, position = self._match(pages)
        rows = np.nonzero(hit)[0]
        if len(rows):
            slot = position[rows]
            self.estimates[rows, slot] = self._evaluate(
                self.estimates[rows, slot],
                self.last_access[rows, slot],
                now[rows],
            )
            self.last_access[rows, slot] = now[rows]
            self.stamps[rows, slot] = self._stamp(rows)
        return hit

    def _lix_values(self, rows, slot, now):
        value = self._evaluate(
            self.estimates[rows, slot], self.last_access[rows, slot], now
        )
        if self.use_frequency:
            frequency = _gather(
                self._oracles.frequency, rows, self.slots[rows, slot]
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                value = value / frequency
            value = np.where(frequency > 0.0, value, np.inf)
        return value

    def _choose_victims(self, rows: np.ndarray, now: np.ndarray) -> np.ndarray:
        best_value = np.full(len(rows), np.inf)
        best_position = np.zeros(len(rows), dtype=np.int64)
        chains = self.chain[rows]
        for disk in range(self._oracles.num_disks):
            in_chain = chains == disk
            present = in_chain.any(axis=1)
            if not present.any():
                continue
            masked = np.where(in_chain, self.stamps[rows], _STAMP_MAX)
            position = masked.argmin(axis=1)
            value = self._lix_values(rows, position, now)
            # Strict <: the scalar loop keeps the earliest chain on ties.
            better = present & (value < best_value)
            best_value = np.where(better, value, best_value)
            best_position = np.where(better, position, best_position)
        return best_position

    def admit(self, pages, now, mask) -> np.ndarray:
        victims = np.full(self.num_clients, NO_ADMIT, dtype=np.int64)
        rows = np.nonzero(mask)[0]
        if not len(rows):
            return victims
        full = self.count[rows] >= self.capacity
        free_rows = rows[~full]
        if len(free_rows):
            position = self._free_positions(free_rows)
            self._place(free_rows, position, pages[free_rows], now[free_rows])
            self.count[free_rows] += 1
            victims[free_rows] = FREE
        full_rows = rows[full]
        if len(full_rows):
            position = self._choose_victims(full_rows, now[full_rows])
            victims[full_rows] = self.slots[full_rows, position]
            self._place(full_rows, position, pages[full_rows], now[full_rows])
        return victims

    def _place(self, rows, position, pages, now):
        """Enter ``pages`` with fresh state in its own disk's chain."""
        self.slots[rows, position] = pages
        self.estimates[rows, position] = 0.0
        self.last_access[rows, position] = now
        self.stamps[rows, position] = self._stamp(rows)
        self.chain[rows, position] = _gather(
            self._oracles.disk, rows, pages
        )


class BatchedL(BatchedLIX):
    """Columnar :class:`~repro.cache.lix.LPolicy`: LIX without frequency."""

    name = "L"
    use_frequency = False


_BATCHED_FACTORIES = {
    "lru": lambda n, c, oracles: BatchedLRU(n, c),
    "p": BatchedP,
    "pix": BatchedPIX,
    "lix": BatchedLIX,
    "l": BatchedL,
}


def make_batched_policy(
    name: str,
    num_clients: int,
    capacity: int,
    oracles: BatchedOracles,
) -> Optional[BatchedPolicy]:
    """A columnar policy for ``name``, or None when no batched form exists.

    Callers treat ``None`` as "fall back to the scalar per-client path"
    (LRU-K and 2Q keep history beyond residency, which has no columnar
    formulation here).  Name normalisation matches the scalar registry.
    """
    factory = _BATCHED_FACTORIES.get(name.strip().lower())
    if factory is None:
        return None
    return factory(num_clients, capacity, oracles)
