"""Client cache replacement policies (§3, §5 of the paper).

The broadcast disk makes pages *non-equidistant*, so replacement must
weigh the cost of re-acquiring a page, not just its access probability.
The policy family implemented here:

===========  ==============================================================
``P``        Idealised: keep the pages with the highest access
             probability (perfect knowledge; §5.3).
``PIX``      Idealised cost-based: evict the smallest ratio of access
             probability to broadcast frequency, P/X (§5.4).
``LRU``      Classic least-recently-used.
``LIX``      Implementable PIX approximation: one LRU chain per disk, a
             running probability estimate per cached page, evict the
             smallest estimate/frequency among the chain bottoms (§5.5).
``L``        LIX with the frequency term disabled — the implementable
             approximation of P used to isolate the frequency heuristic's
             contribution (§5.5.1).
``LRU-K``    [ONei93], cited by the paper as a candidate for better LIX
             variants; provided as an extension baseline.
``2Q``       [John94], likewise.
===========  ==============================================================

All policies implement the :class:`~repro.cache.base.CachePolicy`
interface and are constructed through
:func:`~repro.cache.registry.make_policy`.
"""

from repro.cache.base import CachePolicy, PolicyContext
from repro.cache.lix import LPolicy, LIXPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.lruk import LRUKPolicy
from repro.cache.p import PPolicy
from repro.cache.pix import PIXPolicy
from repro.cache.registry import available_policies, make_policy
from repro.cache.twoq import TwoQPolicy

__all__ = [
    "CachePolicy",
    "LIXPolicy",
    "LPolicy",
    "LRUKPolicy",
    "LRUPolicy",
    "PIXPolicy",
    "PPolicy",
    "PolicyContext",
    "TwoQPolicy",
    "available_policies",
    "make_policy",
]
