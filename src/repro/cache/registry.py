"""Name → cache-policy construction.

The experiment layer names policies by the strings the paper uses
("P", "PIX", "LRU", "L", "LIX") plus the extension baselines
("LRU-K"/"lru2", "2Q").  Names are case-insensitive.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cache.base import CachePolicy, PolicyContext
from repro.cache.lix import LPolicy, LIXPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.lruk import LRUKPolicy
from repro.cache.p import PPolicy
from repro.cache.pix import PIXPolicy
from repro.cache.twoq import TwoQPolicy
from repro.errors import ConfigurationError

_FACTORIES: Dict[str, Callable[[int, PolicyContext], CachePolicy]] = {
    "p": PPolicy,
    "pix": PIXPolicy,
    "lru": LRUPolicy,
    "l": LPolicy,
    "lix": LIXPolicy,
    "lru-k": LRUKPolicy,
    "lruk": LRUKPolicy,
    "lru2": lambda capacity, context: LRUKPolicy(capacity, context, k=2),
    "2q": TwoQPolicy,
}

#: Canonical display names, in the order the paper introduces them.
CANONICAL_NAMES = ("P", "PIX", "LRU", "L", "LIX", "LRU-K", "2Q")


def available_policies() -> List[str]:
    """The canonical policy names the registry accepts."""
    return list(CANONICAL_NAMES)


def make_policy(
    name: str,
    capacity: int,
    context: PolicyContext,
) -> CachePolicy:
    """Construct the policy called ``name`` with ``capacity`` page slots."""
    factory = _FACTORIES.get(name.strip().lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown cache policy {name!r}; known: {', '.join(CANONICAL_NAMES)}"
        )
    return factory(capacity, context)
