"""2Q replacement [John94] — an extension baseline (see §5.5).

Full-version 2Q as in the VLDB '94 paper: three structures —

* ``A1in``: a FIFO of recently admitted pages (correlated references
  stay here and never pollute the main cache),
* ``A1out``: a ghost FIFO of page *identifiers* recently expelled from
  ``A1in`` (no page data),
* ``Am``: the main LRU holding pages proven hot (re-referenced while in
  the ghost queue).

Tunables follow the authors' recommendation: ``Kin`` ≈ 25% of the page
slots, ``Kout`` ≈ 50% of the page slots.  ``A1in`` and ``Am`` together
hold exactly ``capacity`` pages of data.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.cache.base import CachePolicy, PolicyContext


class TwoQPolicy(CachePolicy):
    """The full 2Q algorithm with A1in / A1out / Am."""

    name = "2Q"

    def __init__(
        self,
        capacity: int,
        context: Optional[PolicyContext] = None,
        kin_fraction: float = 0.25,
        kout_fraction: float = 0.50,
    ):
        super().__init__(capacity)
        self.kin = max(1, int(capacity * kin_fraction))
        self.kout = max(1, int(capacity * kout_fraction))
        self._a1in: OrderedDict[int, None] = OrderedDict()   # FIFO, data
        self._a1out: OrderedDict[int, None] = OrderedDict()  # FIFO, ghosts
        self._am: OrderedDict[int, None] = OrderedDict()     # LRU, data

    # -- protocol ------------------------------------------------------------
    def __contains__(self, page: int) -> bool:
        return page in self._a1in or page in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def pages(self) -> Iterable[int]:
        yield from self._a1in
        yield from self._am

    def lookup(self, page: int, now: float) -> bool:
        if page in self._am:
            self._am.move_to_end(page)
            return True
        # A hit in A1in deliberately does NOT promote: 2Q treats bursts
        # of correlated references as one reference.
        return page in self._a1in

    def admit(self, page: int, now: float) -> Optional[int]:
        self._check_not_resident(page)
        victim = self._reclaim_slot_if_full()
        if page in self._a1out:
            # Re-referenced after leaving A1in: proven hot, goes to Am.
            del self._a1out[page]
            self._am[page] = None
        else:
            self._a1in[page] = None
        return victim

    def discard(self, page: int) -> bool:
        if page in self._a1in:
            del self._a1in[page]
            return True
        if page in self._am:
            del self._am[page]
            return True
        return False

    # -- internals ------------------------------------------------------------
    def _reclaim_slot_if_full(self) -> Optional[int]:
        if not self.is_full:
            return None
        if len(self._a1in) > self.kin:
            # Demote the A1in head to the ghost queue.
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            if len(self._a1out) > self.kout:
                self._a1out.popitem(last=False)
            return victim
        if self._am:
            victim, _ = self._am.popitem(last=False)
            return victim
        # Degenerate small-cache case: fall back to evicting from A1in.
        victim, _ = self._a1in.popitem(last=False)
        self._a1out[victim] = None
        if len(self._a1out) > self.kout:
            self._a1out.popitem(last=False)
        return victim

    # -- introspection (tests) ---------------------------------------------
    def queue_sizes(self) -> dict:
        """Current ``{a1in, a1out, am}`` sizes."""
        return {
            "a1in": len(self._a1in),
            "a1out": len(self._a1out),
            "am": len(self._am),
        }
