"""LIX and L: the implementable cost-based policies of §5.5.

**LIX** modifies LRU to account for broadcast frequency:

* The cache is organised as one LRU chain per broadcast disk; a page
  always lives in the chain of the disk it is broadcast on.  Chains have
  no fixed sizes — they grow and shrink with the access pattern.
* Each cached page carries a running probability estimate ``p`` and its
  last access time ``t``.  On entry ``p = 0`` and ``t = now``; on a hit::

      p = alpha / (now - t) + (1 - alpha) * p;   t = now

  with ``alpha = 0.25`` in the paper's experiments.
* On replacement, the *lix* value ``p_evaluated / frequency`` is computed
  only for the page at the bottom (least recently used end) of each
  chain, where ``p_evaluated`` applies the update formula at the current
  time without committing it — aging the estimate so long-untouched
  pages look colder.  The smallest lix value is evicted, and the new
  page joins the chain of its own disk.

This costs a constant number of operations per replacement (proportional
to the number of disks), the same order as LRU.  With a single flat disk
LIX reduces exactly to LRU: one chain, one candidate — its bottom page.

**L** is LIX with the frequency division removed (all pages assumed
equally frequent).  It isolates how much of LIX's win comes from the
probability estimate versus the frequency heuristic (§5.5.1): L is the
implementable analogue of P, as LIX is of PIX.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.cache.base import CachePolicy, PolicyContext
from repro.errors import ConfigurationError

#: Minimum inter-access gap used in the estimator, guarding the division
#: when a page is re-hit at the same simulation instant.
_MIN_GAP = 1e-9


@dataclass
class _PageState:
    """Per-page bookkeeping: running estimate and last access time."""

    estimate: float
    last_access: float


class LIXPolicy(CachePolicy):
    """Per-disk LRU chains with probability-estimate/frequency eviction."""

    name = "LIX"

    #: Whether the lix value divides by broadcast frequency.  The L
    #: subclass switches this off.
    use_frequency = True

    def __init__(self, capacity: int, context: PolicyContext):
        super().__init__(capacity)
        context.require("disk_of")
        if self.use_frequency:
            context.require("frequency")
        if not 0.0 < context.lix_alpha <= 1.0:
            raise ConfigurationError(
                f"lix_alpha must be in (0, 1], got {context.lix_alpha}"
            )
        if context.num_disks < 1:
            raise ConfigurationError(
                f"num_disks must be >= 1, got {context.num_disks}"
            )
        self._alpha = context.lix_alpha
        self._disk_of = context.disk_of
        self._frequency = context.frequency
        self._chains: tuple[OrderedDict[int, _PageState], ...] = tuple(
            OrderedDict() for _ in range(context.num_disks)
        )
        self._chain_of: Dict[int, int] = {}

    # -- protocol ------------------------------------------------------------
    def __contains__(self, page: int) -> bool:
        return page in self._chain_of

    def __len__(self) -> int:
        return len(self._chain_of)

    def pages(self) -> Iterable[int]:
        return iter(self._chain_of)

    def lookup(self, page: int, now: float) -> bool:
        chain_index = self._chain_of.get(page)
        if chain_index is None:
            return False
        chain = self._chains[chain_index]
        state = chain[page]
        state.estimate = self._evaluate(state, now)
        state.last_access = now
        chain.move_to_end(page)
        return True

    def admit(self, page: int, now: float) -> Optional[int]:
        self._check_not_resident(page)
        victim = None
        if self.is_full:
            victim = self._choose_victim(now)
            chain_index = self._chain_of.pop(victim)
            del self._chains[chain_index][victim]
        destination = self._disk_of(page)
        self._chains[destination][page] = _PageState(
            estimate=0.0, last_access=now
        )
        self._chain_of[page] = destination
        return victim

    def discard(self, page: int) -> bool:
        chain_index = self._chain_of.pop(page, None)
        if chain_index is None:
            return False
        del self._chains[chain_index][page]
        return True

    # -- internals ------------------------------------------------------------
    def _evaluate(self, state: _PageState, now: float) -> float:
        """The paper's estimator, applied at ``now`` without committing.

        ``alpha / (now - t) + (1 - alpha) * p`` — used both to update the
        estimate on a hit and to age the chain-bottom candidates at
        eviction time ("evaluated for the least recently used pages of
        each chain to estimate their *current* probability of access").
        """
        gap = max(now - state.last_access, _MIN_GAP)
        return self._alpha / gap + (1.0 - self._alpha) * state.estimate

    def _lix_value(self, page: int, state: _PageState, now: float) -> float:
        value = self._evaluate(state, now)
        if self.use_frequency:
            frequency = float(self._frequency(page))
            if frequency <= 0.0:
                return float("inf")
            value /= frequency
        return value

    def _choose_victim(self, now: float) -> int:
        best_page = None
        best_value = float("inf")
        for chain in self._chains:
            if not chain:
                continue
            page = next(iter(chain))  # bottom: least recently used
            value = self._lix_value(page, chain[page], now)
            if value < best_value:
                best_value = value
                best_page = page
        assert best_page is not None, "eviction from a non-empty cache"
        return best_page

    # -- introspection (used by tests and the worked Figure 12 example) -----
    def chain_pages(self, disk: int) -> list[int]:
        """Pages in one chain, least recently used first."""
        return list(self._chains[disk])

    def estimate_of(self, page: int) -> float:
        """Committed (not aged) probability estimate of a resident page."""
        chain_index = self._chain_of[page]
        return self._chains[chain_index][page].estimate


class LPolicy(LIXPolicy):
    """LIX without the frequency term: the implementable analogue of P."""

    name = "L"
    use_frequency = False
