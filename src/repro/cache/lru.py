"""Classic least-recently-used replacement.

The implementable baseline of Experiment 5.  LRU approximates P (recency
as a proxy for probability) and, like P, ignores re-acquisition cost —
which is exactly what the broadcast disk punishes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.cache.base import CachePolicy, PolicyContext


class LRUPolicy(CachePolicy):
    """Evict the least recently used page; always admit the new page."""

    name = "LRU"

    def __init__(self, capacity: int, context: Optional[PolicyContext] = None):
        # ``context`` is accepted for registry uniformity; LRU needs none.
        super().__init__(capacity)
        self._chain: OrderedDict[int, None] = OrderedDict()

    def __contains__(self, page: int) -> bool:
        return page in self._chain

    def __len__(self) -> int:
        return len(self._chain)

    def pages(self) -> Iterable[int]:
        return iter(self._chain)

    def lookup(self, page: int, now: float) -> bool:
        if page not in self._chain:
            return False
        self._chain.move_to_end(page)
        return True

    def admit(self, page: int, now: float) -> Optional[int]:
        self._check_not_resident(page)
        victim = None
        if self.is_full:
            victim, _ = self._chain.popitem(last=False)
        self._chain[page] = None
        return victim

    def discard(self, page: int) -> bool:
        # Resident pages are stored with value None, so a sentinel-based
        # ``pop(...) is not None`` would misreport them as absent.
        if page not in self._chain:
            return False
        del self._chain[page]
        return True
