"""LRU-K replacement [ONei93] — an extension baseline.

§5.5 suggests that "better approximations of PIX ... might be developed
using some of the recently proposed improvements to LRU like 2Q or
LRU-K".  This module provides classic LRU-K so that suggestion can be
measured: the registry exposes ``lru2`` (K=2), and the ablation bench
compares it against LRU and LIX.

LRU-K evicts the page whose K-th most recent reference is oldest
(maximum backward K-distance).  Pages with fewer than K references have
infinite backward K-distance; ties among them fall back to plain LRU on
their most recent reference, per the paper's recommended tie-breaking.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional

from repro.cache.base import CachePolicy, PolicyContext
from repro.errors import ConfigurationError


class LRUKPolicy(CachePolicy):
    """Evict the maximum backward K-distance page."""

    name = "LRU-K"

    def __init__(
        self,
        capacity: int,
        context: Optional[PolicyContext] = None,
        k: int = 2,
    ):
        super().__init__(capacity)
        if k < 1:
            raise ConfigurationError(f"K must be >= 1, got {k}")
        self.k = k
        # Page -> its K most recent reference times (oldest first).
        self._history: Dict[int, Deque[float]] = {}

    def __contains__(self, page: int) -> bool:
        return page in self._history

    def __len__(self) -> int:
        return len(self._history)

    def pages(self) -> Iterable[int]:
        return iter(self._history)

    def lookup(self, page: int, now: float) -> bool:
        history = self._history.get(page)
        if history is None:
            return False
        history.append(now)
        return True

    def admit(self, page: int, now: float) -> Optional[int]:
        self._check_not_resident(page)
        victim = None
        if self.is_full:
            victim = self._choose_victim()
            del self._history[victim]
        self._history[page] = deque([now], maxlen=self.k)
        return victim

    def discard(self, page: int) -> bool:
        return self._history.pop(page, None) is not None

    def _choose_victim(self) -> int:
        # Prefer pages with fewer than K references (infinite backward
        # distance), oldest last-reference first; otherwise the oldest
        # K-th reference.
        best_page = None
        best_key = None
        for page, history in self._history.items():
            underfilled = len(history) < self.k
            kth_time = history[0]
            last_time = history[-1]
            # Sort key: underfilled pages dominate; within a class,
            # older timestamps are better victims.
            key = (0 if underfilled else 1, last_time if underfilled else kth_time)
            if best_key is None or key < best_key:
                best_key = key
                best_page = page
        assert best_page is not None
        return best_page
