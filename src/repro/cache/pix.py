"""The idealised PIX policy: evict the lowest P/X ratio (§3, §5.4).

PIX ("P Inverse X") weighs a page's access probability *P* against its
broadcast frequency *X*: a page that is somewhat hot but broadcast very
rarely is worth more cache space than a very hot page the fast disk
delivers constantly.  Under the paper's assumptions it is the optimal
replacement strategy; like P it is idealised (perfect probabilities,
global comparison), and §5.5's LIX is its implementable approximation.

The paper's worked example: a page accessed 1% of the time and broadcast
1% of the time has a *lower* PIX value than a page accessed 0.5% of the
time but broadcast only 0.1% of the time, so the former is evicted first
despite being accessed twice as often.

Implementation detail: P/X is static per experiment, so PIX shares P's
lazy-heap machinery with a different key.
"""

from __future__ import annotations

from repro.cache.base import PolicyContext
from repro.cache.p import PPolicy


class PIXPolicy(PPolicy):
    """Evict (or refuse) the page with the lowest probability/frequency."""

    name = "PIX"

    def __init__(self, capacity: int, context: PolicyContext):
        context.require("probability", "frequency")
        super().__init__(capacity, context)
        self._frequency = context.frequency

    def _value(self, page: int) -> float:
        frequency = float(self._frequency(page))
        if frequency <= 0.0:
            # Never broadcast: infinitely expensive to re-acquire.  The
            # paper's setting never produces this, but a dynamic program
            # might; treat as maximally cache-worthy.
            return float("inf")
        return float(self._probability(page)) / frequency
