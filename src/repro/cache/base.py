"""The cache policy interface and the oracle context policies draw on.

The engines drive every policy through the same two-call protocol::

    if cache.lookup(page, now):      # hit: recency/estimate updated
        ...serve locally...
    else:
        ...wait for the broadcast...
        cache.admit(page, now)       # may evict, may reject the new page

``admit`` returns the page that ended up *outside* the cache: a victim,
the new page itself (idealised policies may refuse to cache a page less
valuable than everything resident — that is what lets P hold exactly the
CacheSize hottest pages in steady state, as §5.3 asserts), or ``None``
when there was still room.

A :class:`PolicyContext` carries the knowledge the paper grants each
policy: exact access probabilities (idealised P/PIX only), exact
broadcast frequencies (PIX and LIX — "the frequency for the page...is
known exactly"), and the page→disk map LIX needs for its chains.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.errors import ConfigurationError, PolicyError


@dataclass
class PolicyContext:
    """Per-experiment knowledge made available to cache policies.

    Attributes
    ----------
    probability:
        Exact access probability of a logical page.  Required by the
        idealised P and PIX policies.
    frequency:
        Exact broadcast frequency (transmissions per broadcast unit) of a
        logical page.  Required by PIX and LIX.
    disk_of:
        0-based broadcast disk carrying a logical page.  Required by LIX
        and L for their per-disk chains.
    num_disks:
        Number of broadcast disks.
    lix_alpha:
        Weight of the most recent inter-access gap in LIX's running
        probability estimate; the paper uses 0.25.
    """

    probability: Optional[Callable[[int], float]] = None
    frequency: Optional[Callable[[int], float]] = None
    disk_of: Optional[Callable[[int], int]] = None
    num_disks: int = 1
    lix_alpha: float = 0.25

    def require(self, *names: str) -> None:
        """Raise ConfigurationError unless every named oracle is present."""
        for name in names:
            if getattr(self, name) is None:
                raise ConfigurationError(
                    f"this policy requires the {name!r} oracle in its context"
                )


class CachePolicy(ABC):
    """Abstract base class for page replacement policies."""

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1 page, got {capacity}"
            )
        self.capacity = capacity

    # -- protocol ------------------------------------------------------------
    @abstractmethod
    def __contains__(self, page: int) -> bool:
        """True if ``page`` is cache-resident."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cache-resident pages."""

    @abstractmethod
    def pages(self) -> Iterable[int]:
        """Iterate the cache-resident pages (order unspecified)."""

    @abstractmethod
    def lookup(self, page: int, now: float) -> bool:
        """Probe for ``page``; update recency state on a hit.

        Returns True on a hit.  A miss changes no state — the page enters
        only via :meth:`admit`, after it has arrived on the broadcast.
        """

    @abstractmethod
    def admit(self, page: int, now: float) -> Optional[int]:
        """Offer a just-fetched page to the cache.

        Returns the page left uncached: an evicted victim, ``page``
        itself if the policy declined to cache it, or ``None`` if the
        cache had a free slot.  Raises :class:`PolicyError` if ``page``
        is already resident.
        """

    @abstractmethod
    def discard(self, page: int) -> bool:
        """Drop ``page`` from the cache without replacement.

        Used by the volatile-data extension when an invalidation report
        names a cached page.  Returns True if the page was resident.
        """

    # -- shared helpers --------------------------------------------------------
    def _check_not_resident(self, page: int) -> None:
        if page in self:
            raise PolicyError(
                f"{self.name}: admit() called for already-resident page {page}"
            )

    @property
    def is_full(self) -> bool:
        """True when every cache slot is occupied."""
        return len(self) >= self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {len(self)}/{self.capacity}>"


class TracedCache(CachePolicy):
    """A transparent tracing wrapper around any :class:`CachePolicy`.

    Engines drive policies only through the abstract protocol, so
    wrapping is invisible to them; every ``lookup``/``admit``/``discard``
    additionally emits a ``cache.*`` record to the attached tracer
    (``cache.lookup``, ``cache.admit``, ``cache.evict``,
    ``cache.discard`` — see :mod:`repro.obs.trace`).  The wrapper holds
    no cache state of its own and never alters the inner policy's
    decisions, so traced and untraced runs are request-for-request
    identical.
    """

    name = "traced"

    def __init__(self, inner: CachePolicy, tracer):
        super().__init__(inner.capacity)
        self.inner = inner
        self.tracer = tracer
        # discard() carries no timestamp in the protocol; its records
        # reuse the last simulation time seen by lookup/admit.
        self._last_seen = 0.0

    def __contains__(self, page: int) -> bool:
        return page in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def pages(self) -> Iterable[int]:
        return self.inner.pages()

    def lookup(self, page: int, now: float) -> bool:
        hit = self.inner.lookup(page, now)
        self._last_seen = now
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("cache.lookup", now, page=int(page), hit=hit)
        return hit

    def admit(self, page: int, now: float) -> Optional[int]:
        victim = self.inner.admit(page, now)
        self._last_seen = now
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                "cache.admit", now, page=int(page),
                victim=None if victim is None else int(victim),
            )
            if victim is not None and victim != page:
                tracer.emit("cache.evict", now, page=int(victim),
                            admitted=int(page))
        return victim

    def discard(self, page: int) -> bool:
        resident = self.inner.discard(page)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("cache.discard", self._last_seen, page=int(page),
                        resident=resident)
        return resident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TracedCache {self.inner!r}>"


@dataclass
class CacheCounters:
    """Hit/miss bookkeeping shared by the engines."""

    hits: int = 0
    misses: int = 0
    per_disk_misses: Dict[int, int] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Total requests observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache."""
        return self.hits / self.requests if self.requests else 0.0

    def record_hit(self) -> None:
        """Count one cache hit."""
        self.hits += 1

    def record_miss(self, disk: int) -> None:
        """Count one miss served from broadcast ``disk`` (0-based)."""
        self.misses += 1
        self.per_disk_misses[disk] = self.per_disk_misses.get(disk, 0) + 1

    def access_locations(self, num_disks: int) -> Dict[str, float]:
        """Fraction of accesses served per location (Figure 11/14 data)."""
        total = self.requests or 1
        locations = {"cache": self.hits / total}
        for disk in range(num_disks):
            locations[f"disk{disk + 1}"] = (
                self.per_disk_misses.get(disk, 0) / total
            )
        return locations
