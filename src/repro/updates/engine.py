"""The volatile-data engine: versioned caching with invalidation reports.

A fast-engine variant where:

* the server transmits the page content current at each slot's
  completion — a fetched copy carries that instant's version;
* a client cache hit serves the cached copy; the read is **stale** when
  the live version has advanced past the fetched one;
* optionally, the server emits an invalidation report every
  ``report_interval`` broadcast units listing pages updated in the
  window since the previous report, and the client discards any cached
  copy it names.  Listening costs one broadcast unit of tuning per
  report (accounted in the ``reports_heard`` counter); the response-time
  cost is indirect — invalidated pages must be re-fetched.

With reports on, a stale read can still occur within one report window
(the copy aged between the update and the next report) — the same
consistency granularity Datacycle's per-cycle semantics give, which is
the paper's §7 "manageable" change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.base import CacheCounters, CachePolicy
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.sim.stats import RunningStats
from repro.updates.process import UpdateModel
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


@dataclass
class VolatileOutcome:
    """Measurements from one volatile-data run."""

    response: RunningStats
    counters: CacheCounters
    measured_requests: int
    stale_reads: int
    invalidations_applied: int
    reports_heard: int

    @property
    def mean_response_time(self) -> float:
        """Mean response time over the measured phase."""
        return self.response.mean

    @property
    def stale_fraction(self) -> float:
        """Fraction of measured requests served stale from the cache."""
        if self.measured_requests == 0:
            return 0.0
        return self.stale_reads / self.measured_requests


class VolatileEngine:
    """Request-stepping simulation over versioned broadcast data."""

    def __init__(
        self,
        schedule: BroadcastSchedule,
        mapping: LogicalPhysicalMapping,
        layout: DiskLayout,
        cache: CachePolicy,
        updates: UpdateModel,
        think_time: float = 2.0,
        report_interval: Optional[float] = None,
    ):
        if think_time < 0:
            raise ConfigurationError(f"think_time must be >= 0, got {think_time}")
        if report_interval is not None and report_interval <= 0:
            raise ConfigurationError(
                f"report_interval must be positive, got {report_interval}"
            )
        self.schedule = schedule
        self.mapping = mapping
        self.layout = layout
        self.cache = cache
        self.updates = updates
        self.think_time = think_time
        self.report_interval = report_interval

    def run_trace(
        self,
        trace: RequestTrace,
        warmup_requests: int = 0,
    ) -> VolatileOutcome:
        """Run the trace; the first ``warmup_requests`` are unmeasured."""
        schedule = self.schedule
        mapping = self.mapping
        cache = self.cache
        updates = self.updates
        think = self.think_time
        report_interval = self.report_interval
        disk_of_physical = self.layout.disk_of_page

        # Version each cached logical page was fetched at.
        fetched_version: Dict[int, int] = {}

        response = RunningStats()
        counters = CacheCounters()
        stale_reads = 0
        invalidations = 0
        reports_heard = 0
        next_report = report_interval if report_interval is not None else None
        last_report_time = 0.0

        now = 0.0
        for index in range(len(trace)):
            page = trace[index]
            now += think

            # Catch up on invalidation reports that aired while thinking
            # or waiting.  Each report covers updates since the previous
            # report (window granularity = the report interval).
            if next_report is not None:
                while next_report <= now:
                    reports_heard += 1
                    for cached_page in list(cache.pages()):
                        physical = mapping.to_physical(cached_page)
                        if updates.updated_in(
                            physical, last_report_time, next_report
                        ):
                            cache.discard(cached_page)
                            fetched_version.pop(cached_page, None)
                            invalidations += 1
                    last_report_time = next_report
                    next_report += report_interval

            measuring = index >= warmup_requests
            physical = mapping.to_physical(page)

            if cache.lookup(page, now):
                if measuring:
                    response.add(0.0)
                    counters.record_hit()
                    if updates.version_at(physical, now) > fetched_version.get(
                        page, 0
                    ):
                        stale_reads += 1
                continue

            arrival = schedule.next_arrival(physical, now)
            wait = arrival - now
            now = arrival
            outside = cache.admit(page, now)
            if outside != page:
                fetched_version[page] = updates.version_at(physical, now)
            if outside is not None and outside != page:
                fetched_version.pop(outside, None)
            if measuring:
                response.add(wait)
                counters.record_miss(disk_of_physical(physical))

        return VolatileOutcome(
            response=response,
            counters=counters,
            measured_requests=response.count,
            stale_reads=stale_reads,
            invalidations_applied=invalidations,
            reports_heard=reports_heard,
        )
