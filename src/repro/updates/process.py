"""Server-side update models: page versions over time.

An update model answers two queries, both needed by the volatile
engine:

* :meth:`version_at` — how many updates has physical page ``p``
  received by instant ``t``?  (The server transmits the version current
  at a slot's completion; a cached copy is stale when the live version
  has moved past the fetched one.)
* :meth:`updated_in` — did page ``p`` change in the window ``(a, b]``?
  (The content of an invalidation report covering that window.)

Two models:

* :class:`PeriodicUpdateModel` — page ``p`` updates every
  ``interval(p)`` time units with a random phase.  Version queries are
  O(1), so full-scale sweeps stay fast; the phase randomisation avoids
  lock-step artifacts with the broadcast period.
* :class:`PoissonUpdateModel` — updates arrive as a Poisson process of
  rate ``rate(p)``; event times are drawn lazily per page and memoised.
  Exact stochastic semantics at higher cost; used in tests to confirm
  the periodic model's conclusions are not an artifact of determinism.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError


class UpdateModel:
    """Interface shared by the update models."""

    def version_at(self, page: int, time: float) -> int:
        """Version of ``page`` at instant ``time`` (0 = never updated)."""
        raise NotImplementedError

    def updated_in(self, page: int, start: float, stop: float) -> bool:
        """True if ``page`` changed in the window ``(start, stop]``."""
        return self.version_at(page, stop) > self.version_at(page, start)


class PeriodicUpdateModel(UpdateModel):
    """Deterministic per-page update period with a random phase."""

    def __init__(
        self,
        interval: Callable[[int], float],
        num_pages: int,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_pages < 1:
            raise ConfigurationError(f"num_pages must be >= 1, got {num_pages}")
        self.num_pages = num_pages
        self._intervals = np.empty(num_pages, dtype=np.float64)
        for page in range(num_pages):
            value = float(interval(page))
            if value <= 0 and not math.isinf(value):
                raise ConfigurationError(
                    f"update interval must be positive or inf, got {value} "
                    f"for page {page}"
                )
            self._intervals[page] = value
        phases = (
            rng.random(num_pages) if rng is not None else np.zeros(num_pages)
        )
        self._phases = phases * np.where(
            np.isfinite(self._intervals), self._intervals, 1.0
        )

    @classmethod
    def uniform(
        cls,
        interval: float,
        num_pages: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "PeriodicUpdateModel":
        """Every page updates with the same period."""
        return cls(lambda page: interval, num_pages, rng)

    def version_at(self, page: int, time: float) -> int:
        interval = self._intervals[page]
        if not np.isfinite(interval):
            return 0
        if time < self._phases[page]:
            return 0
        return int((time - self._phases[page]) // interval) + 1

    def updated_in(self, page: int, start: float, stop: float) -> bool:
        return self.version_at(page, stop) > self.version_at(page, start)


class PoissonUpdateModel(UpdateModel):
    """Per-page Poisson update processes, lazily materialised."""

    def __init__(
        self,
        rate: Callable[[int], float],
        num_pages: int,
        rng: np.random.Generator,
        horizon: float = 1e7,
    ):
        if num_pages < 1:
            raise ConfigurationError(f"num_pages must be >= 1, got {num_pages}")
        self.num_pages = num_pages
        self._rate = rate
        self._rng = rng
        self._horizon = horizon
        self._events: Dict[int, np.ndarray] = {}

    def _events_for(self, page: int) -> np.ndarray:
        events = self._events.get(page)
        if events is None:
            rate = float(self._rate(page))
            if rate < 0:
                raise ConfigurationError(
                    f"update rate must be >= 0, got {rate} for page {page}"
                )
            if rate == 0.0:
                events = np.empty(0, dtype=np.float64)
            else:
                count = self._rng.poisson(rate * self._horizon)
                events = np.sort(self._rng.uniform(0, self._horizon, count))
            self._events[page] = events
        return events

    def version_at(self, page: int, time: float) -> int:
        if time > self._horizon:
            raise ConfigurationError(
                f"time {time} beyond the model horizon {self._horizon}"
            )
        events = self._events_for(page)
        return int(np.searchsorted(events, time, side="right"))
