"""Volatile broadcast data: updates and invalidation reports.

The paper restricts itself to read-only data and asks, in §7: "How
would our results have to change if we allowed the broadcast data to
change from cycle to cycle?  What kinds of changes would be allowed in
order to keep the scheme manageable?"  Its related work points at the
answer pattern: Datacycle's periodicity gives update semantics, and
[Barb94]'s *invalidation reports* let caching clients detect staleness
without upstream communication.

This subpackage builds that machinery:

* :mod:`~repro.updates.process` — server-side update models: pages
  carry versions that advance over time (deterministic-period or
  Poisson), queryable at any instant.
* :mod:`~repro.updates.engine` — :class:`VolatileEngine`, a fast-engine
  variant where cached copies carry the version they were fetched at.
  Clients optionally listen to periodic invalidation reports (one
  broadcast slot each) naming the pages updated in the last window and
  discard stale cache entries.
* Metrics: on top of response time and hit rate, the **stale-read
  fraction** (hits served from an outdated copy) and the number of
  invalidations applied.

The bench sweeps the update rate and shows the §7 trade: without
reports, staleness grows with volatility; with reports, staleness is
bounded by the report period at a small response-time cost (invalidated
pages must be re-fetched).
"""

from repro.updates.engine import VolatileEngine, VolatileOutcome
from repro.updates.process import PeriodicUpdateModel, PoissonUpdateModel

__all__ = [
    "PeriodicUpdateModel",
    "PoissonUpdateModel",
    "VolatileEngine",
    "VolatileOutcome",
]
