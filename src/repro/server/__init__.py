"""Server-side components for the process-oriented engine.

* :mod:`~repro.server.channel` — the shared broadcast medium: page
  waiters, snoopers, and exact slot-completion delivery.
* :mod:`~repro.server.server` — the broadcast server process that drives
  the channel through the periodic program.
"""

from repro.server.channel import BroadcastChannel
from repro.server.server import BroadcastServer

__all__ = ["BroadcastChannel", "BroadcastServer"]
