"""The broadcast channel: a shared, contention-free delivery medium.

Clients interact with the channel in two ways, mirroring the paper's
client model:

* :meth:`BroadcastChannel.wait_for` — block until the *next* completion
  of a physical page ("the client monitors the broadcast and waits for
  the item to arrive").  A request issued exactly at a completion
  instant has missed that transmission and gets the following one.
* :meth:`BroadcastChannel.snoop` — observe *every* page completion
  (used by the prefetching extension, which opportunistically upgrades
  its cache as pages go by).

Deliveries are driven by :class:`~repro.server.server.BroadcastServer`,
which asks the channel what the next *interesting* instant is, sleeps to
it, and calls :meth:`deliver_at`.  Waiters are keyed by their exact due
time (computed from the periodic schedule at registration), so delivery
semantics are identical to the fast engine's bisection arithmetic — the
property the engine cross-validation tests rely on.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.schedule import BroadcastSchedule
from repro.sim.kernel import Event, Simulator


class BroadcastChannel:
    """Waiter registry and delivery fan-out for one broadcast schedule."""

    def __init__(self, sim: Simulator, schedule: BroadcastSchedule):
        self.sim = sim
        self.schedule = schedule
        # (due_time, physical_page) -> events to fire with that arrival.
        self._waiters: Dict[Tuple[float, int], List[Event]] = {}
        # Min-heap over the waiter keys, cleaned lazily: delivered keys
        # stay in the heap until they surface and are popped, so finding
        # the earliest due time is O(log n) instead of min() over all
        # keys on every server wake-up.
        self._waiter_heap: List[Tuple[float, int]] = []
        self._snoopers: List[Callable[[float, int], None]] = []
        self._demand_event: Optional[Event] = None
        #: Pages delivered so far (for reporting/tests).
        self.deliveries = 0
        #: Optional :class:`repro.obs.trace.Tracer`; when attached and
        #: enabled, every transmitted page emits a ``channel.deliver``
        #: record.  Attach a no-op snooper (see
        #: :meth:`observe_every_slot`) to force delivery of *every*
        #: non-empty slot for full-broadcast traces.
        self.tracer = None
        #: Row index when this channel is one of several in a
        #: multi-channel program; ``None`` (single-channel) keeps the
        #: ``channel.deliver`` record shape of 1.1 unchanged.
        self.channel_index: Optional[int] = None

    # -- client-facing API -----------------------------------------------------
    def wait_for(
        self, physical_page: int, *, not_before: Optional[float] = None
    ) -> Event:
        """Event firing at the next completion of ``physical_page``.

        The event's value is the arrival time.  ``not_before`` moves the
        earliest usable completion past ``sim.now`` — a retuning client
        cannot hear this channel until its tuner has settled.
        """
        start = self.sim.now if not_before is None else not_before
        due = self.schedule.next_arrival(physical_page, start)
        event = self.sim.event()
        key = (due, physical_page)
        pending = self._waiters.get(key)
        if pending is None:
            self._waiters[key] = [event]
            heapq.heappush(self._waiter_heap, key)
        else:
            pending.append(event)
        self._signal_demand()
        return event

    def snoop(self, callback: Callable[[float, int], None]) -> None:
        """Invoke ``callback(time, physical_page)`` for every completion."""
        self._snoopers.append(callback)
        self._signal_demand()

    def unsnoop(self, callback: Callable[[float, int], None]) -> None:
        """Remove a snooper registered with :meth:`snoop`."""
        self._snoopers.remove(callback)

    def observe_every_slot(self) -> Callable[[float, int], None]:
        """Force every non-empty slot to be delivered (for tracing).

        Registers a no-op snooper so the server stops sleeping through
        unobserved stretches; combined with an attached ``tracer`` the
        trace then carries one ``channel.deliver`` record per broadcast
        page.  Returns the snooper so callers can :meth:`unsnoop` it.
        """
        def _observe(_time: float, _page: int) -> None:
            return None

        self.snoop(_observe)
        return _observe

    # -- server-facing API -----------------------------------------------------
    def has_demand(self) -> bool:
        """True while anything requires the server to keep transmitting."""
        return bool(self._waiters) or bool(self._snoopers)

    def next_interesting_time(self, now: float) -> Optional[float]:
        """The earliest instant at which a delivery matters, or None.

        With snoopers attached every non-empty slot matters; otherwise
        only the earliest waiter due time does.
        """
        if self._snoopers:
            # One searchsorted over the precomputed sorted non-empty
            # slot offsets replaces the old O(period) forward probe.
            return self.schedule.next_nonempty_completion(now)
        heap = self._waiter_heap
        waiters = self._waiters
        while heap and heap[0] not in waiters:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def deliver_at(self, now: float) -> None:
        """Fire the completion at instant ``now`` (a slot boundary).

        The completing slot is the one covering ``[now-1, now)``.
        Padding slots deliver nothing.
        """
        page = self.schedule.page_at(now - 0.5)
        if page is None:
            return
        self.deliveries += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            if self.channel_index is None:
                tracer.emit("channel.deliver", now, page=int(page))
            else:
                tracer.emit("channel.deliver", now, page=int(page),
                            channel=self.channel_index)
        key = (now, page)
        waiters = self._waiters.pop(key, ())
        for event in waiters:
            event.succeed(now)
        for callback in list(self._snoopers):
            callback(now, page)

    def demand_event(self) -> Event:
        """Event the server parks on while the channel is idle."""
        if self._demand_event is None or self._demand_event.triggered:
            self._demand_event = self.sim.event()
        return self._demand_event

    def _signal_demand(self) -> None:
        if self._demand_event is not None and not self._demand_event.triggered:
            self._demand_event.succeed()
