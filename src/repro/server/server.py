"""The broadcast server process.

"A server continuously and repeatedly broadcasts data to the clients"
(§1.2).  The :class:`BroadcastServer` walks the periodic program and
hands each slot completion to the channel.  As an efficiency measure it
sleeps through stretches nobody is listening to — the broadcast is still
conceptually continuous; the simulation simply skips instants that can
have no observable effect (no waiter, no snooper).
"""

from __future__ import annotations

from repro.core.schedule import BroadcastSchedule
from repro.server.channel import BroadcastChannel
from repro.sim.kernel import Simulator
from repro.sim.process import Process


class BroadcastServer:
    """Drives a :class:`BroadcastChannel` through its schedule forever."""

    def __init__(
        self,
        sim: Simulator,
        schedule: BroadcastSchedule,
        channel: BroadcastChannel,
    ):
        self.sim = sim
        self.schedule = schedule
        self.channel = channel
        #: Slots actually transmitted (delivered to at least the channel).
        self.slots_transmitted = 0
        self.process: Process = sim.process(self._run())

    def _run(self):
        from repro.sim.process import AnyOf

        sim = self.sim
        channel = self.channel
        while True:
            if not channel.has_demand():
                # Park until a client registers interest; the broadcast
                # "continues" in virtual silence meanwhile.
                yield channel.demand_event()
                continue
            target = channel.next_interesting_time(sim.now)
            if target is None:  # pragma: no cover - demand implies a target
                continue
            if target > sim.now:
                # Sleep to the target, but wake early if new demand
                # registers (it may be due before the current target).
                timer = sim.timeout(target - sim.now)
                changed = channel.demand_event()
                yield AnyOf(sim, [timer, changed])
                if sim.now < target:
                    continue  # demand changed: re-plan
            channel.deliver_at(sim.now)
            self.slots_transmitted += 1
