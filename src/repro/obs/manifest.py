"""Run manifests: one JSON document that pins down a run completely.

A manifest answers "what exactly produced this number?": the full
configuration and its hash, the seed, the schedule's structural
properties, the warm-up/measurement split, the headline metrics, wall
time, and (optionally) a metrics-registry snapshot and trace totals.

Manifests are deliberately plain dicts — JSON-ready, diffable,
schema-tagged — rather than classes; the sweep aggregate embeds one
per-run record per configuration, which is the ``BENCH_*.json``-style
trajectory the bench scripts emit.

Nothing here reads the wall clock or a calendar: determinism-sensitive
fields only.  Wall time arrives pre-measured on the result object (via
:mod:`repro.obs.clock`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Dict, Iterable, List, Optional

MANIFEST_SCHEMA = "repro.obs.manifest/1"
SWEEP_SCHEMA = "repro.obs.sweep/1"


#: Config fields serialized only when they differ from their default.
#: Omit-default serialization keeps the hash of every pre-existing
#: configuration unchanged when a new field is introduced, so bench
#: history baselines and sweep-checkpoint fingerprints stay valid.
_OMIT_WHEN_DEFAULT = {"channels": 1, "retune_cost": 1.0}


def _config_dict(config) -> Dict:
    """A plain-dict view of a config (dataclass or mapping)."""
    data = asdict(config) if is_dataclass(config) else dict(config)
    for key, default in _OMIT_WHEN_DEFAULT.items():
        if key in data and data[key] == default:
            del data[key]
    return data


def config_hash(config) -> str:
    """SHA-256 over the canonical JSON form of a configuration.

    Two configs hash equal iff every field (including defaults) matches,
    so the hash is a stable identity for caching and cross-run joins.
    """
    payload = json.dumps(_config_dict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_manifest(result, *, metrics=None, tracer=None, profile=None,
                   monitors=None) -> Dict:
    """The manifest dict for one :class:`ExperimentResult`-shaped object.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) and
    ``tracer`` (a :class:`repro.obs.trace.Tracer`) contribute their
    snapshot / emission totals when provided; ``profile`` (a
    :class:`repro.obs.profile.Profiler`) and ``monitors`` (a
    :class:`repro.obs.monitor.MonitorSuite`) embed their schema-tagged
    snapshots — so a manifest carries the run's phase timings,
    timing-tier attribution, and any invariant violations alongside the
    measurements they describe.
    """
    config = result.config
    stats = result.response_stats
    manifest: Dict = {
        "schema": MANIFEST_SCHEMA,
        "label": config.describe(),
        "config": _config_dict(config),
        "config_hash": config_hash(config),
        "seed": config.seed,
        "schedule_period": result.schedule_period,
        "schedule_utilisation": result.schedule_utilisation,
        "warmup_requests": result.warmup_requests,
        "measured_requests": result.measured_requests,
        "mean_response_time": result.mean_response_time,
        "hit_rate": result.hit_rate,
        "response": {
            "count": stats.count,
            "mean": stats.mean,
            "stddev": stats.stddev,
            "min": stats.minimum,
            "max": stats.maximum,
        },
        "access_locations": dict(result.access_locations),
        "wall_seconds": result.wall_seconds,
    }
    # Multi-channel runs carry their tuner and per-channel figures;
    # single-channel manifests keep their exact 1.1 shape.
    channel_utilisation = getattr(result, "channel_utilisation", None)
    if channel_utilisation is not None:
        manifest["retunes"] = result.retunes
        manifest["channel_utilisation"] = list(channel_utilisation)
    if metrics is not None:
        manifest["metrics"] = metrics.snapshot()
    if tracer is not None:
        manifest["trace"] = {
            "enabled": tracer.enabled,
            "records_emitted": tracer.emitted,
        }
    if profile is not None:
        manifest["profile"] = profile.snapshot()
    if monitors is not None:
        manifest["monitors"] = monitors.snapshot()
    return manifest


def write_manifest(manifest: Dict, path: str) -> None:
    """Serialise one manifest to ``path`` as indented, sorted JSON."""
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def build_sweep_manifest(results: Iterable, *, metrics=None,
                         tracer=None, name: str = "sweep",
                         profile=None, monitors=None,
                         build_cache: Optional[Dict] = None) -> Dict:
    """Aggregate per-run manifests into one sweep document.

    The summary block carries the cross-run totals a bench trajectory
    wants in one glance (total wall time, request volume, response-time
    extremes); ``runs`` holds the full per-configuration manifests.
    ``profile``/``monitors`` embed their snapshots like
    :func:`build_manifest`; ``build_cache`` takes a pre-computed
    :meth:`repro.exec.build.BuildCache.timing_stats` dict (schedule
    reuse and timing-tier totals for the whole sweep).
    """
    runs: List[Dict] = [build_manifest(result) for result in results]
    means = [run["mean_response_time"] for run in runs]
    summary: Dict = {
        "runs": len(runs),
        "total_wall_seconds": sum(run["wall_seconds"] for run in runs),
        "total_measured_requests": sum(
            run["measured_requests"] for run in runs
        ),
        "mean_response_time_min": min(means) if means else 0.0,
        "mean_response_time_max": max(means) if means else 0.0,
    }
    sweep: Dict = {
        "schema": SWEEP_SCHEMA,
        "name": name,
        "summary": summary,
        "runs": runs,
    }
    if metrics is not None:
        sweep["metrics"] = metrics.snapshot()
    if tracer is not None:
        sweep["trace"] = {
            "enabled": tracer.enabled,
            "records_emitted": tracer.emitted,
        }
    if profile is not None:
        sweep["profile"] = profile.snapshot()
    if monitors is not None:
        sweep["monitors"] = monitors.snapshot()
    if build_cache is not None:
        sweep["build_cache"] = build_cache
    return sweep


def write_sweep_manifest(results: Iterable, path: str,
                         *, name: str = "sweep",
                         metrics=None, tracer=None,
                         profile=None, monitors=None,
                         build_cache: Optional[Dict] = None) -> Dict:
    """Build and write a sweep manifest; returns the written dict."""
    sweep = build_sweep_manifest(results, metrics=metrics, tracer=tracer,
                                 name=name, profile=profile,
                                 monitors=monitors, build_cache=build_cache)
    with open(path, "w") as handle:
        json.dump(sweep, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return sweep


def read_manifest(path: str) -> Dict:
    """Load a manifest (run or sweep) written by this module."""
    with open(path) as handle:
        return json.load(handle)


#: Manifest fields that measure elapsed wall time — the only fields
#: allowed to differ between a serial and a parallel run of one sweep.
#: ``phase_seconds`` is the profiler's per-phase wall-time block.
WALL_CLOCK_FIELDS = frozenset({
    "wall_seconds", "total_wall_seconds", "phase_seconds",
})


def strip_wall_clock(document):
    """A deep copy of a manifest with every wall-clock field removed.

    Comparing ``strip_wall_clock(serial)`` to ``strip_wall_clock(parallel)``
    is the determinism check: executors guarantee everything else is
    byte-identical (see ``docs/ARCHITECTURE.md``).
    """
    if isinstance(document, dict):
        return {
            key: strip_wall_clock(value)
            for key, value in document.items()
            if key not in WALL_CLOCK_FIELDS
        }
    if isinstance(document, list):
        return [strip_wall_clock(item) for item in document]
    return document
