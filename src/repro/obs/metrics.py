"""A per-run registry of named counters, gauges, and time-weighted stats.

The registry is the machine-readable side of a run: components (or the
runner itself) register instruments by dotted name, and a single
:meth:`MetricsRegistry.snapshot` call at the end of the run flattens
everything to a JSON-ready dict that manifests embed verbatim.

Time-weighted instruments reuse :class:`repro.sim.stats.TimeWeightedStat`
so queue-length-style signals are averaged exactly the way the hybrid
channel already averages its pull queue.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.sim.stats import TimeWeightedStat


class Counter:
    """A monotonically increasing count (requests, hits, evictions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (mean response time, schedule period)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with its latest value."""
        self.value = value


class TimeWeightedGauge:
    """A piecewise-constant signal averaged over simulation time."""

    __slots__ = ("name", "_stat")

    def __init__(self, name: str, start_time: float = 0.0,
                 initial_value: float = 0.0):
        self.name = name
        self._stat = TimeWeightedStat(start_time, initial_value)

    def set(self, time: float, value: float) -> None:
        """The signal changed to ``value`` at simulation ``time``.

        Time-weighted means are only defined over a non-decreasing time
        series, so a timestamp behind the last recorded change is a
        caller bug and raises :class:`ConfigurationError` naming the
        gauge — catching it here beats a silently negative span.
        """
        if time < self._stat.last_time:
            raise ConfigurationError(
                f"time-weighted gauge {self.name!r}: timestamp {time} "
                f"precedes the last recorded change at "
                f"{self._stat.last_time}; feed the signal in "
                f"non-decreasing time order"
            )
        self._stat.record(time, value)

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean (optionally projected to ``now``)."""
        return self._stat.mean(now)

    @property
    def maximum(self) -> float:
        """Largest value the signal has held."""
        return self._stat.maximum

    @property
    def current(self) -> float:
        """The signal's present value."""
        return self._stat.current


Instrument = Union[Counter, Gauge, TimeWeightedGauge]


class MetricsRegistry:
    """Get-or-create instruments by name; snapshot them all at once."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, kind, factory) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def time_weighted(self, name: str, start_time: float = 0.0,
                      initial_value: float = 0.0) -> TimeWeightedGauge:
        """The time-weighted gauge called ``name``, created on first use."""
        return self._get_or_create(
            name,
            TimeWeightedGauge,
            lambda: TimeWeightedGauge(name, start_time, initial_value),
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self):
        """The registered instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """Flatten every instrument to a JSON-ready ``{name: value}`` dict.

        Counters and gauges contribute their value; time-weighted gauges
        contribute ``{"mean", "max", "current"}`` (mean projected to
        ``now`` when given).
        """
        out: Dict[str, object] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, TimeWeightedGauge):
                out[name] = {
                    "mean": instrument.mean(now),
                    "max": instrument.maximum,
                    "current": instrument.current,
                }
            else:
                out[name] = instrument.value
        return out
