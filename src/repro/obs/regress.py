"""Benchmark regression gating over a schema-versioned history.

The bench harnesses (``benchmarks/bench_*.py``) emit ``BENCH_*.json``
documents; this module turns them into a commit-over-commit trajectory:

* :func:`extract_entry` distils one bench document into a history entry
  — benchmark name, a config hash over the *non-volatile* fields (wall
  times, speedups, and host identity stripped, so "same benchmark, same
  parameters" hashes equal across machines and runs), seed provenance,
  host identity, and the wall-clock metrics with their improvement
  direction (``wall_seconds`` lower-is-better, ``speedup``
  higher-is-better);
* ``results/bench_history.jsonl`` accumulates one entry per recorded
  run (append-only JSONL, schema-tagged);
* :func:`compare` checks fresh bench documents against the recorded
  baseline *noise-aware*: a metric regresses only when it lands beyond
  ``sigma`` standard deviations of the recorded samples **and** beyond a
  relative floor (single-sample baselines have zero variance; the floor
  keeps ordinary machine jitter from tripping the gate);
* ``python -m repro.obs regress`` renders the comparison as text,
  markdown, or JSON and exits non-zero on regression — the CI gate.

Nothing here reads a clock or calendar: entries are identified by
content, not timestamps, so recording is deterministic and the history
diff in a commit shows exactly the measured numbers.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Schema tag of each history entry (one JSONL line).
HISTORY_SCHEMA = "repro.obs.bench_history/1"

#: Schema tag of the comparison report document.
REPORT_SCHEMA = "repro.obs.regress_report/1"

#: Default location of the committed history, relative to the repo root.
DEFAULT_HISTORY = os.path.join("results", "bench_history.jsonl")

#: A fresh value regresses when it is beyond ``mean ± max(sigma·std,
#: rel_floor·|mean|)`` in the bad direction.  The floor dominates for
#: single-sample baselines (std == 0) and absorbs machine jitter.
DEFAULT_SIGMA = 3.0
DEFAULT_REL_FLOOR = 0.25

#: Leaf keys extracted as metrics, with their improvement direction.
_METRIC_DIRECTIONS = {
    "wall_seconds": "lower",
    "total_wall_seconds": "lower",
    "serial_wall_seconds": "lower",
    "parallel_wall_seconds": "lower",
    "speedup": "higher",
}

#: List-valued fields whose elements are per-grid-point records; the
#: gate compares headline totals, not every point, so these are not
#: walked for metrics.
_PER_POINT_LISTS = frozenset({"trajectory", "points", "runs"})

#: Document fields that vary run-to-run without the benchmark changing;
#: stripped before hashing so the config hash is a parameter identity.
_VOLATILE_FIELDS = frozenset({
    "wall_seconds", "total_wall_seconds", "speedup", "host",
    "shared_build_seconds", "effective_jobs", "trajectory", "scaling",
})


def _strip_volatile(document):
    """Deep copy with wall-clock / host / derived-timing fields removed."""
    if isinstance(document, dict):
        return {
            key: _strip_volatile(value)
            for key, value in document.items()
            if key not in _VOLATILE_FIELDS
        }
    if isinstance(document, list):
        return [_strip_volatile(item) for item in document]
    return document


def _walk_metrics(document, prefix: str, out: Dict[str, Dict]) -> None:
    if isinstance(document, dict):
        for key in sorted(document):
            value = document[key]
            if key in _PER_POINT_LISTS and isinstance(value, list):
                continue
            path = f"{prefix}.{key}" if prefix else key
            direction = _METRIC_DIRECTIONS.get(key)
            if direction is not None and isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                out[path] = {"value": float(value), "direction": direction}
            else:
                _walk_metrics(value, path, out)
    elif isinstance(document, list):
        for index, item in enumerate(document):
            _walk_metrics(item, f"{prefix}[{index}]", out)


def _collect_seeds(document, out: List[int]) -> None:
    if isinstance(document, dict):
        for key in sorted(document):
            value = document[key]
            if key == "seed" and isinstance(value, int):
                out.append(value)
            else:
                _collect_seeds(value, out)
    elif isinstance(document, list):
        for item in document:
            _collect_seeds(item, out)


def extract_entry(document: Dict, *, source: str = "") -> Dict:
    """One history entry for a ``BENCH_*.json`` document."""
    bench = document.get("benchmark")
    if not bench:
        raise ConfigurationError(
            f"bench document {source or '<inline>'!r} has no 'benchmark' "
            "field; is it a BENCH_*.json emitted by benchmarks/?"
        )
    stable = _strip_volatile(document)
    payload = json.dumps(stable, sort_keys=True, default=str)
    metrics: Dict[str, Dict] = {}
    _walk_metrics(document, "", metrics)
    seeds: List[int] = []
    _collect_seeds(document, seeds)
    return {
        "schema": HISTORY_SCHEMA,
        "bench": bench,
        "config_hash": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        "host": document.get("host"),
        "seeds": sorted(set(seeds)),
        "source": source,
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# history file I/O
# ---------------------------------------------------------------------------

def read_history(path: str) -> List[Dict]:
    """The recorded entries, oldest first; a missing file is empty."""
    if not os.path.exists(path):
        return []
    entries: List[Dict] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("schema") != HISTORY_SCHEMA:
                raise ConfigurationError(
                    f"{path}:{number}: unknown history schema "
                    f"{entry.get('schema')!r} (expected {HISTORY_SCHEMA})"
                )
            entries.append(entry)
    return entries


def append_history(path: str, entries: Iterable[Dict]) -> int:
    """Append entries to the history file; returns the count written."""
    entries = list(entries)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True))
            handle.write("\n")
    return len(entries)


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

def _baseline_stats(values: List[float]) -> Tuple[float, float]:
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def compare(
    history: List[Dict],
    fresh: List[Dict],
    *,
    sigma: float = DEFAULT_SIGMA,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> Dict:
    """Noise-aware comparison of fresh entries against the history.

    The baseline for a fresh entry is every recorded entry sharing its
    benchmark name and config hash (same parameters — wall clock and
    host excluded by construction).  Per metric, the verdict is

    * ``no-baseline`` — nothing recorded to compare against (passes);
    * ``ok`` — within ``mean ± max(sigma·std, rel_floor·|mean|)``;
    * ``improved`` / ``regression`` — beyond the band, in the good or
      bad direction for the metric.

    The report's top-level ``status`` is ``regression`` iff any metric
    regressed; the CLI turns that into a non-zero exit.
    """
    benches: List[Dict] = []
    totals = {"ok": 0, "regression": 0, "improved": 0, "no-baseline": 0}
    for entry in fresh:
        baseline = [
            recorded for recorded in history
            if recorded["bench"] == entry["bench"]
            and recorded["config_hash"] == entry["config_hash"]
        ]
        rows: List[Dict] = []
        for name in sorted(entry["metrics"]):
            metric = entry["metrics"][name]
            value = metric["value"]
            direction = metric["direction"]
            samples = [
                recorded["metrics"][name]["value"]
                for recorded in baseline
                if name in recorded["metrics"]
            ]
            row: Dict = {
                "metric": name,
                "value": value,
                "direction": direction,
                "samples": len(samples),
            }
            if not samples:
                row["status"] = "no-baseline"
            else:
                mean, std = _baseline_stats(samples)
                threshold = max(sigma * std, rel_floor * abs(mean))
                row.update(baseline_mean=mean, baseline_std=std,
                           threshold=threshold)
                delta = value - mean
                bad = delta if direction == "lower" else -delta
                if bad > threshold:
                    row["status"] = "regression"
                elif bad < -threshold:
                    row["status"] = "improved"
                else:
                    row["status"] = "ok"
            totals[row["status"]] += 1
            rows.append(row)
        benches.append({
            "bench": entry["bench"],
            "source": entry.get("source", ""),
            "config_hash": entry["config_hash"],
            "baseline_entries": len(baseline),
            "metrics": rows,
        })
    return {
        "schema": REPORT_SCHEMA,
        "sigma": sigma,
        "rel_floor": rel_floor,
        "totals": totals,
        "status": "regression" if totals["regression"] else "ok",
        "benches": benches,
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_STATUS_MARKS = {
    "ok": "ok", "improved": "improved (+)",
    "regression": "REGRESSION", "no-baseline": "no baseline",
}


def render_text(report: Dict) -> str:
    """Human-readable comparison report."""
    lines = [
        f"benchmark regression gate "
        f"(sigma={report['sigma']}, rel_floor={report['rel_floor']:.0%})"
    ]
    for bench in report["benches"]:
        lines.append(
            f"  {bench['bench']} "
            f"[{bench['baseline_entries']} baseline entries]"
        )
        for row in bench["metrics"]:
            detail = ""
            if "baseline_mean" in row:
                detail = (
                    f"  baseline {row['baseline_mean']:.4g} "
                    f"± {row['threshold']:.4g}"
                )
            lines.append(
                f"    {row['metric']:<36} {row['value']:>10.4g}  "
                f"{_STATUS_MARKS[row['status']]}{detail}"
            )
    totals = report["totals"]
    lines.append(
        f"result: {report['status'].upper()} "
        f"({totals['ok']} ok, {totals['improved']} improved, "
        f"{totals['no-baseline']} without baseline, "
        f"{totals['regression']} regressed)"
    )
    return "\n".join(lines)


def render_markdown(report: Dict) -> str:
    """The comparison as a markdown table (for PR comments / job pages)."""
    lines = [
        "# Benchmark regression gate",
        "",
        f"Verdict: **{report['status'].upper()}** "
        f"(sigma={report['sigma']}, relative floor "
        f"{report['rel_floor']:.0%})",
        "",
        "| benchmark | metric | value | baseline | status |",
        "|---|---|---:|---:|---|",
    ]
    for bench in report["benches"]:
        for row in bench["metrics"]:
            baseline = (
                f"{row['baseline_mean']:.4g} ± {row['threshold']:.4g}"
                if "baseline_mean" in row else "—"
            )
            lines.append(
                f"| {bench['bench']} | `{row['metric']}` "
                f"| {row['value']:.4g} | {baseline} "
                f"| {_STATUS_MARKS[row['status']]} |"
            )
    return "\n".join(lines)


def run_gate(
    bench_paths: List[str],
    *,
    history_path: str = DEFAULT_HISTORY,
    record: bool = False,
    sigma: float = DEFAULT_SIGMA,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> Tuple[Dict, List[Dict]]:
    """Load, compare, and optionally record; the CLI's work function.

    Returns ``(report, fresh_entries)``.  With ``record=True`` the fresh
    entries are appended to the history *only when the gate passes*, so
    a regressed run never pollutes its own baseline.
    """
    fresh = []
    for path in bench_paths:
        with open(path) as handle:
            document = json.load(handle)
        fresh.append(extract_entry(document, source=os.path.basename(path)))
    history = read_history(history_path)
    report = compare(history, fresh, sigma=sigma, rel_floor=rel_floor)
    if record and report["status"] == "ok":
        appended = append_history(history_path, fresh)
        report["recorded"] = appended
    return report, fresh
