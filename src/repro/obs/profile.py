"""Hot-path profiling: phase timings, engine counters, timing tiers.

A :class:`Profiler` is the run-shaped container the ``--profile`` flag
fills: per-phase wall time (build / run / aggregate, measured through
the RL001-allowlisted :mod:`repro.obs.clock` shim), engine loop and
event counters, and the :class:`~repro.core.schedule.BroadcastSchedule`
timing-tier query counts (closed-form / wait-table / bisection — see
``docs/PERFORMANCE.md``).

The contract mirrors the trace bus: hook sites guard with
``profile is not None and profile.enabled`` so a run without a profiler
pays a branch and nothing else (gated by
``benchmarks/bench_obs_overhead.py``), and an attached profiler never
changes measured results — profiled fast-engine runs route through the
general loop so every miss flows through ``schedule.next_arrival`` and
is tier-attributed, a loop the equivalence tests hold byte-identical to
the allocation-free hot path.

Wall-clock caveat: phase timings are the one wall-clock-derived block a
manifest embeds beyond ``wall_seconds``; they live under the
``phase_seconds`` key, which :func:`repro.obs.manifest.strip_wall_clock`
removes for determinism comparisons.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.obs.clock import perf_counter

#: Schema tag of the profile snapshot embedded in manifests.
PROFILE_SCHEMA = "repro.obs.profile/1"

#: The three timing tiers of ``BroadcastSchedule.next_arrival``, in
#: preference order (see ``docs/PERFORMANCE.md``).
TIER_NAMES = ("closed_form", "wait_table", "bisect")


class Profiler:
    """Accumulates phase timings, counters, peaks, and tier counts.

    One profiler observes a whole session (a run, a sweep, a fleet);
    phases and counters accumulate across every plan it sees, so the
    snapshot is the per-subsystem breakdown of everything executed.
    """

    __slots__ = ("enabled", "phase_seconds", "counters", "tiers", "peaks",
                 "_running")

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        #: Accumulated wall seconds per phase name.
        self.phase_seconds: Dict[str, float] = {}
        #: Monotonic counters (loop iterations, events, requests).
        self.counters: Dict[str, int] = {}
        #: Timing-tier query counts, accumulated from schedule deltas.
        self.tiers: Dict[str, int] = {name: 0 for name in TIER_NAMES}
        #: High-water marks (event-heap depth, table bytes).
        self.peaks: Dict[str, int] = {}
        self._running: Dict[str, float] = {}

    # -- phases ------------------------------------------------------------
    def start_phase(self, name: str) -> None:
        """Mark ``name`` as running from now (re-entrant starts are errors)."""
        if name in self._running:
            raise ConfigurationError(f"phase {name!r} is already running")
        self._running[name] = perf_counter()

    def stop_phase(self, name: str) -> float:
        """Stop ``name``; its elapsed time joins the accumulated total."""
        started = self._running.pop(name, None)
        if started is None:
            raise ConfigurationError(f"phase {name!r} was never started")
        elapsed = perf_counter() - started
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
        return elapsed

    def add_phase(self, name: str, seconds: float) -> None:
        """Fold an externally-measured span into phase ``name``."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    # -- counters ----------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def peak(self, name: str, value: int) -> None:
        """Record ``value`` as a high-water mark for ``name`` (max wins)."""
        if value > self.peaks.get(name, 0):
            self.peaks[name] = value

    def add_tier_counts(self, queries: Mapping[str, int]) -> None:
        """Fold one schedule's timing-tier query delta into the totals."""
        for name in TIER_NAMES:
            self.tiers[name] += int(queries.get(name, 0))

    @property
    def tier_total(self) -> int:
        """Total ``next_arrival`` queries attributed across the tiers."""
        return sum(self.tiers.values())

    # -- output ------------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-ready profile document (embedded in manifests verbatim)."""
        return {
            "schema": PROFILE_SCHEMA,
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
            "counters": dict(sorted(self.counters.items())),
            "tiers": dict(self.tiers),
            "peaks": dict(sorted(self.peaks.items())),
        }

    def report(self) -> str:
        """The per-subsystem breakdown ``--profile`` prints."""
        lines = ["profile breakdown"]
        if self.phase_seconds:
            total = sum(self.phase_seconds.values())
            lines.append("  phases (wall seconds)")
            for name, seconds in sorted(
                self.phase_seconds.items(), key=lambda item: -item[1]
            ):
                share = seconds / total if total > 0 else 0.0
                lines.append(
                    f"    {name:<12} {seconds:>9.4f}s  ({share:.1%})"
                )
        if self.tier_total:
            lines.append("  schedule timing tiers (next_arrival queries)")
            for name in TIER_NAMES:
                count = self.tiers[name]
                share = count / self.tier_total
                lines.append(f"    {name:<12} {count:>9}  ({share:.1%})")
        if self.counters:
            lines.append("  engine counters")
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name:<24} {value}")
        if self.peaks:
            lines.append("  peaks")
            for name, value in sorted(self.peaks.items()):
                lines.append(f"    {name:<24} {value}")
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Profiler enabled={self.enabled} "
            f"phases={len(self.phase_seconds)} tiers={self.tier_total}>"
        )


def record_profile_metrics(metrics, profile: Profiler) -> None:
    """Fold a profiler's counters and tiers into a metrics registry.

    Counters land under ``profile.<name>``; tier counts under
    ``profile.tier.<tier>`` — so sweep manifests with both a ``metrics``
    registry and a profiler attached carry the totals in both blocks,
    consistently.
    """
    for name, value in sorted(profile.counters.items()):
        metrics.counter(f"profile.{name}").inc(value)
    for name in TIER_NAMES:
        metrics.counter(f"profile.tier.{name}").inc(profile.tiers[name])
