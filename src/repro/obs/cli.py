"""``python -m repro.obs`` — summarise JSONL traces from the trace bus.

``summary`` reads a trace produced by a :class:`repro.obs.trace.JsonlSink`
and reports, per section and only for the record kinds present:

* **overview** — record counts by kind and the simulated time span;
* **broadcast** — per-page inter-arrival statistics from
  ``channel.deliver`` records.  On a correct multi-disk program every
  page's gap variance is exactly zero (the §2.1 fixed-inter-arrival
  property — the Bus Stop Paradox check);
* **responses** — hit/miss/wait breakdown from the ``client.*`` records,
  with a wait-time histogram;
* **cache** — admissions / evictions / rejections and the pages with
  the longest cache residency, from the ``cache.*`` records.

Exit codes follow the repro CLI convention: 0 on success, 2 on usage
errors (unknown command, unreadable trace).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.obs.trace import (
    CACHE_ADMIT,
    CACHE_DISCARD,
    CACHE_EVICT,
    CHANNEL_DELIVER,
    CLIENT_HIT,
    CLIENT_MISS,
    CLIENT_WAIT,
    read_jsonl,
)
from repro.sim.stats import Histogram, RunningStats

EXIT_OK = 0
EXIT_USAGE = 2

#: Gap variance below this counts as "fixed" (§2.1); trace timestamps
#: are sums of unit slots, so true fixed gaps come out exactly equal.
FIXED_GAP_TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# analyses
# ---------------------------------------------------------------------------

def overview(records: List[dict]) -> Dict:
    """Record totals by kind plus the simulated time span."""
    by_kind: Dict[str, int] = {}
    for record in records:
        by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
    times = [record["t"] for record in records]
    return {
        "records": len(records),
        "kinds": by_kind,
        "time_span": [min(times), max(times)] if times else [0.0, 0.0],
    }


def interarrival_summary(records: List[dict], top: int = 5) -> Optional[Dict]:
    """Per-page inter-arrival stats from ``channel.deliver`` records."""
    arrivals: Dict[int, List[float]] = {}
    for record in records:
        if record["kind"] == CHANNEL_DELIVER:
            arrivals.setdefault(record["page"], []).append(record["t"])
    gaps: Dict[int, RunningStats] = {}
    for page, times in arrivals.items():
        if len(times) < 2:
            continue
        stats = RunningStats()
        stats.extend(b - a for a, b in zip(times, times[1:]))
        gaps[page] = stats
    if not arrivals:
        return None
    max_variance = max(
        (stats.variance for stats in gaps.values()), default=0.0
    )
    worst = sorted(
        gaps.items(), key=lambda item: (-item[1].variance, item[0])
    )[:top]
    return {
        "pages_observed": len(arrivals),
        "pages_with_gaps": len(gaps),
        "max_gap_variance": max_variance,
        "fixed_interarrival": max_variance <= FIXED_GAP_TOLERANCE,
        "pages": [
            {
                "page": page,
                "arrivals": stats.count + 1,
                "mean_gap": stats.mean,
                "gap_variance": stats.variance,
            }
            for page, stats in worst
        ],
    }


def response_summary(records: List[dict], bins: int = 8) -> Optional[Dict]:
    """Hit/miss/wait breakdown from the ``client.*`` records."""
    hits = sum(1 for r in records if r["kind"] == CLIENT_HIT)
    misses = sum(1 for r in records if r["kind"] == CLIENT_MISS)
    waits = [r["wait"] for r in records if r["kind"] == CLIENT_WAIT]
    if not (hits or misses or waits):
        return None
    stats = RunningStats()
    stats.extend(waits)
    summary: Dict = {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        "waits": {
            "count": stats.count,
            "mean": stats.mean,
            "stddev": stats.stddev,
            "max": stats.maximum if stats.count else 0.0,
        },
    }
    if waits and max(waits) > 0:
        histogram = Histogram(0.0, max(waits), bins)
        for wait in waits:
            histogram.add(wait)
        summary["wait_histogram"] = [
            {"lo": lo, "hi": hi, "count": count}
            for lo, hi, count in histogram.nonempty()
        ] + (
            [{"lo": histogram.high, "hi": None, "count": histogram.overflow}]
            if histogram.overflow
            else []
        )
    return summary


def cache_summary(records: List[dict], top: int = 5) -> Optional[Dict]:
    """Admission/eviction totals and residency timeline from ``cache.*``."""
    admits = evictions = rejections = discards = 0
    entered: Dict[int, float] = {}
    resident_for: Dict[int, float] = {}
    last_time = 0.0

    def leave(page: int, now: float) -> None:
        start = entered.pop(page, None)
        if start is not None:
            resident_for[page] = resident_for.get(page, 0.0) + (now - start)

    for record in records:
        kind = record["kind"]
        if kind not in (CACHE_ADMIT, CACHE_EVICT, CACHE_DISCARD):
            continue
        now = record["t"]
        last_time = max(last_time, now)
        if kind == CACHE_ADMIT:
            admits += 1
            if record.get("victim") == record["page"]:
                rejections += 1
            else:
                entered[record["page"]] = now
        elif kind == CACHE_EVICT:
            evictions += 1
            leave(record["page"], now)
        else:
            discards += 1
            leave(record["page"], now)
    if not (admits or evictions or discards):
        return None
    # Pages still resident at the end of the trace count up to its close.
    for page in list(entered):
        leave(page, last_time)
    longest = sorted(
        resident_for.items(), key=lambda item: (-item[1], item[0])
    )[:top]
    return {
        "admissions": admits,
        "evictions": evictions,
        "rejections": rejections,
        "discards": discards,
        "longest_resident": [
            {"page": page, "resident_time": span} for page, span in longest
        ],
    }


def summarise(records: List[dict], top: int = 5) -> Dict:
    """The full summary document for one trace."""
    summary: Dict = {"overview": overview(records)}
    for name, section in (
        ("broadcast", interarrival_summary(records, top)),
        ("responses", response_summary(records)),
        ("cache", cache_summary(records, top)),
    ):
        if section is not None:
            summary[name] = section
    return summary


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _print_summary(summary: Dict) -> None:
    info = summary["overview"]
    lo, hi = info["time_span"]
    print(f"records      : {info['records']}")
    print(f"time span    : [{lo:.1f}, {hi:.1f}] bu")
    for kind in sorted(info["kinds"]):
        print(f"  {kind:<16} {info['kinds'][kind]}")

    broadcast = summary.get("broadcast")
    if broadcast:
        verdict = "yes" if broadcast["fixed_interarrival"] else "NO"
        print("\nbroadcast inter-arrival (§2.1 fixed-gap check)")
        print(f"  pages observed   : {broadcast['pages_observed']}")
        print(f"  max gap variance : {broadcast['max_gap_variance']:.3g}")
        print(f"  fixed gaps       : {verdict}")
        for row in broadcast["pages"]:
            print(
                f"    page {row['page']:<6} arrivals={row['arrivals']:<5} "
                f"mean gap={row['mean_gap']:.2f} "
                f"variance={row['gap_variance']:.3g}"
            )

    responses = summary.get("responses")
    if responses:
        waits = responses["waits"]
        print("\nresponse breakdown")
        print(f"  hits / misses : {responses['hits']} / {responses['misses']}"
              f"  (hit rate {responses['hit_rate']:.1%})")
        print(f"  waits         : n={waits['count']} mean={waits['mean']:.2f}"
              f" stddev={waits['stddev']:.2f} max={waits['max']:.2f}")
        for bucket in responses.get("wait_histogram", []):
            hi_edge = bucket["hi"]
            label = (
                f"[{bucket['lo']:.1f}, {hi_edge:.1f})"
                if hi_edge is not None
                else f">= {bucket['lo']:.1f}"
            )
            print(f"    {label:<20} {bucket['count']}")

    cache = summary.get("cache")
    if cache:
        print("\ncache activity")
        print(f"  admissions : {cache['admissions']} "
              f"(rejections {cache['rejections']})")
        print(f"  evictions  : {cache['evictions']}  "
              f"discards : {cache['discards']}")
        if cache["longest_resident"]:
            print("  longest residency:")
            for row in cache["longest_resident"]:
                print(f"    page {row['page']:<6} "
                      f"{row['resident_time']:.1f} bu")


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Summarise JSONL traces from the repro.obs trace bus.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summary_cmd = commands.add_parser(
        "summary", help="summarise one JSONL trace"
    )
    summary_cmd.add_argument("trace", help="path to a JSONL trace file")
    summary_cmd.add_argument(
        "--top", type=int, default=5,
        help="rows per ranked table (default 5)",
    )
    summary_cmd.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON instead of text",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors; keep that contract.
        return int(exc.code or 0)
    try:
        records = list(read_jsonl(args.trace))
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return EXIT_USAGE
    except json.JSONDecodeError as error:
        print(f"malformed trace line: {error}", file=sys.stderr)
        return EXIT_USAGE
    summary = summarise(records, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        _print_summary(summary)
    return EXIT_OK
