"""``python -m repro.obs`` — the observatory's command-line surface.

Three subcommands:

* ``summary`` reads a trace produced by a
  :class:`repro.obs.trace.JsonlSink` and reports, per section and only
  for the record kinds present: an **overview** (record counts by kind,
  simulated time span), the **broadcast** per-page inter-arrival check
  (on a correct multi-disk program every page's gap variance is exactly
  zero — the §2.1 fixed-inter-arrival property, the Bus Stop Paradox
  check), a **responses** hit/miss/wait breakdown with a wait-time
  histogram, and **cache** admission/eviction/residency totals.  Given
  a run or sweep *manifest* (a JSON document, not JSONL) instead, it
  pretty-prints the manifest's headline, profile, monitor, and
  build-cache blocks.
* ``analyze`` runs the deeper :mod:`repro.obs.analyze` attribution over
  a trace: response time by disk, broadcast slot utilization, cache
  residency, and per-client latency with Jain fairness.
* ``regress`` is the benchmark regression gate
  (:mod:`repro.obs.regress`): compare fresh ``BENCH_*.json`` documents
  against the recorded ``results/bench_history.jsonl`` baseline and
  exit 1 on a regression (the CI wiring).

Exit codes follow the repro CLI convention: 0 on success, 1 on a failed
gate, 2 on usage errors (unknown command, unreadable input).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.obs.analyze import analyze, render_analysis
from repro.obs.regress import (
    DEFAULT_HISTORY,
    DEFAULT_REL_FLOOR,
    DEFAULT_SIGMA,
    render_markdown,
    render_text,
    run_gate,
)
from repro.obs.trace import (
    CACHE_ADMIT,
    CACHE_DISCARD,
    CACHE_EVICT,
    CHANNEL_DELIVER,
    CLIENT_HIT,
    CLIENT_MISS,
    CLIENT_WAIT,
    read_jsonl,
)
from repro.sim.stats import Histogram, RunningStats

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2

#: Gap variance below this counts as "fixed" (§2.1); trace timestamps
#: are sums of unit slots, so true fixed gaps come out exactly equal.
FIXED_GAP_TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# analyses
# ---------------------------------------------------------------------------

def overview(records: List[dict]) -> Dict:
    """Record totals by kind plus the simulated time span."""
    by_kind: Dict[str, int] = {}
    for record in records:
        by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
    times = [record["t"] for record in records]
    return {
        "records": len(records),
        "kinds": by_kind,
        "time_span": [min(times), max(times)] if times else [0.0, 0.0],
    }


def interarrival_summary(records: List[dict], top: int = 5) -> Optional[Dict]:
    """Per-page inter-arrival stats from ``channel.deliver`` records."""
    arrivals: Dict[int, List[float]] = {}
    for record in records:
        if record["kind"] == CHANNEL_DELIVER:
            arrivals.setdefault(record["page"], []).append(record["t"])
    gaps: Dict[int, RunningStats] = {}
    for page, times in arrivals.items():
        if len(times) < 2:
            continue
        stats = RunningStats()
        stats.extend(b - a for a, b in zip(times, times[1:]))
        gaps[page] = stats
    if not arrivals:
        return None
    max_variance = max(
        (stats.variance for stats in gaps.values()), default=0.0
    )
    worst = sorted(
        gaps.items(), key=lambda item: (-item[1].variance, item[0])
    )[:top]
    return {
        "pages_observed": len(arrivals),
        "pages_with_gaps": len(gaps),
        "max_gap_variance": max_variance,
        "fixed_interarrival": max_variance <= FIXED_GAP_TOLERANCE,
        "pages": [
            {
                "page": page,
                "arrivals": stats.count + 1,
                "mean_gap": stats.mean,
                "gap_variance": stats.variance,
            }
            for page, stats in worst
        ],
    }


def response_summary(records: List[dict], bins: int = 8) -> Optional[Dict]:
    """Hit/miss/wait breakdown from the ``client.*`` records."""
    hits = sum(1 for r in records if r["kind"] == CLIENT_HIT)
    misses = sum(1 for r in records if r["kind"] == CLIENT_MISS)
    waits = [r["wait"] for r in records if r["kind"] == CLIENT_WAIT]
    if not (hits or misses or waits):
        return None
    stats = RunningStats()
    stats.extend(waits)
    summary: Dict = {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        "waits": {
            "count": stats.count,
            "mean": stats.mean,
            "stddev": stats.stddev,
            "max": stats.maximum if stats.count else 0.0,
        },
    }
    if waits and max(waits) > 0:
        histogram = Histogram(0.0, max(waits), bins)
        for wait in waits:
            histogram.add(wait)
        summary["wait_histogram"] = [
            {"lo": lo, "hi": hi, "count": count}
            for lo, hi, count in histogram.nonempty()
        ] + (
            [{"lo": histogram.high, "hi": None, "count": histogram.overflow}]
            if histogram.overflow
            else []
        )
    return summary


def cache_summary(records: List[dict], top: int = 5) -> Optional[Dict]:
    """Admission/eviction totals and residency timeline from ``cache.*``."""
    admits = evictions = rejections = discards = 0
    entered: Dict[int, float] = {}
    resident_for: Dict[int, float] = {}
    last_time = 0.0

    def leave(page: int, now: float) -> None:
        start = entered.pop(page, None)
        if start is not None:
            resident_for[page] = resident_for.get(page, 0.0) + (now - start)

    for record in records:
        kind = record["kind"]
        if kind not in (CACHE_ADMIT, CACHE_EVICT, CACHE_DISCARD):
            continue
        now = record["t"]
        last_time = max(last_time, now)
        if kind == CACHE_ADMIT:
            admits += 1
            if record.get("victim") == record["page"]:
                rejections += 1
            else:
                entered[record["page"]] = now
        elif kind == CACHE_EVICT:
            evictions += 1
            leave(record["page"], now)
        else:
            discards += 1
            leave(record["page"], now)
    if not (admits or evictions or discards):
        return None
    # Pages still resident at the end of the trace count up to its close.
    for page in list(entered):
        leave(page, last_time)
    longest = sorted(
        resident_for.items(), key=lambda item: (-item[1], item[0])
    )[:top]
    return {
        "admissions": admits,
        "evictions": evictions,
        "rejections": rejections,
        "discards": discards,
        "longest_resident": [
            {"page": page, "resident_time": span} for page, span in longest
        ],
    }


def summarise(records: List[dict], top: int = 5) -> Dict:
    """The full summary document for one trace."""
    summary: Dict = {"overview": overview(records)}
    for name, section in (
        ("broadcast", interarrival_summary(records, top)),
        ("responses", response_summary(records)),
        ("cache", cache_summary(records, top)),
    ):
        if section is not None:
            summary[name] = section
    return summary


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _print_summary(summary: Dict) -> None:
    info = summary["overview"]
    lo, hi = info["time_span"]
    print(f"records      : {info['records']}")
    print(f"time span    : [{lo:.1f}, {hi:.1f}] bu")
    for kind in sorted(info["kinds"]):
        print(f"  {kind:<16} {info['kinds'][kind]}")

    broadcast = summary.get("broadcast")
    if broadcast:
        verdict = "yes" if broadcast["fixed_interarrival"] else "NO"
        print("\nbroadcast inter-arrival (§2.1 fixed-gap check)")
        print(f"  pages observed   : {broadcast['pages_observed']}")
        print(f"  max gap variance : {broadcast['max_gap_variance']:.3g}")
        print(f"  fixed gaps       : {verdict}")
        for row in broadcast["pages"]:
            print(
                f"    page {row['page']:<6} arrivals={row['arrivals']:<5} "
                f"mean gap={row['mean_gap']:.2f} "
                f"variance={row['gap_variance']:.3g}"
            )

    responses = summary.get("responses")
    if responses:
        waits = responses["waits"]
        print("\nresponse breakdown")
        print(f"  hits / misses : {responses['hits']} / {responses['misses']}"
              f"  (hit rate {responses['hit_rate']:.1%})")
        print(f"  waits         : n={waits['count']} mean={waits['mean']:.2f}"
              f" stddev={waits['stddev']:.2f} max={waits['max']:.2f}")
        for bucket in responses.get("wait_histogram", []):
            hi_edge = bucket["hi"]
            label = (
                f"[{bucket['lo']:.1f}, {hi_edge:.1f})"
                if hi_edge is not None
                else f">= {bucket['lo']:.1f}"
            )
            print(f"    {label:<20} {bucket['count']}")

    cache = summary.get("cache")
    if cache:
        print("\ncache activity")
        print(f"  admissions : {cache['admissions']} "
              f"(rejections {cache['rejections']})")
        print(f"  evictions  : {cache['evictions']}  "
              f"discards : {cache['discards']}")
        if cache["longest_resident"]:
            print("  longest residency:")
            for row in cache["longest_resident"]:
                print(f"    page {row['page']:<6} "
                      f"{row['resident_time']:.1f} bu")


# ---------------------------------------------------------------------------
# manifest summaries
# ---------------------------------------------------------------------------

def _load_manifest(path: str) -> Optional[Dict]:
    """The file's manifest document, or None if it is a JSONL trace.

    Run and sweep manifests are single indented JSON objects carrying a
    ``schema`` tag; traces are one record per line.  A whole-file parse
    that yields a schema-tagged dict is therefore unambiguous.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        # Unreadable paths fall through to the trace loader, which
        # reports them; non-JSON content is simply not a manifest.
        return None
    if isinstance(document, dict) and "schema" in document:
        return document
    return None


def _print_profile_block(profile: Dict) -> None:
    phases = profile.get("phase_seconds", {})
    if phases:
        print("  phases:")
        for name in sorted(phases):
            print(f"    {name:<12} {phases[name]:.3f}s")
    tiers = profile.get("tiers", {})
    if any(tiers.values()):
        total = sum(tiers.values())
        print("  timing tiers:")
        for name in sorted(tiers):
            share = tiers[name] / total if total else 0.0
            print(f"    {name:<12} {tiers[name]:<10} ({share:.1%})")
    counters = profile.get("counters", {})
    if counters:
        print("  counters:")
        for name in sorted(counters):
            print(f"    {name:<28} {counters[name]}")
    for name in sorted(profile.get("peaks", {})):
        print(f"  peak {name}: {profile['peaks'][name]}")


def _print_monitors_block(monitors: Dict) -> None:
    verdict = "VIOLATED" if monitors.get("violations") else "OK"
    print(f"  runs checked : {monitors.get('runs', 0)}  "
          f"mode={monitors.get('mode', 'record')}  verdict={verdict}")
    for violation in monitors.get("violations", []):
        run = violation.get("run", "")
        where = f" [{run}]" if run else ""
        print(f"    t={violation.get('time', 0.0):.1f} "
              f"{violation.get('monitor')}/{violation.get('invariant')}"
              f"{where}: {violation.get('message')}")


def _print_manifest(document: Dict) -> None:
    """Human-readable headline view of a run or sweep manifest."""
    print(f"schema       : {document['schema']}")
    if "label" in document:
        print(f"label        : {document['label']}")
    if "name" in document:
        print(f"name         : {document['name']}")
    summary = document.get("summary")
    if summary is not None:  # sweep manifest
        print(f"runs         : {summary['runs']}")
        print(f"wall time    : {summary['total_wall_seconds']:.3f}s")
        print(f"measured     : {summary['total_measured_requests']} requests")
        print(f"mean response: [{summary['mean_response_time_min']:.2f}, "
              f"{summary['mean_response_time_max']:.2f}] bu")
    if "mean_response_time" in document:  # run manifest
        print(f"mean response: {document['mean_response_time']:.3f} bu")
        print(f"hit rate     : {document['hit_rate']:.1%}")
        print(f"measured     : {document['measured_requests']} requests "
              f"(+{document['warmup_requests']} warm-up)")
        print(f"config hash  : {document['config_hash'][:16]}…")
    build_cache = document.get("build_cache")
    if build_cache is not None:
        print("\nbuild cache")
        print(f"  schedules built : {build_cache.get('schedules', 0)}  "
              f"wait tables : {build_cache.get('wait_tables', 0)} "
              f"({build_cache.get('wait_table_bytes', 0)} bytes)")
        queries = build_cache.get("queries", {})
        if any(queries.values()):
            print("  timing-tier queries:")
            for tier in sorted(queries):
                print(f"    {tier:<12} {queries[tier]}")
    profile = document.get("profile")
    if profile is not None:
        print("\nprofile")
        _print_profile_block(profile)
    monitors = document.get("monitors")
    if monitors is not None:
        print("\nmonitors")
        _print_monitors_block(monitors)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect traces, manifests, and benchmark history "
                    "from the repro.obs observatory.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summary_cmd = commands.add_parser(
        "summary", help="summarise one JSONL trace or JSON manifest"
    )
    summary_cmd.add_argument(
        "trace", help="path to a JSONL trace or a run/sweep manifest"
    )
    summary_cmd.add_argument(
        "--top", type=int, default=5,
        help="rows per ranked table (default 5)",
    )
    summary_cmd.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON instead of text",
    )

    analyze_cmd = commands.add_parser(
        "analyze",
        help="attribute response times, bandwidth, residency, fairness",
    )
    analyze_cmd.add_argument("trace", help="path to a JSONL trace file")
    analyze_cmd.add_argument(
        "--disk-sizes", default=None, metavar="N,N,...",
        help="comma-separated disk sizes for per-disk attribution "
             "(e.g. 300,300,400)",
    )
    analyze_cmd.add_argument(
        "--top", type=int, default=5,
        help="rows per ranked table (default 5)",
    )
    analyze_cmd.add_argument(
        "--json", action="store_true",
        help="emit the analysis as JSON instead of text",
    )

    regress_cmd = commands.add_parser(
        "regress",
        help="gate fresh BENCH_*.json documents against recorded history",
    )
    regress_cmd.add_argument(
        "benchmarks", nargs="+", metavar="BENCH.json",
        help="fresh benchmark documents to compare",
    )
    regress_cmd.add_argument(
        "--history", default=DEFAULT_HISTORY,
        help=f"benchmark history JSONL (default {DEFAULT_HISTORY})",
    )
    regress_cmd.add_argument(
        "--record", action="store_true",
        help="append entries that pass the gate to the history",
    )
    regress_cmd.add_argument(
        "--sigma", type=float, default=DEFAULT_SIGMA,
        help=f"noise threshold in baseline stddevs (default {DEFAULT_SIGMA})",
    )
    regress_cmd.add_argument(
        "--rel-floor", type=float, default=DEFAULT_REL_FLOOR,
        help="minimum relative change to flag, as a fraction of the "
             f"baseline mean (default {DEFAULT_REL_FLOOR})",
    )
    regress_cmd.add_argument(
        "--format", choices=("text", "md", "json"), default="text",
        help="report format (default text)",
    )
    return parser


def _load_records(path: str) -> Optional[List[dict]]:
    """Trace records from ``path``, or None after printing an error."""
    try:
        return list(read_jsonl(path))
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
    except json.JSONDecodeError as error:
        print(f"malformed trace line: {error}", file=sys.stderr)
    return None


def _command_summary(args) -> int:
    manifest = _load_manifest(args.trace)
    if manifest is not None:
        if args.json:
            print(json.dumps(manifest, indent=2, sort_keys=True))
        else:
            _print_manifest(manifest)
        return EXIT_OK
    records = _load_records(args.trace)
    if records is None:
        return EXIT_USAGE
    summary = summarise(records, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        _print_summary(summary)
    return EXIT_OK


def _parse_disk_sizes(text: Optional[str]) -> Optional[List[int]]:
    if text is None:
        return None
    try:
        sizes = [int(part) for part in text.replace(",", " ").split()]
    except ValueError:
        raise ValueError(f"invalid --disk-sizes value: {text!r}")
    if not sizes or any(size <= 0 for size in sizes):
        raise ValueError(f"invalid --disk-sizes value: {text!r}")
    return sizes


def _command_analyze(args) -> int:
    try:
        disk_sizes = _parse_disk_sizes(args.disk_sizes)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    records = _load_records(args.trace)
    if records is None:
        return EXIT_USAGE
    document = analyze(records, disk_sizes=disk_sizes, top=args.top)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_analysis(document))
    return EXIT_OK


def _command_regress(args) -> int:
    try:
        report, _ = run_gate(
            args.benchmarks, history_path=args.history, record=args.record,
            sigma=args.sigma, rel_floor=args.rel_floor,
        )
    except OSError as error:
        print(f"cannot read benchmark document: {error}", file=sys.stderr)
        return EXIT_USAGE
    except (json.JSONDecodeError, ReproError) as error:
        print(f"invalid benchmark document: {error}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    elif args.format == "md":
        print(render_markdown(report))
    else:
        print(render_text(report))
    return EXIT_FAILURE if report["status"] == "regression" else EXIT_OK


_COMMANDS = {
    "summary": _command_summary,
    "analyze": _command_analyze,
    "regress": _command_regress,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors; keep that contract.
        return int(exc.code or 0)
    return _COMMANDS[args.command](args)
