"""The structured trace bus: typed records, pluggable sinks, guarded hooks.

Every record is keyed on *simulation* time and carries a dotted ``kind``
naming the hook that emitted it.  The stack's hook points are:

==================  =========================================================
kind                emitted by / fields
==================  =========================================================
``sim.event``       :meth:`repro.sim.kernel.Simulator.step` — one record per
                    dispatched event (``seq``, ``priority``)
``channel.deliver``  :meth:`repro.server.channel.BroadcastChannel.deliver_at`
                    — one record per transmitted page (``page`` is physical)
``client.request``  a client drew the next request (``page`` logical,
                    ``phase`` is ``"warmup"`` or ``"measured"``)
``client.hit``      the request was served from cache (``page``)
``client.miss``     cache miss; the client starts waiting (``page``,
                    ``physical``)
``client.wait``     the awaited page arrived (``page``, ``physical``,
                    ``wait`` in broadcast units); record time is the arrival
``cache.lookup``    :class:`repro.cache.base.TracedCache` probe (``page``,
                    ``hit``)
``cache.admit``     a fetched page was offered (``page``, ``victim`` —
                    ``None``, the evicted page, or ``page`` itself when the
                    policy declined to cache it)
``cache.evict``     a resident page was displaced (``page`` is the victim,
                    ``admitted`` the incoming page)
``cache.discard``   an invalidation dropped a page (``page``, ``resident``)
==================  =========================================================

Hook sites guard with ``tracer is not None and tracer.enabled`` so a run
without a tracer pays only a predictable attribute test — disabled
tracing is a no-op by construction (benchmarked by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import warnings
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

# Record-kind constants, mirrored by the table above.
SIM_EVENT = "sim.event"
CHANNEL_DELIVER = "channel.deliver"
CLIENT_REQUEST = "client.request"
CLIENT_HIT = "client.hit"
CLIENT_MISS = "client.miss"
CLIENT_WAIT = "client.wait"
CACHE_LOOKUP = "cache.lookup"
CACHE_ADMIT = "cache.admit"
CACHE_EVICT = "cache.evict"
CACHE_DISCARD = "cache.discard"


class TraceRecord:
    """One observation: a kind, a simulation timestamp, and fields."""

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: Dict[str, Any]):
        self.time = time
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: ``{"t": ..., "kind": ..., **fields}``."""
        return {"t": self.time, "kind": self.kind, **self.fields}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecord {self.kind} t={self.time:.3f} {self.fields}>"


class MemorySink:
    """In-memory ring buffer of the most recent ``capacity`` records.

    ``capacity=None`` retains everything (tests, short runs).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)

    def write(self, record: TraceRecord) -> None:
        """Retain one record (evicting the oldest when full)."""
        self._records.append(record)

    def close(self) -> None:
        """Ring buffers need no teardown."""

    @property
    def records(self) -> List[TraceRecord]:
        """A copy of the retained records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class JsonlSink:
    """Append records to a JSONL file, one compact object per line."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w")

    def write(self, record: TraceRecord) -> None:
        """Serialise one record as a JSON line."""
        self._handle.write(json.dumps(record.to_dict(), sort_keys=True))
        self._handle.write("\n")

    def flush(self) -> None:
        """Push buffered lines to disk."""
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class Tracer:
    """Fan records out to sinks; the object every hook point guards on.

    Hooks must test ``tracer is not None and tracer.enabled`` before
    calling :meth:`emit`, so a disabled tracer (or none at all) costs a
    branch and nothing else.

    A sink whose ``write`` or ``close`` raises is **quarantined**: it is
    detached with a single :class:`RuntimeWarning` and the run carries
    on with the remaining sinks — a full disk must not abort a
    half-hour simulation that was otherwise healthy.  The
    :attr:`quarantined` counter records how many sinks were dropped.
    """

    __slots__ = ("_sinks", "enabled", "emitted", "quarantined")

    def __init__(self, *sinks, enabled: bool = True):
        self._sinks: List[Any] = list(sinks)
        self.enabled = enabled
        #: Records emitted over the tracer's lifetime (enabled periods).
        self.emitted = 0
        #: Sinks detached after raising from ``write`` or ``close``.
        self.quarantined = 0

    def add_sink(self, sink) -> None:
        """Attach another sink; it sees records from now on."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach ``sink`` (by identity); absent sinks are ignored."""
        self._sinks = [s for s in self._sinks if s is not sink]

    def _quarantine(self, sink, operation: str, error: BaseException) -> None:
        self._sinks = [s for s in self._sinks if s is not sink]
        self.quarantined += 1
        warnings.warn(
            f"trace sink {type(sink).__name__} raised "
            f"{type(error).__name__} during {operation} and was "
            f"quarantined: {error}",
            RuntimeWarning,
            stacklevel=3,
        )

    def emit(self, kind: str, time: float, **fields) -> None:
        """Record one observation at simulation ``time``."""
        if not self.enabled:
            return
        record = TraceRecord(time, kind, fields)
        self.emitted += 1
        broken = None
        for sink in self._sinks:
            try:
                sink.write(record)
            except Exception as error:  # repro: noqa[RL005]
                if broken is None:
                    broken = []
                broken.append((sink, error))
        if broken is not None:
            for sink, error in broken:
                self._quarantine(sink, "write", error)

    def close(self) -> None:
        """Close every sink (flushes JSONL files); failures quarantine."""
        for sink in list(self._sinks):
            try:
                sink.close()
            except Exception as error:  # repro: noqa[RL005]
                self._quarantine(sink, "close", error)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def trace_schedule(schedule, tracer: Tracer, *, periods: int = 1,
                   start: float = 0.0) -> int:
    """Emit one ``channel.deliver`` record per transmitted slot.

    Walks ``periods`` full cycles of a periodic broadcast program from
    ``start`` (a slot boundary), emitting each non-padding slot's
    completion instant — the ground-truth feed for the CLI's per-page
    inter-arrival check (§2.1: every page's gaps are fixed) without
    needing a client to demand every page.  Returns the record count.
    """
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    emitted = 0
    for slot in range(periods * schedule.period):
        begin = start + slot
        page = schedule.page_at(begin + 0.5)
        if page is None:
            continue  # padding slot: nothing transmitted
        tracer.emit(CHANNEL_DELIVER, begin + 1.0, page=int(page))
        emitted += 1
    return emitted


def read_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the record dicts of a JSONL trace file, in order."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
