"""Post-hoc trace analytics: from a JSONL trace to attribution tables.

Where ``python -m repro.obs summary`` answers "is this trace healthy?",
``analyze`` answers "*where* does the response time go?":

* :func:`response_by_disk` — per-disk response-time breakdown from the
  ``client.wait`` records (physical page ids mapped onto disks via the
  cumulative disk sizes), reproducing the paper's access-location view
  from a trace alone;
* :func:`slot_utilization` — broadcast accounting from the
  ``channel.deliver`` records: delivered slots versus elapsed slots,
  and the pages dominating the observed bandwidth;
* :func:`residency_timeline` — cache occupancy over time (time-weighted
  mean and peak) plus the longest-resident pages, from the ``cache.*``
  records;
* :func:`client_latency` — per-client latency attribution with Jain's
  fairness index over per-client mean waits, reusing the mergeable
  :class:`~repro.population.aggregate.FairnessAccumulator` the
  population rollups use.

All functions take the plain record dicts of
:func:`repro.obs.trace.read_jsonl` and return JSON-ready sections;
:func:`analyze` bundles the applicable ones into one schema-tagged
document (the ``python -m repro.obs analyze`` payload).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.stats import RunningStats, TimeWeightedStat

#: Schema tag of the analyze document.
ANALYZE_SCHEMA = "repro.obs.analyze/1"


def _disk_of(physical: int, boundaries: Sequence[int]) -> int:
    """Disk index of a physical page id under cumulative boundaries."""
    for disk, boundary in enumerate(boundaries):
        if physical < boundary:
            return disk
    return len(boundaries)  # beyond the declared layout


def _stats_block(stats: RunningStats) -> Dict:
    return {
        "count": stats.count,
        "mean": stats.mean,
        "stddev": stats.stddev,
        "max": stats.maximum if stats.count else 0.0,
    }


def response_by_disk(
    records: List[dict],
    disk_sizes: Optional[Sequence[int]] = None,
) -> Optional[Dict]:
    """Per-disk wait statistics from the ``client.wait`` records.

    ``disk_sizes`` are the layout's page counts per disk; physical page
    ids below ``sum(disk_sizes[:k+1])`` belong to disk ``k`` (the same
    cumulative convention as :class:`~repro.core.disks.DiskLayout`).
    Without sizes every wait lands in one ``all`` bucket.
    """
    waits = [r for r in records if r["kind"] == "client.wait"]
    if not waits:
        return None
    boundaries: List[int] = []
    if disk_sizes:
        running = 0
        for size in disk_sizes:
            running += int(size)
            boundaries.append(running)
    per_disk: Dict[str, RunningStats] = {}
    for record in waits:
        if boundaries:
            disk = _disk_of(int(record["physical"]), boundaries)
            label = (
                f"disk{disk + 1}" if disk < len(boundaries) else "beyond"
            )
        else:
            label = "all"
        stats = per_disk.get(label)
        if stats is None:
            stats = per_disk[label] = RunningStats()
        stats.add(float(record["wait"]))
    total = sum(stats.count for stats in per_disk.values())
    return {
        "waits": total,
        "disks": {
            label: {
                **_stats_block(stats),
                "share": stats.count / total,
            }
            for label, stats in sorted(per_disk.items())
        },
    }


def slot_utilization(records: List[dict], top: int = 5) -> Optional[Dict]:
    """Broadcast slot accounting from the ``channel.deliver`` records.

    Each delivery occupies one broadcast unit, so over the observed span
    ``utilization = delivered / span`` — 1.0 when every slot carried an
    observed page (``observe_every_slot`` traces of an unpadded
    program), lower when slots were padding or simply not demanded.
    """
    deliveries = [r for r in records if r["kind"] == "channel.deliver"]
    if not deliveries:
        return None
    times = [r["t"] for r in deliveries]
    span = max(times) - min(times) + 1.0  # slots, inclusive of the first
    per_page: Dict[int, int] = {}
    for record in deliveries:
        page = int(record["page"])
        per_page[page] = per_page.get(page, 0) + 1
    ranked = sorted(per_page.items(), key=lambda item: (-item[1], item[0]))
    return {
        "delivered_slots": len(deliveries),
        "observed_span": span,
        "utilization": len(deliveries) / span if span > 0 else 0.0,
        "distinct_pages": len(per_page),
        "top_pages": [
            {
                "page": page,
                "deliveries": count,
                "bandwidth_share": count / len(deliveries),
            }
            for page, count in ranked[:top]
        ],
    }


def residency_timeline(records: List[dict], top: int = 5) -> Optional[Dict]:
    """Cache occupancy over time from the ``cache.*`` records."""
    relevant = [
        r for r in records
        if r["kind"] in ("cache.admit", "cache.evict", "cache.discard")
    ]
    if not relevant:
        return None
    start = relevant[0]["t"]
    occupancy = TimeWeightedStat(start_time=start)
    resident: Dict[int, float] = {}
    resident_for: Dict[int, float] = {}
    last_time = start

    def leave(page: int, now: float) -> None:
        entered = resident.pop(page, None)
        if entered is not None:
            resident_for[page] = (
                resident_for.get(page, 0.0) + (now - entered)
            )

    for record in relevant:
        kind = record["kind"]
        now = record["t"]
        last_time = max(last_time, now)
        if kind == "cache.admit":
            victim = record.get("victim")
            if victim == record["page"]:
                continue  # rejected, never resident
            if victim is not None:
                # The victim leaves as part of the admission; the paired
                # ``cache.evict`` record then finds it already gone.
                leave(int(victim), now)
            resident[int(record["page"])] = now
        else:
            leave(int(record["page"]), now)
        occupancy.record(now, float(len(resident)))
    for page in list(resident):
        leave(page, last_time)
    longest = sorted(
        resident_for.items(), key=lambda item: (-item[1], item[0])
    )[:top]
    return {
        "events": len(relevant),
        "occupancy_mean": occupancy.mean(last_time),
        "occupancy_max": occupancy.maximum,
        "longest_resident": [
            {"page": page, "resident_time": span}
            for page, span in longest
        ],
    }


def client_latency(records: List[dict], top: int = 5) -> Optional[Dict]:
    """Per-client latency attribution plus Jain fairness.

    Records from the fast engine carry no ``client`` field (it runs one
    implicit client); process-engine clients are named.  Fairness is
    Jain's index over per-client mean waits — 1.0 when every client
    waits the same on average.
    """
    # Imported here, not at module top: repro.population imports the
    # execution layer, which imports repro.obs — a cycle at load time.
    from repro.population.aggregate import FairnessAccumulator

    counts: Dict[str, Dict[str, int]] = {}
    waits: Dict[str, RunningStats] = {}
    for record in records:
        kind = record["kind"]
        if not kind.startswith("client."):
            continue
        client = str(record.get("client", "client"))
        tally = counts.get(client)
        if tally is None:
            tally = counts[client] = {"request": 0, "hit": 0, "miss": 0,
                                      "wait": 0}
        tally[kind.split(".", 1)[1]] += 1
        if kind == "client.wait":
            stats = waits.get(client)
            if stats is None:
                stats = waits[client] = RunningStats()
            stats.add(float(record["wait"]))
    if not counts:
        return None
    fairness = FairnessAccumulator()
    rows = []
    for client in sorted(counts):
        tally = counts[client]
        stats = waits.get(client, RunningStats())
        fairness.add(stats.mean)
        lookups = tally["hit"] + tally["miss"]
        rows.append({
            "client": client,
            "requests": tally["request"],
            "hits": tally["hit"],
            "misses": tally["miss"],
            "hit_rate": tally["hit"] / lookups if lookups else 0.0,
            "wait": _stats_block(stats),
            "total_wait": stats.mean * stats.count,
        })
    rows.sort(key=lambda row: (-row["total_wait"], row["client"]))
    return {
        "clients": len(rows),
        "fairness": fairness.jain,
        "slowest": rows[:top],
    }


def analyze(
    records: List[dict],
    *,
    disk_sizes: Optional[Sequence[int]] = None,
    top: int = 5,
) -> Dict:
    """The full analytics document for one trace."""
    document: Dict = {"schema": ANALYZE_SCHEMA}
    for name, section in (
        ("response_by_disk", response_by_disk(records, disk_sizes)),
        ("slot_utilization", slot_utilization(records, top)),
        ("cache_residency", residency_timeline(records, top)),
        ("client_latency", client_latency(records, top)),
    ):
        if section is not None:
            document[name] = section
    return document


def render_analysis(document: Dict) -> str:
    """Human-readable rendering of an :func:`analyze` document."""
    lines: List[str] = []
    by_disk = document.get("response_by_disk")
    if by_disk:
        lines.append("response time by disk")
        for label, block in by_disk["disks"].items():
            lines.append(
                f"  {label:<8} waits={block['count']:<6} "
                f"share={block['share']:.1%}  "
                f"mean={block['mean']:.2f} bu  max={block['max']:.1f}"
            )
    utilization = document.get("slot_utilization")
    if utilization:
        lines.append("broadcast slot utilization")
        lines.append(
            f"  delivered {utilization['delivered_slots']} slots over "
            f"{utilization['observed_span']:.0f} bu "
            f"({utilization['utilization']:.1%} of observed span, "
            f"{utilization['distinct_pages']} distinct pages)"
        )
        for row in utilization["top_pages"]:
            lines.append(
                f"    page {row['page']:<6} {row['deliveries']:>5} "
                f"deliveries  ({row['bandwidth_share']:.1%} of bandwidth)"
            )
    residency = document.get("cache_residency")
    if residency:
        lines.append("cache residency")
        lines.append(
            f"  occupancy mean={residency['occupancy_mean']:.1f} "
            f"max={residency['occupancy_max']:.0f} "
            f"({residency['events']} cache events)"
        )
        for row in residency["longest_resident"]:
            lines.append(
                f"    page {row['page']:<6} resident "
                f"{row['resident_time']:.1f} bu"
            )
    latency = document.get("client_latency")
    if latency:
        lines.append("client latency attribution")
        lines.append(
            f"  {latency['clients']} client(s), Jain fairness "
            f"{latency['fairness']:.3f}"
        )
        for row in latency["slowest"]:
            lines.append(
                f"    {row['client']:<14} requests={row['requests']:<6} "
                f"hit rate={row['hit_rate']:.1%}  "
                f"mean wait={row['wait']['mean']:.2f} bu  "
                f"total={row['total_wait']:.0f} bu"
            )
    if not lines:
        lines.append("trace carries no analyzable records")
    return "\n".join(lines)
