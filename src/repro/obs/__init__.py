"""repro.obs — deterministic observability for the simulation stack.

The observatory is six cooperating pieces, all zero-overhead when
disabled:

* :mod:`repro.obs.trace` — a structured trace bus.  Components hold an
  optional tracer and emit typed, simulation-time-keyed records to
  pluggable sinks (ring buffer, JSONL file).  Hook points live in the
  kernel (event dispatch), the broadcast channel (page completions),
  the clients (request / hit / miss / wait), and a cache wrapper
  (lookup / admit / evict).  Failing sinks are quarantined — detached
  after their first error with a single warning — so observation can
  never abort a simulation.
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  time-weighted stats, snapshotted per run.
* :mod:`repro.obs.manifest` — machine-readable run manifests (config
  hash, seeds, schedule period, metric snapshot) for single runs and
  sweeps.
* :mod:`repro.obs.monitor` — declarative invariant monitors driven by
  the trace bus: fixed inter-arrival periodicity (§2.1), cache
  occupancy bounds, clock monotonicity, hit/miss conservation, and
  schedule-period consistency, in ``record`` or ``strict`` mode.
* :mod:`repro.obs.profile` — a pay-for-use profiler: per-phase wall
  times, engine loop/event counters, and the broadcast-timing tier
  dispatch counts (closed-form / wait-table / bisect).
* :mod:`repro.obs.analyze` and :mod:`repro.obs.regress` — post-hoc
  trace analytics (per-disk response attribution, slot utilization,
  residency, Jain fairness) and the benchmark regression gate over
  ``results/bench_history.jsonl``.

All timestamps inside records are *simulation* time.  The only wall
clock in the subsystem is :mod:`repro.obs.clock`, the one allowlisted
RL001 gateway, used solely for wall-time bookkeeping in manifests and
profiles.

``python -m repro.obs`` exposes the post-hoc tooling: ``summary``
(trace health and manifest pretty-printing), ``analyze`` (attribution
tables), and ``regress`` (the CI benchmark gate).
"""

from repro.obs.analyze import analyze, render_analysis
from repro.obs.clock import perf_counter
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedGauge
from repro.obs.manifest import (
    build_manifest,
    build_sweep_manifest,
    config_hash,
    write_manifest,
    write_sweep_manifest,
)
from repro.obs.monitor import MonitorContext, MonitorSuite, Violation
from repro.obs.profile import Profiler, record_profile_metrics
from repro.obs.regress import (
    append_history,
    compare,
    extract_entry,
    read_history,
    run_gate,
)
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TraceRecord,
    Tracer,
    read_jsonl,
    trace_schedule,
)

__all__ = [
    "Counter",
    "Gauge",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MonitorContext",
    "MonitorSuite",
    "Profiler",
    "TimeWeightedGauge",
    "TraceRecord",
    "Tracer",
    "Violation",
    "analyze",
    "append_history",
    "build_manifest",
    "build_sweep_manifest",
    "compare",
    "config_hash",
    "extract_entry",
    "perf_counter",
    "read_history",
    "read_jsonl",
    "record_profile_metrics",
    "render_analysis",
    "run_gate",
    "trace_schedule",
    "write_manifest",
    "write_sweep_manifest",
]
