"""repro.obs — deterministic observability for the simulation stack.

Three cooperating pieces, all zero-overhead when disabled:

* :mod:`repro.obs.trace` — a structured trace bus.  Components hold an
  optional tracer and emit typed, simulation-time-keyed records to
  pluggable sinks (ring buffer, JSONL file).  Hook points live in the
  kernel (event dispatch), the broadcast channel (page completions),
  the clients (request / hit / miss / wait), and a cache wrapper
  (lookup / admit / evict).
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  time-weighted stats, snapshotted per run.
* :mod:`repro.obs.manifest` — machine-readable run manifests (config
  hash, seeds, schedule period, metric snapshot) for single runs and
  sweeps.

All timestamps inside records are *simulation* time.  The only wall
clock in the subsystem is :mod:`repro.obs.clock`, the one allowlisted
RL001 gateway, used solely for wall-time bookkeeping in manifests.

``python -m repro.obs summary trace.jsonl`` summarises a JSONL trace:
per-page inter-arrival statistics (the §2.1 fixed-inter-arrival check),
cache residency timelines, and response-time breakdowns.
"""

from repro.obs.clock import perf_counter
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedGauge
from repro.obs.manifest import (
    build_manifest,
    build_sweep_manifest,
    config_hash,
    write_manifest,
    write_sweep_manifest,
)
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TraceRecord,
    Tracer,
    read_jsonl,
    trace_schedule,
)

__all__ = [
    "Counter",
    "Gauge",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "TimeWeightedGauge",
    "TraceRecord",
    "Tracer",
    "build_manifest",
    "build_sweep_manifest",
    "config_hash",
    "perf_counter",
    "read_jsonl",
    "trace_schedule",
    "write_manifest",
    "write_sweep_manifest",
]
