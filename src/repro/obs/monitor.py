"""Declarative invariant monitors driven by the trace bus.

A :class:`MonitorSuite` is a trace *sink*: attach it to a
:class:`~repro.obs.trace.Tracer` (the execution layer does this
automatically when ``monitors=`` is passed) and every record flows
through a set of per-run :class:`Monitor` instances, each checking one
simulation invariant:

==============================  ============================================
monitor                         invariant
==============================  ============================================
:class:`FixedInterarrival...`   §2.1: observed ``channel.deliver`` gaps of a
                                fixed-gap page are exact multiples of its
                                schedule gap (exact equality needs every
                                slot observed; multiples hold for any
                                demand-driven subset)
:class:`CacheOccupancy...`      resident pages never exceed the configured
                                cache capacity
:class:`ClockMonotonicity...`   per-client ``client.*`` times and the global
                                ``sim.event`` / ``channel.deliver`` streams
                                never go backwards
:class:`Conservation...`        per client, ``requests == hits + misses``
                                exactly, and every miss is matched by a wait
                                (the final wait may be truncated)
:class:`SchedulePeriodicity.`   every delivery happens at an integral slot
                                completion carrying exactly the page the
                                schedule says that slot holds
==============================  ============================================

Two modes: ``record`` collects :class:`Violation` objects (serialised
into run/sweep manifests); ``strict`` additionally raises
:class:`~repro.errors.MonitorError` at the end of the violating run.
Violations are raised from ``end_run()`` — never from ``write()`` — so
the tracer's sink-quarantine logic cannot swallow them.

Like every obs component, a suite with ``enabled=False`` (or none at
all) costs the execution layer one guard branch and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, MonitorError

#: Schema tag of the monitor snapshot embedded in manifests.
MONITOR_SCHEMA = "repro.obs.monitor/1"

#: Violations retained per run; a systematically-broken invariant would
#: otherwise flood the manifest with one record per request.
MAX_VIOLATIONS_PER_RUN = 100

#: Slack for float comparisons on trace timestamps.  Completion instants
#: and gaps are sums of unit slots, so honest values are exact; the
#: tolerance only forgives representation noise.
TIME_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach, serialisable into manifests."""

    monitor: str
    invariant: str
    time: float
    message: str
    run: str = ""

    def to_dict(self) -> Dict:
        """JSON-ready form (round-tripped by :meth:`from_dict`)."""
        return {
            "monitor": self.monitor,
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "run": self.run,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Violation":
        """Rebuild a violation from its :meth:`to_dict` payload."""
        return cls(
            monitor=str(payload["monitor"]),
            invariant=str(payload["invariant"]),
            time=float(payload["time"]),
            message=str(payload["message"]),
            run=str(payload.get("run", "")),
        )


@dataclass
class MonitorContext:
    """What a run tells its monitors before the first record flows.

    ``schedule`` powers the broadcast-side checks (gap structure, slot
    contents); ``cache_capacity`` powers the occupancy bound.  Either
    may be ``None``, which deactivates the checks that need it.
    """

    label: str = ""
    schedule: Optional[object] = None
    cache_capacity: Optional[int] = None


class Monitor:
    """Base class: observe records for one run, then report violations."""

    name = "monitor"

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def begin(self, context: MonitorContext) -> None:
        """Receive the run context before any record is observed."""
        self.context = context

    def observe(self, record) -> None:
        """Inspect one :class:`~repro.obs.trace.TraceRecord`."""

    def finish(self) -> List[Violation]:
        """End-of-run checks; returns everything collected."""
        return self.violations

    def _violate(self, invariant: str, time: float, message: str) -> None:
        if len(self.violations) < MAX_VIOLATIONS_PER_RUN:
            self.violations.append(
                Violation(self.name, invariant, time, message)
            )


class FixedInterarrivalMonitor(Monitor):
    """§2.1: fixed-gap pages arrive on their arithmetic progression.

    Demand-driven traces observe a *subset* of a page's deliveries, so
    the check is that every observed gap is an exact multiple of the
    schedule's fixed gap — which holds for any subset iff the full
    stream is the fixed progression.  Pages the schedule marks irregular
    (``fixed_gap() is None``) are skipped.
    """

    name = "fixed_interarrival"

    def __init__(self) -> None:
        super().__init__()
        self._last_seen: Dict[int, float] = {}
        self._gap_of: Dict[int, Optional[int]] = {}

    def observe(self, record) -> None:
        if record.kind != "channel.deliver":
            return
        schedule = self.context.schedule
        if schedule is None:
            return
        page = record.fields["page"]
        now = record.time
        previous = self._last_seen.get(page)
        self._last_seen[page] = now
        if previous is None:
            return
        gap = self._gap_of.get(page, -1)
        if gap == -1:
            entry = schedule.fixed_gap(page) if page in schedule else None
            gap = None if entry is None else entry[1]
            self._gap_of[page] = gap
        if gap is None:
            return
        observed = now - previous
        multiple = round(observed / gap)
        if multiple < 1 or abs(observed - multiple * gap) > TIME_TOLERANCE:
            self._violate(
                "fixed_gap_multiple", now,
                f"page {page}: observed gap {observed!r} is not a "
                f"multiple of the schedule gap {gap}",
            )


class CacheOccupancyMonitor(Monitor):
    """Resident pages never exceed the configured capacity.

    Residency is tracked per client (``client`` record field): a
    columnar batch run interleaves every client's ``cache.*`` records
    in one monitored scope, and each client owns a private cache of the
    configured capacity.  Unlabelled records share the ``""`` key, so a
    single-client run behaves exactly as before.
    """

    name = "cache_occupancy"

    def __init__(self) -> None:
        super().__init__()
        self._resident: Dict[str, Set[int]] = {}

    def observe(self, record) -> None:
        capacity = self.context.cache_capacity
        if capacity is None:
            return
        kind = record.kind
        if kind == "cache.admit":
            page = record.fields["page"]
            victim = record.fields.get("victim")
            if victim == page:
                return  # the policy declined to cache the page
            client = record.fields.get("client", "")
            resident = self._resident.get(client)
            if resident is None:
                resident = self._resident[client] = set()
            if victim is not None:
                resident.discard(victim)
            resident.add(page)
            if len(resident) > capacity:
                label = f" for {client}" if client else ""
                self._violate(
                    "occupancy_bound", record.time,
                    f"{len(resident)} resident pages exceed "
                    f"capacity {capacity} after admitting {page}{label}",
                )
        elif kind in ("cache.evict", "cache.discard"):
            client = record.fields.get("client", "")
            resident = self._resident.get(client)
            if resident is not None:
                resident.discard(record.fields["page"])


class ClockMonotonicityMonitor(Monitor):
    """No observation stream ever moves backwards in simulation time.

    ``client.*`` records are checked per client (concurrent clients
    interleave legitimately); ``sim.event``, ``channel.deliver``, and
    ``cache.*`` share the simulator's global clock and are checked as
    one stream each.  Any record carrying a ``client`` label splits its
    stream per client — a columnar batch run interleaves per-client
    ``cache.*`` records whose clocks advance independently.
    """

    name = "clock_monotonicity"

    def __init__(self) -> None:
        super().__init__()
        self._last: Dict[Tuple, float] = {}

    def observe(self, record) -> None:
        kind = record.kind
        if kind.startswith("client."):
            key = ("client", record.fields.get("client", ""))
        else:
            key = (kind.split(".", 1)[0], record.fields.get("client", ""))
        previous = self._last.get(key)
        if previous is not None and record.time < previous - TIME_TOLERANCE:
            self._violate(
                "monotonic_clock", record.time,
                f"{kind} at t={record.time!r} precedes the previous "
                f"{'/'.join(map(str, key))} record at t={previous!r}",
            )
        if previous is None or record.time > previous:
            self._last[key] = record.time


class ConservationMonitor(Monitor):
    """Per client: ``requests == hits + misses``, waits match misses, and
    channel retunes never exceed misses (only a miss can retune)."""

    name = "conservation"

    #: ``client.*`` record kinds the monitor tallies; unknown client
    #: kinds are ignored rather than crashing the suite on a new record
    #: type.
    _KINDS = ("request", "hit", "miss", "wait", "retune")

    def __init__(self) -> None:
        super().__init__()
        self._counts: Dict[str, Dict[str, int]] = {}
        self._final_time = 0.0

    def observe(self, record) -> None:
        kind = record.kind
        if not kind.startswith("client."):
            return
        name = kind.split(".", 1)[1]
        if name not in self._KINDS:
            return
        client = record.fields.get("client", "")
        counts = self._counts.get(client)
        if counts is None:
            counts = {key: 0 for key in self._KINDS}
            self._counts[client] = counts
        counts[name] += 1
        if record.time > self._final_time:
            self._final_time = record.time

    def finish(self) -> List[Violation]:
        for client in sorted(self._counts):
            counts = self._counts[client]
            label = client or "client"
            if counts["request"] != counts["hit"] + counts["miss"]:
                self._violate(
                    "request_conservation", self._final_time,
                    f"{label}: {counts['request']} requests != "
                    f"{counts['hit']} hits + {counts['miss']} misses",
                )
            # Every miss starts a wait; only the run's final wait may be
            # cut off by a time limit, so the deficit is at most one.
            deficit = counts["miss"] - counts["wait"]
            if deficit not in (0, 1):
                self._violate(
                    "wait_conservation", self._final_time,
                    f"{label}: {counts['miss']} misses vs "
                    f"{counts['wait']} waits (deficit {deficit})",
                )
            # The retune allowance: a single-frequency tuner switches at
            # most once per miss (hits never touch the channel).
            if counts["retune"] > counts["miss"]:
                self._violate(
                    "retune_allowance", self._final_time,
                    f"{label}: {counts['retune']} retunes exceed "
                    f"{counts['miss']} misses",
                )
        return self.violations


class SchedulePeriodicityMonitor(Monitor):
    """Deliveries land on integral completions of the advertised slots."""

    name = "schedule_periodicity"

    def observe(self, record) -> None:
        if record.kind != "channel.deliver":
            return
        schedule = self.context.schedule
        if schedule is None:
            return
        if hasattr(schedule, "channel_schedule"):
            # Multi-channel program: the record names its row, and the
            # periodicity contract holds per channel.
            schedule = schedule.channel_schedule(
                int(record.fields.get("channel", 0))
            )
        now = record.time
        if abs(now - round(now)) > TIME_TOLERANCE:
            self._violate(
                "integral_completion", now,
                f"delivery at t={now!r} is not a slot completion instant",
            )
            return
        expected = schedule.page_at(now - 0.5)
        page = record.fields["page"]
        if expected != page:
            self._violate(
                "slot_consistency", now,
                f"delivery of page {page} at t={now!r}, but the schedule "
                f"holds {expected} in that slot",
            )


#: The monitors a default suite instantiates per run, in observe order.
DEFAULT_MONITORS: Tuple = (
    FixedInterarrivalMonitor,
    CacheOccupancyMonitor,
    ClockMonotonicityMonitor,
    ConservationMonitor,
    SchedulePeriodicityMonitor,
)


class MonitorSuite:
    """A trace sink that runs invariant monitors over every record.

    The execution layer calls :meth:`begin_run` / :meth:`end_run` around
    each plan; between them the suite behaves as an ordinary sink
    (``write`` / ``close``), so it composes with JSONL and memory sinks
    on one tracer.  Violations accumulate on :attr:`violations` across
    runs, each tagged with its run label.
    """

    def __init__(
        self,
        factories: Sequence = DEFAULT_MONITORS,
        *,
        mode: str = "record",
        enabled: bool = True,
    ):
        if mode not in ("record", "strict"):
            raise ConfigurationError(
                f"monitor mode must be 'record' or 'strict', got {mode!r}"
            )
        self.factories = tuple(factories)
        self.mode = mode
        self.enabled = enabled
        #: Violations from every completed run, in run order.
        self.violations: List[Violation] = []
        #: Completed monitored runs.
        self.runs = 0
        #: Records observed while a run was active.
        self.observed = 0
        self._active: Optional[List[Monitor]] = None
        self._label = ""

    # -- run lifecycle -----------------------------------------------------
    def begin_run(self, context: MonitorContext) -> None:
        """Instantiate fresh monitors for one run."""
        if self._active is not None:
            raise ConfigurationError(
                f"monitor run {self._label!r} is still active"
            )
        self._label = context.label
        self._active = [factory() for factory in self.factories]
        for monitor in self._active:
            monitor.begin(context)

    def end_run(self) -> List[Violation]:
        """Finish the active run; in strict mode, raise on violations."""
        if self._active is None:
            raise ConfigurationError("no monitor run is active")
        collected: List[Violation] = []
        for monitor in self._active:
            for violation in monitor.finish():
                collected.append(
                    Violation(
                        monitor=violation.monitor,
                        invariant=violation.invariant,
                        time=violation.time,
                        message=violation.message,
                        run=self._label,
                    )
                )
        self._active = None
        self.runs += 1
        collected = collected[:MAX_VIOLATIONS_PER_RUN]
        self.violations.extend(collected)
        if self.mode == "strict" and collected:
            first = collected[0]
            raise MonitorError(
                f"{len(collected)} invariant violation(s) in run "
                f"{self._label or '<unlabelled>'}; first: "
                f"[{first.monitor}/{first.invariant}] {first.message}"
            )
        return collected

    # -- sink protocol -----------------------------------------------------
    def write(self, record) -> None:
        """Feed one trace record to the active run's monitors."""
        active = self._active
        if active is None:
            return
        self.observed += 1
        for monitor in active:
            monitor.observe(record)

    def close(self) -> None:
        """Sinks are closed by tracers; monitor state outlives that."""

    # -- output ------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True while no run has violated an invariant."""
        return not self.violations

    def snapshot(self) -> Dict:
        """JSON-ready monitor document (embedded in manifests verbatim)."""
        return {
            "schema": MONITOR_SCHEMA,
            "mode": self.mode,
            "monitors": [factory.name for factory in self.factories],
            "runs": self.runs,
            "records_observed": self.observed,
            "violations": [v.to_dict() for v in self.violations],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MonitorSuite mode={self.mode} runs={self.runs} "
            f"violations={len(self.violations)}>"
        )
