"""The single sanctioned wall-clock gateway (RL001 allowlist).

Simulated time comes from the event kernel; the *only* legitimate use
of the host clock in this codebase is throughput bookkeeping — "how
many wall seconds did this run take" — reported alongside results and
never fed back into the model.  Routing every such read through this
module keeps the RL001 allowlist to exactly one file and makes any
other wall-clock read in the simulator a lint failure.
"""

from __future__ import annotations

import time as _time


def perf_counter() -> float:
    """Monotonic wall-clock seconds for throughput bookkeeping only.

    The returned value must never influence simulated behaviour (event
    ordering, warm-up, randomness); it may only be *reported*.
    """
    return _time.perf_counter()


class Stopwatch:
    """Measure a wall-time span: ``elapsed`` seconds since construction."""

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = perf_counter()

    @property
    def elapsed(self) -> float:
        """Wall seconds since the stopwatch was created."""
        return perf_counter() - self._started
