"""The paper's Zipf-over-regions access distribution (§4.1).

Pages ``0 .. AccessRange-1`` are grouped into consecutive regions of
``RegionSize`` pages.  Region ``r`` (1-based) receives probability mass
proportional to ``(1/r)^theta``; within a region, pages are equally
likely.  Page 0 is therefore the hottest and page ``AccessRange-1`` the
coldest, with skew growing as θ grows (θ=0 is uniform).

This follows [Knut81]'s Zipf formulation with the region smoothing of
[Dan90], exactly as the paper describes; the paper's experiments use
AccessRange=1000, RegionSize=50, θ=0.95.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.distributions import AccessDistribution


class ZipfRegionDistribution(AccessDistribution):
    """Zipf(θ) over regions of ``region_size`` pages, uniform within."""

    def __init__(self, access_range: int, region_size: int, theta: float):
        super().__init__(access_range)
        if region_size < 1:
            raise ConfigurationError(f"region_size must be >= 1, got {region_size}")
        if access_range % region_size != 0:
            raise ConfigurationError(
                f"access_range {access_range} is not a whole number of "
                f"regions of size {region_size} (§4.1: regions do not overlap)"
            )
        if theta < 0:
            raise ConfigurationError(f"theta must be >= 0, got {theta}")
        self.region_size = region_size
        self.theta = float(theta)
        self.num_regions = access_range // region_size
        region_weights = np.array(
            [(1.0 / rank) ** self.theta for rank in range(1, self.num_regions + 1)]
        )
        region_probabilities = region_weights / region_weights.sum()
        self._probabilities = np.repeat(
            region_probabilities / region_size, region_size
        )

    def probabilities(self) -> np.ndarray:
        return self._probabilities

    def region_of(self, page: int) -> int:
        """0-based region index of a logical page."""
        if not 0 <= page < self.access_range:
            raise ConfigurationError(
                f"page {page} outside access range [0, {self.access_range})"
            )
        return page // self.region_size

    def region_probability(self, region: int) -> float:
        """Total probability mass of one region."""
        if not 0 <= region < self.num_regions:
            raise ConfigurationError(
                f"region {region} outside [0, {self.num_regions})"
            )
        start = region * self.region_size
        return float(self._probabilities[start] * self.region_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZipfRegionDistribution(access_range={self.access_range}, "
            f"region_size={self.region_size}, theta={self.theta})"
        )
