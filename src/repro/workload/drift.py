"""Time-varying client access patterns (workload drift).

§3 lists "a client's access distribution may change over time" among the
reasons a broadcast (and a probability oracle) goes stale.  This module
makes that concrete: a :class:`DriftingZipfDistribution` keeps the Zipf
shape but rotates which region is hottest as the request index advances,
completing ``rotations`` full laps of the access range over ``horizon``
requests.

The interesting consequence is measured in
:func:`repro.experiments.figures.drift_study`: the idealised P/PIX
policies consult a *frozen* probability snapshot (what the client once
told the server), so drift silently invalidates their oracle, while
LRU/LIX estimate probabilities from recent behaviour and adapt.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.trace import RequestTrace
from repro.workload.zipf import ZipfRegionDistribution


class DriftingZipfDistribution:
    """A Zipf-over-regions profile whose hotspot rotates over time.

    At request index ``n`` the region ranked hottest is
    ``floor(n * rotations * num_regions / horizon) mod num_regions``;
    region ranks rotate with it, so the distribution is always a rotated
    copy of the initial one.
    """

    def __init__(
        self,
        access_range: int,
        region_size: int,
        theta: float,
        horizon: int,
        rotations: float = 1.0,
    ):
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        if rotations < 0:
            raise ConfigurationError(
                f"rotations must be >= 0, got {rotations}"
            )
        self.base = ZipfRegionDistribution(access_range, region_size, theta)
        self.access_range = access_range
        self.region_size = region_size
        self.horizon = horizon
        self.rotations = float(rotations)

    @property
    def num_regions(self) -> int:
        """Regions in the access range."""
        return self.base.num_regions

    def hot_region_at(self, request_index: int) -> int:
        """The hottest region when issuing request ``request_index``."""
        if request_index < 0:
            raise ConfigurationError(
                f"request_index must be >= 0, got {request_index}"
            )
        steps = int(
            request_index * self.rotations * self.num_regions / self.horizon
        )
        return steps % self.num_regions

    def probabilities_at(self, request_index: int) -> np.ndarray:
        """The dense page-probability vector in force at ``request_index``."""
        shift = self.hot_region_at(request_index) * self.region_size
        return np.roll(self.base.probabilities(), shift)

    def initial_snapshot(self) -> np.ndarray:
        """The t=0 probabilities — what a static oracle would be fed."""
        return self.base.probabilities()

    def generate_trace(
        self, num_requests: int, rng: np.random.Generator
    ) -> RequestTrace:
        """Draw a trace whose distribution drifts with the request index.

        Implemented by drawing from the *base* distribution and rotating
        each sample by the hotspot shift in force at its index — exactly
        equivalent to sampling the rotated distribution, but vectorised.
        """
        if num_requests < 1:
            raise ConfigurationError(
                f"num_requests must be >= 1, got {num_requests}"
            )
        base_samples = self.base.sample(rng, num_requests)
        indices = np.arange(num_requests)
        steps = (
            indices * self.rotations * self.num_regions / self.horizon
        ).astype(np.int64) % self.num_regions
        shifted = (base_samples + steps * self.region_size) % self.access_range
        return RequestTrace(shifted)
