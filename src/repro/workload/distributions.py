"""Access-probability distributions over a logical page range.

A distribution assigns each logical page ``0 .. access_range-1`` a
probability of being requested; pages outside the range have probability
zero (§4.1: "All pages outside of this range have a zero probability of
access at the client").  Distributions expose both vectorised sampling
(for the fast engine) and the dense probability array (for the idealised
P/PIX policies, which the paper grants perfect knowledge).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError


class AccessDistribution(ABC):
    """Probability distribution over logical pages ``0..access_range-1``."""

    def __init__(self, access_range: int):
        if access_range < 1:
            raise ConfigurationError(
                f"access_range must be >= 1, got {access_range}"
            )
        self.access_range = access_range

    @abstractmethod
    def probabilities(self) -> np.ndarray:
        """Dense probability array of length ``access_range`` (sums to 1)."""

    # -- derived helpers ------------------------------------------------------
    def probability(self, page: int) -> float:
        """Access probability of one logical page (0.0 outside the range)."""
        if 0 <= page < self.access_range:
            return float(self.probabilities()[page])
        return 0.0

    def probability_map(self) -> Dict[int, float]:
        """``{page: probability}`` for pages with positive probability."""
        dense = self.probabilities()
        return {
            page: float(p) for page, p in enumerate(dense) if p > 0.0
        }

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. logical page requests.

        Implemented by inverse-transform over the cached cumulative
        distribution, so repeated calls are O(size log access_range).
        """
        cdf = self._cdf()
        draws = rng.random(size)
        return np.searchsorted(cdf, draws, side="right").astype(np.int64)

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single logical page request."""
        return int(self.sample(rng, 1)[0])

    def _cdf(self) -> np.ndarray:
        cached = getattr(self, "_cdf_cache", None)
        if cached is None:
            cached = np.cumsum(self.probabilities())
            # Guard against floating drift: force the final mass to 1.
            cached[-1] = 1.0
            self._cdf_cache = cached
        return cached


class UniformDistribution(AccessDistribution):
    """Every page in the range equally likely."""

    def probabilities(self) -> np.ndarray:
        return np.full(self.access_range, 1.0 / self.access_range)


class ExplicitDistribution(AccessDistribution):
    """A distribution given as an explicit weight vector.

    Weights are normalised; they need not sum to one.  Useful in tests
    and for modelling measured client access histograms.
    """

    def __init__(self, weights: Sequence[float]):
        weights = np.asarray(list(weights), dtype=np.float64)
        if weights.ndim != 1 or len(weights) < 1:
            raise ConfigurationError("weights must be a non-empty 1-D sequence")
        if np.any(weights < 0):
            raise ConfigurationError("weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ConfigurationError("weights must have positive total mass")
        super().__init__(len(weights))
        self._probabilities = weights / total

    def probabilities(self) -> np.ndarray:
        return self._probabilities
