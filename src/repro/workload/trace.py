"""Materialised request traces.

A :class:`RequestTrace` is the sequence of logical page requests a client
will issue, drawn up-front from an access distribution.  Traces serve two
purposes:

* **Engine cross-validation**: feeding the identical trace to the fast
  analytic engine and the process-oriented kernel engine must produce
  identical per-request response times — the strongest correctness check
  in the test suite.
* **Replay experiments**: comparing cache policies on the *same* request
  string removes sampling variance from the comparison (variance
  reduction by common random numbers).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.distributions import AccessDistribution


@dataclass(frozen=True)
class RequestTrace:
    """An immutable sequence of logical page requests."""

    pages: np.ndarray

    def __post_init__(self):
        pages = np.asarray(self.pages, dtype=np.int64)
        if pages.ndim != 1:
            raise ConfigurationError("a trace must be a 1-D sequence of pages")
        if len(pages) == 0:
            raise ConfigurationError("a trace needs at least one request")
        if np.any(pages < 0):
            raise ConfigurationError("page ids must be non-negative")
        object.__setattr__(self, "pages", pages)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[int]:
        return iter(int(p) for p in self.pages)

    def __getitem__(self, index: int) -> int:
        return int(self.pages[index])

    @property
    def distinct_pages(self) -> int:
        """Number of distinct pages requested."""
        return len(np.unique(self.pages))

    def frequencies(self) -> Counter:
        """Request count per page."""
        return Counter(int(p) for p in self.pages)

    def empirical_probability(self, page: int) -> float:
        """Fraction of requests that target ``page``."""
        return float(np.count_nonzero(self.pages == page)) / len(self.pages)

    def split(self, at: int) -> tuple["RequestTrace", "RequestTrace"]:
        """Split into (warm-up, measurement) sections at index ``at``."""
        if not 0 < at < len(self.pages):
            raise ConfigurationError(
                f"split point {at} outside (0, {len(self.pages)})"
            )
        return RequestTrace(self.pages[:at]), RequestTrace(self.pages[at:])

    @classmethod
    def from_pages(cls, pages: Sequence[int]) -> "RequestTrace":
        """Build a trace from any page-id sequence."""
        return cls(np.asarray(list(pages), dtype=np.int64))


def generate_trace(
    distribution: AccessDistribution,
    num_requests: int,
    rng: np.random.Generator,
) -> RequestTrace:
    """Draw ``num_requests`` i.i.d. requests from ``distribution``."""
    if num_requests < 1:
        raise ConfigurationError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    return RequestTrace(distribution.sample(rng, num_requests))
