"""Client workload modelling.

* :mod:`~repro.workload.distributions` — access-probability distributions
  over a logical page range (uniform, explicit, and the ABC base class).
* :mod:`~repro.workload.zipf` — the paper's Zipf-over-regions
  distribution (§4.1): Zipf(θ) across regions of ``RegionSize`` pages,
  uniform within a region.
* :mod:`~repro.workload.mapping` — the §4.2 logical→physical mapping:
  identity, then an ``Offset`` circular shift, then per-page ``Noise``
  swaps.  This is how a single simulated client stands in for a whole
  population.
* :mod:`~repro.workload.trace` — materialised request traces for replay
  and for cross-validating the two simulation engines.
"""

from repro.workload.distributions import (
    AccessDistribution,
    ExplicitDistribution,
    UniformDistribution,
)
from repro.workload.drift import DriftingZipfDistribution
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace, generate_trace
from repro.workload.zipf import ZipfRegionDistribution

__all__ = [
    "AccessDistribution",
    "DriftingZipfDistribution",
    "ExplicitDistribution",
    "LogicalPhysicalMapping",
    "RequestTrace",
    "UniformDistribution",
    "ZipfRegionDistribution",
    "generate_trace",
]
