"""Logical→physical page mapping: Offset and Noise (§4.2).

The simulated client requests *logical* pages; the server broadcasts
*physical* pages.  Perturbing the mapping lets one client model a whole
population:

1. Start from the identity: logical page ``i`` → physical page ``i``, so
   the client's hottest pages sit on the fastest disk.
2. **Offset**: circularly shift the mapping by ``offset`` pages, pushing
   the ``offset`` hottest logical pages to the end of the slowest disk
   and pulling colder pages onto the faster disks (Figure 4).  With a
   cache of the idealised P policy, the best broadcast sets
   ``Offset = CacheSize`` — the cached pages need not be broadcast fast.
3. **Noise**: "Noise determines the percentage of pages for which there
   may be a mismatch between the client and the server."  For each page
   subject to the coin, with probability ``noise`` pick a destination
   disk uniformly at random, pick a random resident page of that disk,
   and exchange the two pages' mappings.  Swaps within the same disk are
   allowed, so ``noise`` is an upper bound on actual disagreement (paper
   footnote 3).

``noise_scope`` controls which logical pages the coin is tossed for.
The default (used by the experiment layer) is the client's access range
— the pages for which client/server mismatch is defined.  Tossing the
coin over the whole database instead (``noise_scope=None``) makes every
fast-disk page a frequent swap *victim* (a disk-1 page at the paper's
scale is dragged away with probability well above ``noise``), which
breaks the footnote's upper-bound property and overstates the workload
deviation; calibration against the paper's Figures 9/10 confirms the
access-range scope (P crosses the flat baseline near 45% noise, PIX
never does — both match only under the scoped coin).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.disks import DiskLayout
from repro.errors import ConfigurationError


class LogicalPhysicalMapping:
    """The §4.2 three-step logical→physical mapping."""

    def __init__(
        self,
        layout: DiskLayout,
        offset: int = 0,
        noise: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        noise_scope: Optional[int] = None,
    ):
        total = layout.total_pages
        if not 0 <= offset <= total:
            raise ConfigurationError(
                f"offset must be in [0, {total}], got {offset}"
            )
        if not 0.0 <= noise <= 1.0:
            raise ConfigurationError(f"noise must be in [0, 1], got {noise}")
        if noise > 0.0 and rng is None:
            raise ConfigurationError("noise > 0 requires an rng for the swaps")
        if noise_scope is not None and not 1 <= noise_scope <= total:
            raise ConfigurationError(
                f"noise_scope must be in [1, {total}], got {noise_scope}"
            )
        self.layout = layout
        self.offset = offset
        self.noise = noise
        self.noise_scope = noise_scope if noise_scope is not None else total

        # Step 1+2: identity shifted by offset.  Logical page i lands at
        # physical (i - offset) mod total: the offset hottest pages wrap
        # to the tail of the slowest disk.
        logical = np.arange(total, dtype=np.int64)
        physical = (logical - offset) % total

        # Step 3: noise swaps over the physical placement.  An inverse
        # index is maintained incrementally so each swap is O(1).
        inverse = np.empty(total, dtype=np.int64)
        inverse[physical] = np.arange(total, dtype=np.int64)
        if noise > 0.0:
            assert rng is not None
            ranges = layout.disk_ranges()
            selected = rng.random(self.noise_scope) < noise
            for logical_page in np.flatnonzero(selected):
                destination_disk = int(rng.integers(layout.num_disks))
                start, stop = ranges[destination_disk]
                victim_physical = int(rng.integers(start, stop))
                # Exchange the two physical slots between their logical owners.
                other_logical = int(inverse[victim_physical])
                own_physical = int(physical[logical_page])
                physical[logical_page] = victim_physical
                physical[other_logical] = own_physical
                inverse[victim_physical] = logical_page
                inverse[own_physical] = other_logical

        self._to_physical = physical
        self._to_logical = inverse

    # -- queries ---------------------------------------------------------
    @property
    def total_pages(self) -> int:
        """Size of the mapped database."""
        return len(self._to_physical)

    def to_physical(self, logical: int) -> int:
        """Physical page broadcast for logical page ``logical``."""
        return int(self._to_physical[logical])

    def to_logical(self, physical: int) -> int:
        """Logical page that physical page ``physical`` represents."""
        return int(self._to_logical[physical])

    def physical_array(self) -> np.ndarray:
        """The whole logical→physical mapping as an array (read-only view)."""
        view = self._to_physical.view()
        view.flags.writeable = False
        return view

    def disk_of_logical(self, logical: int) -> int:
        """0-based disk index on which logical page ``logical`` travels."""
        return self.layout.disk_of_page(self.to_physical(logical))

    def displaced_fraction(self, access_range: Optional[int] = None) -> float:
        """Fraction of pages whose *disk* differs from the offset-only layout.

        Measures the effective disagreement the noise produced (always
        <= ``noise``, per the paper's footnote that same-disk swaps are
        harmless).  With ``access_range`` given, only the client's pages
        are counted — the disagreement that actually matters to it.
        """
        limit = access_range if access_range is not None else self.total_pages
        total = self.total_pages
        displaced = 0
        for logical in range(limit):
            baseline_physical = (logical - self.offset) % total
            baseline_disk = self.layout.disk_of_page(baseline_physical)
            if self.disk_of_logical(logical) != baseline_disk:
                displaced += 1
        return displaced / limit

    def frequency_map(self, schedule, access_range: int) -> Dict[int, float]:
        """Broadcast frequency of each logical page in the access range.

        This is the *X* the cost-based policies divide by; the paper notes
        clients know it exactly (the broadcast is periodic and
        self-describing).
        """
        return {
            logical: schedule.frequency(self.to_physical(logical))
            for logical in range(access_range)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LogicalPhysicalMapping pages={self.total_pages} "
            f"offset={self.offset} noise={self.noise}>"
        )
