"""Closed-form makespans for multi-page retrieval on a flat disk.

Assumptions: a flat broadcast of period ``P``; the query's ``k`` wanted
pages occupy positions that are (modelled as) independently uniform over
the cycle; the query starts at a uniformly random instant.

* **Opportunistic**: the makespan is the distance to the *last* wanted
  arrival — the maximum of ``k`` i.i.d. Uniform(0, P] variables:
  ``E = P * k / (k + 1)``.  Never more than one full cycle.
* **Sequential**: each fetch waits an independent Uniform(0, P] distance
  from wherever the previous one finished: ``E = k * P / 2``.

The ratio ``(k+1)/2`` is the opportunistic speedup — linear in the
query size.  For multidisk programs there is no clean closed form (the
wanted pages live on different-speed disks); the engine measures it.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def _check(num_pages: int, k: int) -> None:
    if num_pages < 1:
        raise ConfigurationError(f"num_pages must be >= 1, got {num_pages}")
    if not 1 <= k <= num_pages:
        raise ConfigurationError(
            f"query size must be in [1, {num_pages}], got {k}"
        )


def opportunistic_expected_makespan_flat(num_pages: int, k: int) -> float:
    """Expected makespan of an arrival-order harvest of ``k`` pages."""
    _check(num_pages, k)
    return num_pages * k / (k + 1.0)


def sequential_expected_makespan_flat(num_pages: int, k: int) -> float:
    """Expected makespan of one-at-a-time fetching of ``k`` pages."""
    _check(num_pages, k)
    return k * num_pages / 2.0


def opportunistic_speedup_flat(k: int) -> float:
    """Sequential/opportunistic makespan ratio: ``(k + 1) / 2``."""
    if k < 1:
        raise ConfigurationError(f"query size must be >= 1, got {k}")
    return (k + 1.0) / 2.0
