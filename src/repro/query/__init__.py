"""Query processing over broadcast media (§7's final future-work item).

"Finally, once the basic design parameters for broadcast disks of this
kind are well-understood, work is needed to develop query processing
strategies that would exploit this type of media."

The defining property of a broadcast as a storage device is that the
*server*, not the client, chooses the access order.  A query needing a
set of pages should therefore harvest them **in arrival order** —
grabbing each wanted page as it goes by — rather than requesting them
one by one in key order as a pull-based executor would.

* :mod:`~repro.query.engine` — the two strategies (`sequential`,
  `opportunistic`) measured end-to-end, plus a cache-aware variant.
* :mod:`~repro.query.analysis` — closed forms: on a flat disk a
  k-page opportunistic scan completes in ``P * k/(k+1)`` expected time
  versus ``~ k * P/2`` for sequential fetching — the gap grows linearly
  with the query size.
"""

from repro.query.analysis import (
    opportunistic_expected_makespan_flat,
    sequential_expected_makespan_flat,
)
from repro.query.engine import QueryOutcome, fetch_opportunistic, fetch_sequential

__all__ = [
    "QueryOutcome",
    "fetch_opportunistic",
    "fetch_sequential",
    "opportunistic_expected_makespan_flat",
    "sequential_expected_makespan_flat",
]
