"""Multi-page retrieval strategies over a broadcast schedule.

A *query* here is a set of pages the client needs before it can produce
an answer (a scan, a join input, a form with several records).  Two
executors:

* :func:`fetch_sequential` — the pull-based habit: request the pages one
  at a time in the order given, waiting for each page's next broadcast
  before asking for the next.  Every page costs an independent wait.
* :func:`fetch_opportunistic` — the broadcast-native plan: monitor the
  channel and grab each wanted page whenever it goes by, in whatever
  order the server transmits.  The makespan is the time until the *last*
  wanted page has appeared — on a flat disk, ``P * k/(k+1)`` expected
  for ``k`` pages instead of sequential's ``~ k * P/2``.

Both honour an optional cache (pages already resident cost nothing; the
fetched pages are offered to it), so the strategies compose with the
paper's §3 machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cache.base import CachePolicy
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.workload.mapping import LogicalPhysicalMapping


@dataclass(frozen=True)
class QueryOutcome:
    """The result of executing one multi-page retrieval."""

    makespan: float
    #: (completion_time, logical_page) per page, in completion order.
    completions: Tuple[Tuple[float, int], ...]
    cache_hits: int
    pages_from_broadcast: int

    @property
    def pages(self) -> int:
        """Number of distinct pages the query needed."""
        return self.cache_hits + self.pages_from_broadcast


def _prepare(pages: Sequence[int]) -> List[int]:
    pages = list(dict.fromkeys(int(page) for page in pages))  # dedupe, keep order
    if not pages:
        raise ConfigurationError("a query needs at least one page")
    return pages


def fetch_sequential(
    schedule: BroadcastSchedule,
    mapping: LogicalPhysicalMapping,
    pages: Sequence[int],
    start: float,
    cache: Optional[CachePolicy] = None,
) -> QueryOutcome:
    """Fetch the pages one at a time, in the order given."""
    pages = _prepare(pages)
    now = float(start)
    completions: List[Tuple[float, int]] = []
    hits = 0
    fetched = 0
    for page in pages:
        if cache is not None and cache.lookup(page, now):
            hits += 1
            completions.append((now, page))
            continue
        arrival = schedule.next_arrival(mapping.to_physical(page), now)
        now = arrival
        fetched += 1
        completions.append((now, page))
        if cache is not None:
            cache.admit(page, now)
    return QueryOutcome(
        makespan=now - start,
        completions=tuple(completions),
        cache_hits=hits,
        pages_from_broadcast=fetched,
    )


def fetch_opportunistic(
    schedule: BroadcastSchedule,
    mapping: LogicalPhysicalMapping,
    pages: Sequence[int],
    start: float,
    cache: Optional[CachePolicy] = None,
) -> QueryOutcome:
    """Harvest the pages in broadcast-arrival order.

    Cache-resident pages are satisfied immediately; the rest are
    collected by taking, at every step, the wanted page whose next
    arrival is earliest — which is exactly "listen and grab what goes
    by".  O(k log occurrences) per query for k wanted pages.
    """
    pages = _prepare(pages)
    now = float(start)
    completions: List[Tuple[float, int]] = []
    hits = 0
    outstanding: List[int] = []
    for page in pages:
        if cache is not None and cache.lookup(page, now):
            hits += 1
            completions.append((now, page))
        else:
            outstanding.append(page)

    fetched = 0
    while outstanding:
        # The next wanted page to go by.  Arrival times are distinct
        # (one page per slot), so the choice is unambiguous.
        next_page = min(
            outstanding,
            key=lambda page: schedule.next_arrival(
                mapping.to_physical(page), now
            ),
        )
        now = schedule.next_arrival(mapping.to_physical(next_page), now)
        outstanding.remove(next_page)
        fetched += 1
        completions.append((now, next_page))
        if cache is not None and next_page not in cache:
            cache.admit(next_page, now)
    return QueryOutcome(
        makespan=now - start,
        completions=tuple(completions),
        cache_hits=hits,
        pages_from_broadcast=fetched,
    )
