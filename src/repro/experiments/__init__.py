"""Experiment harness: configuration, engines, runner, figure definitions.

* :mod:`~repro.experiments.config` — :class:`ExperimentConfig`, the union
  of the paper's client (Table 2), server (Table 3), and study (Table 4)
  parameters, with the paper's defaults.
* :mod:`~repro.experiments.engine` — the fast analytic-stepping engine:
  exploits fixed inter-arrival times to jump straight to each page
  arrival (bisection into the schedule's occurrence lists).
* :mod:`~repro.experiments.simengine` — the process-oriented engine built
  on :mod:`repro.sim`; slower, but supports multiple clients and
  broadcast snooping (prefetch).  Cross-validated against the fast
  engine request-by-request.
* :mod:`~repro.experiments.runner` — builds all components from a config
  and runs one experiment or a sweep.
* :mod:`~repro.experiments.figures` — one entry point per paper table and
  figure, returning the exact series the paper plots.
* :mod:`~repro.experiments.reporting` — ascii tables/CSV for the bench
  harness.
"""

from repro.experiments.config import DISK_PRESETS, ExperimentConfig
from repro.experiments.engine import FastEngine
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    sweep,
    sweep_results,
)

__all__ = [
    "DISK_PRESETS",
    "ExperimentConfig",
    "ExperimentResult",
    "FastEngine",
    "run_experiment",
    "sweep",
    "sweep_results",
]
