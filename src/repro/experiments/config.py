"""Experiment configuration: the paper's Tables 2, 3, and 4 in one place.

Client parameters (Table 2): CacheSize, ThinkTime, AccessRange, θ,
RegionSize.  Server parameters (Table 3): ServerDBSize, NumDisks,
DiskSize(i), Δ, Offset, Noise.  Study settings (Table 4) are the
defaults: ServerDBSize 5000, AccessRange 1000, ThinkTime 2.0, θ 0.95,
RegionSize 50, 15,000 measured requests after cache warm-up.

The five disk configurations the paper studies are exposed as
:data:`DISK_PRESETS`: D1⟨500,4500⟩, D2⟨900,4100⟩, D3⟨2500,2500⟩,
D4⟨300,1200,3500⟩, D5⟨500,2000,2500⟩.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from repro.cache.base import PolicyContext
from repro.cache.registry import make_policy
from repro.core.disks import DiskLayout
from repro.core.programs import _flat_program, _multidisk_program
from repro.core.schedule import BroadcastProgram, BroadcastSchedule
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.zipf import ZipfRegionDistribution

#: The paper's five disk configurations (Figure 5), sizes in pages.
DISK_PRESETS: Dict[str, Tuple[int, ...]] = {
    "D1": (500, 4500),
    "D2": (900, 4100),
    "D3": (2500, 2500),
    "D4": (300, 1200, 3500),
    "D5": (500, 2000, 2500),
}

#: Noise levels swept in Experiments 2-5.
NOISE_LEVELS: Tuple[float, ...] = (0.00, 0.15, 0.30, 0.45, 0.60, 0.75)

#: Δ values swept along the x-axis of Figures 5-9 and 13.
DELTA_RANGE: Tuple[int, ...] = tuple(range(0, 8))


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully-specified broadcast-disk experiment."""

    # -- server (Table 3) ----------------------------------------------------
    disk_sizes: Tuple[int, ...] = DISK_PRESETS["D5"]
    delta: int = 0
    rel_freqs: Optional[Tuple[int, ...]] = None  # overrides delta if given
    offset: int = 0
    noise: float = 0.0
    #: By default the noise coin is tossed for the client's access-range
    #: pages — the pages "for which there may be a mismatch between the
    #: client and the server" (§4.2) — which keeps Noise the upper bound
    #: on deviation the paper's footnote 3 asserts and calibrates the
    #: reproduction to the paper's Figure 9/10 crossovers.  Set True to
    #: toss the coin over every database page instead (a harsher model:
    #: fast-disk pages become frequent swap victims).
    noise_over_full_database: bool = False

    # -- client (Table 2) ----------------------------------------------------
    cache_size: int = 1
    think_time: float = 2.0
    access_range: int = 1000
    theta: float = 0.95
    region_size: int = 50
    policy: str = "LRU"
    lix_alpha: float = 0.25
    #: Workload drift (§3): how many full hotspot rotations the client's
    #: access distribution completes over the run.  0.0 (the default)
    #: keeps the paper's static Zipf profile.  When drifting, the trace
    #: follows the rotated distribution while the policy's probability
    #: oracle keeps the frozen t=0 snapshot — the stale-profile scenario
    #: of ``figures.drift_study``.
    drift_rotations: float = 0.0

    # -- measurement protocol (Table 4 / §5 preamble) -------------------------
    num_requests: int = 15_000
    warmup_requests: Optional[int] = None  # explicit warm-up length override
    #: §5 measures "once the client performance reached steady state".
    #: With ``warmup_requests=None``, warm-up runs until the cache is
    #: full and then for ``steady_state_factor * num_requests`` further
    #: requests so the cache-convergence transient is excluded.  Set to
    #: 0.0 to measure straight after the cache fills.
    steady_state_factor: float = 2.0
    seed: int = 42

    # -- presentation ------------------------------------------------------
    label: str = ""

    # -- multi-channel broadcast (keyword-only; defaults reproduce the
    # single-channel paper setting, and both fields are omitted from
    # serialized config dicts at their defaults so existing config
    # hashes, bench-history baselines and checkpoints stay valid) -----------
    channels: int = field(default=1, kw_only=True)
    retune_cost: float = field(default=1.0, kw_only=True)

    def __post_init__(self):
        if self.cache_size < 1:
            raise ConfigurationError(
                f"cache_size must be >= 1 (1 means no caching), "
                f"got {self.cache_size}"
            )
        if self.think_time < 0:
            raise ConfigurationError(
                f"think_time must be >= 0, got {self.think_time}"
            )
        if self.num_requests < 1:
            raise ConfigurationError(
                f"num_requests must be >= 1, got {self.num_requests}"
            )
        if not 0.0 <= self.noise <= 1.0:
            raise ConfigurationError(f"noise must be in [0, 1], got {self.noise}")
        if self.access_range > self.server_db_size:
            raise ConfigurationError(
                f"access_range {self.access_range} exceeds the database "
                f"size {self.server_db_size} (§4.2: ServerDBSize >= AccessRange)"
            )
        if not 0 <= self.offset <= self.server_db_size:
            raise ConfigurationError(
                f"offset must be in [0, {self.server_db_size}], got {self.offset}"
            )
        if self.steady_state_factor < 0:
            raise ConfigurationError(
                f"steady_state_factor must be >= 0, got {self.steady_state_factor}"
            )
        if self.drift_rotations < 0:
            raise ConfigurationError(
                f"drift_rotations must be >= 0, got {self.drift_rotations}"
            )
        if not 1 <= self.channels <= self.server_db_size:
            raise ConfigurationError(
                f"channels must be in [1, {self.server_db_size}], "
                f"got {self.channels}"
            )
        if self.retune_cost < 0:
            raise ConfigurationError(
                f"retune_cost must be >= 0, got {self.retune_cost}"
            )

    # -- derived quantities -------------------------------------------------
    @property
    def server_db_size(self) -> int:
        """Total pages broadcast (the paper's ServerDBSize)."""
        return sum(self.disk_sizes)

    @property
    def num_disks(self) -> int:
        """Number of broadcast disks."""
        return len(self.disk_sizes)

    @property
    def has_cache(self) -> bool:
        """True when the client has more than the trivial one-page cache."""
        return self.cache_size > 1

    @property
    def extra_warmup(self) -> int:
        """Steady-state shake-out requests after the cache fills.

        Zero when an explicit ``warmup_requests`` is given or there is no
        cache worth converging.
        """
        if self.warmup_requests is not None or not self.has_cache:
            return 0
        return int(self.steady_state_factor * self.num_requests)

    def describe(self) -> str:
        """Short human-readable identifier for reports."""
        if self.label:
            return self.label
        sizes = ",".join(str(s) for s in self.disk_sizes)
        return (
            f"<{sizes}> Δ={self.delta} noise={self.noise:.0%} "
            f"cache={self.cache_size} policy={self.policy}"
        )

    # -- component builders ----------------------------------------------------
    def build_layout(self) -> DiskLayout:
        """The disk layout implied by sizes and Δ (or explicit frequencies)."""
        if self.rel_freqs is not None:
            return DiskLayout(self.disk_sizes, self.rel_freqs)
        return DiskLayout.from_delta(self.disk_sizes, self.delta)

    def build_schedule(
        self, layout: Optional[DiskLayout] = None
    ) -> Union[BroadcastSchedule, BroadcastProgram]:
        """The periodic broadcast program for this configuration.

        ``channels == 1`` (the paper's setting) takes the legacy
        single-schedule path untouched; ``channels > 1`` partitions the
        pages across parallel channels (conflict-aware assignment guided
        by the server's canonical Zipf estimate of the hot set) and
        returns a :class:`BroadcastProgram`.
        """
        layout = layout or self.build_layout()
        if self.channels > 1:
            from repro.core.channels import build_program

            return build_program(
                layout,
                self.channels,
                probabilities=self._server_probabilities(layout),
                retune_cost=self.retune_cost,
            )
        if layout.is_flat:
            # Flat layouts produce the canonical one-copy-per-page cycle
            # (identical timing, trivial period).
            return _flat_program(layout.total_pages)
        return _multidisk_program(layout)

    def _server_probabilities(self, layout: DiskLayout) -> Dict[int, float]:
        """The server's access-probability estimate over physical pages.

        The server lays pages out hottest-to-coldest (§4.2), so its best
        estimate is the canonical Zipf profile over the first
        ``access_range`` physical pages — the same assumption the §2.2
        disk partitioning itself rests on.
        """
        probabilities = self.build_distribution().probabilities()
        limit = min(self.access_range, layout.total_pages)
        return {
            page: float(probabilities[page]) for page in range(limit)
        }

    def build_streams(self) -> RandomStreams:
        """The experiment's named random streams."""
        return RandomStreams(self.seed)

    def build_distribution(self) -> ZipfRegionDistribution:
        """The client's Zipf-over-regions access distribution."""
        return ZipfRegionDistribution(
            access_range=self.access_range,
            region_size=self.region_size,
            theta=self.theta,
        )

    def build_drift(self, horizon: int):
        """The drifting access distribution for a ``horizon``-request run."""
        from repro.workload.drift import DriftingZipfDistribution

        return DriftingZipfDistribution(
            access_range=self.access_range,
            region_size=self.region_size,
            theta=self.theta,
            horizon=horizon,
            rotations=self.drift_rotations,
        )

    def build_mapping(
        self,
        layout: Optional[DiskLayout] = None,
        streams: Optional[RandomStreams] = None,
    ) -> LogicalPhysicalMapping:
        """The §4.2 logical→physical mapping (offset + noise)."""
        layout = layout or self.build_layout()
        streams = streams or self.build_streams()
        return LogicalPhysicalMapping(
            layout=layout,
            offset=self.offset,
            noise=self.noise,
            rng=streams.stream("noise"),
            noise_scope=(
                None if self.noise_over_full_database else self.access_range
            ),
        )

    def build_policy(
        self,
        schedule: Union[BroadcastSchedule, BroadcastProgram],
        mapping: LogicalPhysicalMapping,
        distribution: ZipfRegionDistribution,
        layout: Optional[DiskLayout] = None,
    ):
        """The client's cache policy wired to its oracles."""
        layout = layout or self.build_layout()
        probabilities = distribution.probabilities()
        access_range = self.access_range

        def probability(page: int) -> float:
            return float(probabilities[page]) if 0 <= page < access_range else 0.0

        def frequency(page: int) -> float:
            return schedule.frequency(mapping.to_physical(page))

        def disk_of(page: int) -> int:
            return layout.disk_of_page(mapping.to_physical(page))

        context = PolicyContext(
            probability=probability,
            frequency=frequency,
            disk_of=disk_of,
            num_disks=layout.num_disks,
            lix_alpha=self.lix_alpha,
        )
        return make_policy(self.policy, self.cache_size, context)

    def with_(self, **overrides) -> "ExperimentConfig":
        """A modified copy (dataclasses.replace with a shorter name)."""
        return replace(self, **overrides)
