"""JSON persistence for experiment results and figure data.

Full-scale figure reproductions take seconds to minutes; persisting
their outputs lets the bench harness, notebooks, and plotting scripts
share one set of measurements.  The format is plain JSON with a schema
tag, so files remain diffable and tool-agnostic.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Union

from repro.errors import ConfigurationError
from repro.exec.run import result_from_state, result_state
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FigureData
from repro.experiments.runner import ExperimentResult

_FIGURE_SCHEMA = "repro.figure/1"
_RESULT_SCHEMA = "repro.result/1"


def figure_to_dict(data: FigureData) -> dict:
    """A JSON-ready representation of one figure's series."""
    return {
        "schema": _FIGURE_SCHEMA,
        "figure": data.figure,
        "title": data.title,
        "x_label": data.x_label,
        "x_values": list(data.x_values),
        "series": {name: list(values) for name, values in data.series.items()},
        "notes": data.notes,
    }


def figure_from_dict(payload: dict) -> FigureData:
    """Rebuild a :class:`FigureData` from :func:`figure_to_dict` output."""
    if payload.get("schema") != _FIGURE_SCHEMA:
        raise ConfigurationError(
            f"not a figure payload (schema={payload.get('schema')!r})"
        )
    data = FigureData(
        figure=payload["figure"],
        title=payload["title"],
        x_label=payload["x_label"],
        x_values=list(payload["x_values"]),
        notes=payload.get("notes", ""),
    )
    for name, values in payload["series"].items():
        data.add_series(name, values)
    return data


def result_to_dict(result: ExperimentResult,
                   include_state: bool = False) -> dict:
    """A JSON-ready summary of one experiment result.

    The raw per-request samples are omitted (they can be megabytes);
    the distributional summary (mean/stddev/min/max) is retained.  With
    ``include_state`` the payload additionally carries the exact result
    state (:func:`repro.exec.run.result_state` — ``RunningStats``
    internals and samples), making :func:`result_from_dict` a
    bit-for-bit round trip.
    """
    config = asdict(result.config)
    payload = {
        "schema": _RESULT_SCHEMA,
        "config": config,
        "mean_response_time": result.mean_response_time,
        "response_stddev": result.response_stats.stddev,
        "response_min": result.response_stats.minimum,
        "response_max": result.response_stats.maximum,
        "hit_rate": result.hit_rate,
        "access_locations": dict(result.access_locations),
        "measured_requests": result.measured_requests,
        "warmup_requests": result.warmup_requests,
        "schedule_period": result.schedule_period,
        "schedule_utilisation": result.schedule_utilisation,
        "wall_seconds": result.wall_seconds,
    }
    if include_state:
        payload["state"] = result_state(result)
    return payload


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a stateful payload.

    Requires a payload written with ``include_state=True``; the summary
    form drops the stats internals and cannot be rebuilt exactly.
    """
    if payload.get("schema") != _RESULT_SCHEMA:
        raise ConfigurationError(
            f"not a result payload (schema={payload.get('schema')!r})"
        )
    state = payload.get("state")
    if state is None:
        raise ConfigurationError(
            "result payload has no 'state' block; save it with "
            "result_to_dict(result, include_state=True) to round-trip"
        )
    return result_from_state(config_from_dict(payload["config"]), state)


def config_from_dict(payload: dict) -> ExperimentConfig:
    """Rebuild the :class:`ExperimentConfig` embedded in a result payload."""
    config = dict(payload)
    for key in ("disk_sizes", "rel_freqs"):
        if config.get(key) is not None:
            config[key] = tuple(config[key])
    return ExperimentConfig(**config)


def save(payload: Union[FigureData, ExperimentResult], path: str) -> None:
    """Serialise a figure or result to ``path`` as indented JSON."""
    if isinstance(payload, FigureData):
        body = figure_to_dict(payload)
    elif isinstance(payload, ExperimentResult):
        body = result_to_dict(payload)
    else:
        raise ConfigurationError(
            f"cannot persist a {type(payload).__name__}"
        )
    with open(path, "w") as handle:
        json.dump(body, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_figure(path: str) -> FigureData:
    """Load a figure saved with :func:`save`."""
    with open(path) as handle:
        return figure_from_dict(json.load(handle))
