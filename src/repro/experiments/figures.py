"""One entry point per table and figure of the paper's evaluation (§5).

Every function returns a :class:`FigureData`: the x-axis, one y-series
per curve, and enough labelling to print a table matching the paper's
plot.  All functions accept ``num_requests`` and ``seed`` so tests can
run them at reduced scale; the defaults are the paper's (15,000 measured
requests, Table 4 parameters).

The module also contains the extension studies promised in DESIGN.md §6:
bus-stop paradox, broadcast shaping, PT prefetching, the policy zoo,
(1, m) indexing (flat and multidisk-integrated), volatile data with
invalidation reports, and workload drift.  The hybrid push/pull study
lives in :mod:`repro.hybrid.study` (it needs the process engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.analysis import (
    flat_expected_delay,
    program_comparison,
    sqrt_rule_lower_bound,
    table1_rows,
)
from repro.core.disks import DiskLayout
from repro.core.optimizer import compare_presets, optimize_layout
from repro.experiments.config import (
    DELTA_RANGE,
    DISK_PRESETS,
    NOISE_LEVELS,
    ExperimentConfig,
)
from repro.experiments.runner import run_experiment, sweep_results

#: Number of measured requests in the paper's protocol.
PAPER_REQUESTS = 15_000

#: Paper figures accept ``jobs`` (worker processes; results are
#: byte-identical to serial at any count) and ``engine`` ("fast" or
#: "process"); each builds its full config grid in the original loop
#: order and slices the sweep results back into per-curve series.


@dataclass
class FigureData:
    """The series behind one figure (or table) of the paper."""

    figure: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def add_series(self, name: str, values: Sequence[float]) -> None:
        """Attach one named curve; must align with ``x_values``."""
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(self.x_values)} x values"
            )
        self.series[name] = values

    def row_iter(self):
        """Yield ``(x, {series: y})`` rows for tabulation."""
        for index, x in enumerate(self.x_values):
            yield x, {name: ys[index] for name, ys in self.series.items()}


def _preset_layout(name: str) -> Tuple[int, ...]:
    return DISK_PRESETS[name]


# ---------------------------------------------------------------------------
# Table 1 (with Figure 2's example programs)
# ---------------------------------------------------------------------------

def table1() -> FigureData:
    """Expected delay of the flat / skewed / multi-disk example programs.

    Analytic, exact: must match the paper's Table 1 to the printed
    precision (flat always 1.50; e.g. the uniform row is
    1.50 / 1.75 / 1.67).
    """
    rows = table1_rows()
    data = FigureData(
        figure="Table 1",
        title="Expected delay for various access probabilities",
        x_label="P(A),P(B),P(C)",
        x_values=[f"{a:.3f},{b:.3f},{c:.3f}" for (a, b, c), _d in rows],
        notes="Analytic expected delay in broadcast units (Figure 2 programs).",
    )
    for program in ("flat", "skewed", "multidisk"):
        data.add_series(program, [delays[program] for _mix, delays in rows])
    return data


# ---------------------------------------------------------------------------
# Experiment 1 — Figure 5: response time vs delta, no cache, no noise
# ---------------------------------------------------------------------------

def figure5(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    deltas: Sequence[int] = DELTA_RANGE,
    presets: Sequence[str] = ("D1", "D2", "D3", "D4", "D5"),
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """Client response time vs Δ for the five disk configurations.

    CacheSize=1 (no caching), Noise=0%, Offset=0.  Expected shape: all
    configurations beat the flat disk (2500 bu) once Δ>=1; D4 is best
    (≈1/3 of flat at Δ=7); D1 bottoms out around Δ=3-5 then degrades;
    D2 keeps improving; D3 is the worst two-disk configuration.
    """
    data = FigureData(
        figure="Figure 5",
        title="Client performance, CacheSize=1, Noise=0%",
        x_label="delta",
        x_values=list(deltas),
        notes=f"flat-disk reference: {flat_expected_delay(5000):.0f} bu",
    )
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout(preset),
            delta=delta,
            cache_size=1,
            noise=0.0,
            offset=0,
            num_requests=num_requests,
            seed=seed,
            label=f"F5 {preset} Δ={delta}",
        )
        for preset in presets
        for delta in deltas
    ]
    means = [
        result.mean_response_time
        for result in sweep_results(configs, engine=engine, jobs=jobs,
                                profile=profile, monitors=monitors)
    ]
    for position, preset in enumerate(presets):
        sizes = ",".join(str(s) for s in _preset_layout(preset))
        start = position * len(deltas)
        data.add_series(
            f"{preset}<{sizes}>", means[start:start + len(deltas)]
        )
    return data


# ---------------------------------------------------------------------------
# Experiment 2 — Figures 6 and 7: noise sensitivity without a cache
# ---------------------------------------------------------------------------

def _noise_sensitivity(
    figure: str,
    preset: str,
    cache_size: int,
    policy: str,
    offset: int,
    num_requests: int,
    seed: int,
    deltas: Sequence[int],
    noises: Sequence[float],
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    sizes = ",".join(str(s) for s in _preset_layout(preset))
    data = FigureData(
        figure=figure,
        title=(
            f"Noise sensitivity — Disk {preset}<{sizes}> "
            f"CacheSize={cache_size}"
            + (f", policy={policy}" if cache_size > 1 else "")
        ),
        x_label="delta",
        x_values=list(deltas),
    )
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout(preset),
            delta=delta,
            cache_size=cache_size,
            policy=policy,
            noise=noise,
            offset=offset,
            num_requests=num_requests,
            seed=seed,
            label=f"{figure} {preset} Δ={delta} noise={noise:.0%}",
        )
        for noise in noises
        for delta in deltas
    ]
    means = [
        result.mean_response_time
        for result in sweep_results(configs, engine=engine, jobs=jobs,
                                profile=profile, monitors=monitors)
    ]
    for position, noise in enumerate(noises):
        start = position * len(deltas)
        data.add_series(
            f"Noise {noise:.0%}", means[start:start + len(deltas)]
        )
    return data


def figure6(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    deltas: Sequence[int] = DELTA_RANGE,
    noises: Sequence[float] = NOISE_LEVELS,
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """Noise sensitivity of D3⟨2500,2500⟩ with no cache.

    Expected shape: noise erodes the multi-disk benefit; at high noise
    the skewed configurations cross above the flat disk's 2500 bu.
    """
    return _noise_sensitivity(
        "Figure 6", "D3", 1, "LRU", 0, num_requests, seed, deltas, noises,
        jobs=jobs, engine=engine, profile=profile, monitors=monitors,
    )


def figure7(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    deltas: Sequence[int] = DELTA_RANGE,
    noises: Sequence[float] = NOISE_LEVELS,
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """Noise sensitivity of D5⟨500,2000,2500⟩ with no cache."""
    return _noise_sensitivity(
        "Figure 7", "D5", 1, "LRU", 0, num_requests, seed, deltas, noises,
        jobs=jobs, engine=engine, profile=profile, monitors=monitors,
    )


# ---------------------------------------------------------------------------
# Experiment 3 — Figure 8: the idealised P policy under noise
# Experiment 4 — Figure 9: PIX under noise
# ---------------------------------------------------------------------------

def figure8(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    deltas: Sequence[int] = DELTA_RANGE,
    noises: Sequence[float] = NOISE_LEVELS,
    cache_size: int = 500,
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """P policy, D5, CacheSize=Offset=500, noise sweep.

    Expected shape: absolute response times drop versus Figure 7, but P
    is *more* sensitive to noise — its high-noise curves cross the flat
    disk for Δ>2 (its misses land on slow disks).
    """
    return _noise_sensitivity(
        "Figure 8", "D5", cache_size, "P", cache_size,
        num_requests, seed, deltas, noises, jobs=jobs, engine=engine, profile=profile, monitors=monitors,
    )


def figure9(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    deltas: Sequence[int] = DELTA_RANGE,
    noises: Sequence[float] = NOISE_LEVELS,
    cache_size: int = 500,
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """PIX policy, same setting as Figure 8.

    Expected shape: PIX stays below the flat-disk reference for every
    noise level and Δ in the studied range, and is stable as Δ grows.
    """
    return _noise_sensitivity(
        "Figure 9", "D5", cache_size, "PIX", cache_size,
        num_requests, seed, deltas, noises, jobs=jobs, engine=engine, profile=profile, monitors=monitors,
    )


# ---------------------------------------------------------------------------
# Figure 10: P vs PIX vs noise at delta 3 and 5, flat baseline
# ---------------------------------------------------------------------------

def figure10(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    noises: Sequence[float] = NOISE_LEVELS,
    deltas: Sequence[int] = (3, 5),
    cache_size: int = 500,
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """P vs PIX with varying noise (D5, CacheSize=500, Offset=500).

    Expected shape: P degrades faster and crosses the flat baseline near
    Noise≈45%; PIX rises gently and stays below flat throughout.
    """
    data = FigureData(
        figure="Figure 10",
        title="P vs PIX with varying noise — Disk D5, CacheSize=500",
        x_label="noise",
        x_values=[f"{n:.0%}" for n in noises],
    )
    curves = [
        (policy, delta) for policy in ("P", "PIX") for delta in deltas
    ]
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=delta,
            cache_size=cache_size,
            policy=policy,
            noise=noise,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
            label=f"F10 {policy} Δ={delta} noise={noise:.0%}",
        )
        for policy, delta in curves
        for noise in noises
    ]
    # Flat-disk baseline (Δ=0): frequency is uniform, so P and PIX
    # coincide (paper footnote 6); noise has no effect on a flat disk.
    configs.append(
        ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=0,
            cache_size=cache_size,
            policy="P",
            noise=0.0,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
            label="F10 flat",
        )
    )
    means = [
        result.mean_response_time
        for result in sweep_results(configs, engine=engine, jobs=jobs,
                                profile=profile, monitors=monitors)
    ]
    for position, (policy, delta) in enumerate(curves):
        start = position * len(noises)
        data.add_series(
            f"{policy} Δ={delta}", means[start:start + len(noises)]
        )
    data.add_series("Flat Δ=0", [means[-1]] * len(noises))
    return data


# ---------------------------------------------------------------------------
# Figure 11: where P and PIX get their pages from
# ---------------------------------------------------------------------------

def figure11(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    cache_size: int = 500,
    noise: float = 0.30,
    delta: int = 3,
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """Access locations (cache, disk 1..3) for P vs PIX.

    D5, CacheSize=500, Noise=30%, Δ=3.  Expected shape: P has the higher
    cache hit rate, but PIX takes fewer pages from the slowest disk —
    the trade that wins it the response-time comparison.
    """
    locations = ["cache", "disk1", "disk2", "disk3"]
    data = FigureData(
        figure="Figure 11",
        title="Access locations for P vs PIX — D5, CacheSize=500, "
        f"Noise={noise:.0%}, Δ={delta}",
        x_label="location",
        x_values=locations,
    )
    policies = ("P", "PIX")
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=delta,
            cache_size=cache_size,
            policy=policy,
            noise=noise,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
            label=f"F11 {policy}",
        )
        for policy in policies
    ]
    results = sweep_results(configs, engine=engine, jobs=jobs,
                                profile=profile, monitors=monitors)
    for policy, result in zip(policies, results):
        data.add_series(
            policy,
            [result.access_locations.get(place, 0.0) for place in locations],
        )
    return data


# ---------------------------------------------------------------------------
# Experiment 5 — Figures 13, 14, 15: the implementable policies
# ---------------------------------------------------------------------------

def figure13(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    deltas: Sequence[int] = DELTA_RANGE,
    cache_size: int = 500,
    noise: float = 0.30,
    policies: Sequence[str] = ("LRU", "L", "LIX", "PIX"),
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """LRU vs L vs LIX (vs the PIX ideal) across Δ.

    D5, CacheSize=Offset=500, Noise=30%.  Expected shape: LRU worst and
    degrading with Δ; L better at small Δ then degrading; LIX a fraction
    (roughly 25-50%) of L's response time; PIX slightly below LIX.
    """
    data = FigureData(
        figure="Figure 13",
        title=f"Sensitivity to Δ — D5, CacheSize={cache_size}, Noise={noise:.0%}",
        x_label="delta",
        x_values=list(deltas),
    )
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=delta,
            cache_size=cache_size,
            policy=policy,
            noise=noise,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
            label=f"F13 {policy} Δ={delta}",
        )
        for policy in policies
        for delta in deltas
    ]
    means = [
        result.mean_response_time
        for result in sweep_results(configs, engine=engine, jobs=jobs,
                                profile=profile, monitors=monitors)
    ]
    for position, policy in enumerate(policies):
        start = position * len(deltas)
        data.add_series(policy, means[start:start + len(deltas)])
    return data


def figure14(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    cache_size: int = 500,
    noise: float = 0.30,
    delta: int = 3,
    policies: Sequence[str] = ("LRU", "L", "LIX"),
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """Access locations for the implementable policies (Δ=3, Noise=30%).

    Expected shape: similar cache hit rates, but LIX obtains a much
    smaller share of its pages from the slowest disk.
    """
    locations = ["cache", "disk1", "disk2", "disk3"]
    data = FigureData(
        figure="Figure 14",
        title="Page access locations — D5, CacheSize=500, "
        f"Noise={noise:.0%}, Δ={delta}",
        x_label="location",
        x_values=locations,
    )
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=delta,
            cache_size=cache_size,
            policy=policy,
            noise=noise,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
            label=f"F14 {policy}",
        )
        for policy in policies
    ]
    results = sweep_results(configs, engine=engine, jobs=jobs,
                                profile=profile, monitors=monitors)
    for policy, result in zip(policies, results):
        data.add_series(
            policy,
            [result.access_locations.get(place, 0.0) for place in locations],
        )
    return data


def figure15(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    noises: Sequence[float] = NOISE_LEVELS,
    cache_size: int = 500,
    delta: int = 3,
    policies: Sequence[str] = ("LRU", "L", "LIX"),
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """LRU vs L vs LIX with varying noise at Δ=3.

    Expected shape: L only somewhat better than LRU; LIX degrades with
    noise but beats both across the whole range.
    """
    data = FigureData(
        figure="Figure 15",
        title=f"Noise sensitivity — D5, CacheSize={cache_size}, Δ={delta}",
        x_label="noise",
        x_values=[f"{n:.0%}" for n in noises],
    )
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=delta,
            cache_size=cache_size,
            policy=policy,
            noise=noise,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
            label=f"F15 {policy} noise={noise:.0%}",
        )
        for policy in policies
        for noise in noises
    ]
    means = [
        result.mean_response_time
        for result in sweep_results(configs, engine=engine, jobs=jobs,
                                profile=profile, monitors=monitors)
    ]
    for position, policy in enumerate(policies):
        start = position * len(noises)
        data.add_series(policy, means[start:start + len(noises)])
    return data


# ---------------------------------------------------------------------------
# Extension studies (DESIGN.md §6)
# ---------------------------------------------------------------------------

def bus_stop_paradox(
    *, seed: int = 42,
    random_trials: int = 16,
) -> FigureData:
    """Flat vs skewed vs random vs multidisk on a small skewed workload.

    Quantifies §2.1's argument: for the same bandwidth allocation, the
    fixed-inter-arrival multidisk program beats both the clustered
    skewed program and the randomised program.
    """
    from repro.sim.rng import RandomStreams
    from repro.workload.zipf import ZipfRegionDistribution

    # Δ=1 keeps the cold majority cheap enough that the multidisk program
    # beats flat under this whole-database Zipf access pattern.
    layout = DiskLayout.from_delta((10, 30, 60), delta=1)
    distribution = ZipfRegionDistribution(
        access_range=100, region_size=10, theta=1.20
    )
    probabilities = distribution.probability_map()
    rng = RandomStreams(seed).stream("figures.bus_stop_paradox")
    comparison = program_comparison(
        layout, probabilities, rng=rng, random_trials=random_trials
    )
    order = ["flat", "skewed", "random", "multidisk"]
    data = FigureData(
        figure="Extension: Bus Stop Paradox",
        title="Expected delay by program type — layout ⟨10,30,60⟩ Δ=1",
        x_label="program",
        x_values=order,
        notes=f"sqrt-rule lower bound: {sqrt_rule_lower_bound(probabilities):.2f} bu",
    )
    data.add_series(
        "expected delay", [comparison[name] for name in order]
    )
    return data


def shaping_ablation(
    *, num_requests: int = 5_000,
    seed: int = 42,
    max_disks: int = 3,
) -> FigureData:
    """Optimiser-chosen layout vs the paper's D1-D5 presets.

    The analytic optimum is validated by simulation at Noise=0,
    CacheSize=1 (the setting where the analytic model is exact).
    """
    distribution = ExperimentConfig().build_distribution()
    probabilities = distribution.probability_map()
    shaped = optimize_layout(
        probabilities, total_pages=5000, max_disks=max_disks
    )
    presets = {
        name: DiskLayout.from_delta(sizes, 3)
        for name, sizes in DISK_PRESETS.items()
    }
    analytic = compare_presets(presets, probabilities)

    names = [*analytic, "optimised"]
    analytic_values = [*analytic.values(), shaped.expected_delay]
    simulated_values = []
    for name in names:
        layout = presets.get(name) or shaped.layout
        config = ExperimentConfig(
            disk_sizes=layout.sizes,
            rel_freqs=layout.rel_freqs,
            cache_size=1,
            num_requests=num_requests,
            seed=seed,
            label=f"shaping {name}",
        )
        simulated_values.append(run_experiment(config).mean_response_time)
    data = FigureData(
        figure="Extension: Broadcast shaping",
        title="Analytic vs simulated expected delay per layout (Δ=3 presets)",
        x_label="layout",
        x_values=names,
        notes=(
            f"optimised layout {shaped.layout.describe()} Δ={shaped.delta}, "
            f"lower bound {shaped.lower_bound:.0f} bu, "
            f"{shaped.evaluated} candidates evaluated"
        ),
    )
    data.add_series("analytic", analytic_values)
    data.add_series("simulated", simulated_values)
    return data


def prefetch_comparison(
    *, num_requests: int = 3_000,
    seed: int = 42,
    cache_size: int = 500,
    deltas: Sequence[int] = (0, 1, 2, 3, 4, 5),
    noise: float = 0.30,
) -> FigureData:
    """Demand-driven LIX/PIX vs the PT prefetcher (D5, Noise=30%).

    Expected shape: prefetching dominates demand fetching — the cache is
    upgraded for free as pages go by, so response time drops further.
    """
    from repro.client.prefetch import PrefetchEngine
    from repro.workload.trace import generate_trace

    data = FigureData(
        figure="Extension: Prefetching",
        title=f"Demand vs PT prefetch — D5, CacheSize={cache_size}, "
        f"Noise={noise:.0%}",
        x_label="delta",
        x_values=list(deltas),
    )
    for policy in ("LIX", "PIX"):
        responses = []
        for delta in deltas:
            config = ExperimentConfig(
                disk_sizes=_preset_layout("D5"),
                delta=delta,
                cache_size=cache_size,
                policy=policy,
                noise=noise,
                offset=cache_size,
                num_requests=num_requests,
                seed=seed,
                label=f"prefetch-cmp {policy} Δ={delta}",
            )
            responses.append(run_experiment(config).mean_response_time)
        data.add_series(f"demand {policy}", responses)

    responses = []
    for delta in deltas:
        config = ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=delta,
            cache_size=cache_size,
            noise=noise,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
        )
        layout = config.build_layout()
        schedule = config.build_schedule(layout)
        streams = config.build_streams()
        mapping = config.build_mapping(layout, streams)
        distribution = config.build_distribution()
        probabilities = distribution.probabilities()

        def probability(page: int, _probs=probabilities) -> float:
            return float(_probs[page]) if 0 <= page < len(_probs) else 0.0

        engine = PrefetchEngine(
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            probability=probability,
            cache_capacity=cache_size,
            think_time=config.think_time,
        )
        # Same steady-state protocol as the demand policies: warm up for
        # as long as we measure.
        trace = generate_trace(
            distribution, 2 * num_requests, streams.stream("requests")
        )
        outcome = engine.run_trace(trace, warmup_requests=num_requests)
        responses.append(outcome.response.mean)
    data.add_series("PT prefetch", responses)
    return data


def policy_zoo(
    *, num_requests: int = 5_000,
    seed: int = 42,
    cache_size: int = 500,
    delta: int = 3,
    noise: float = 0.30,
    policies: Sequence[str] = ("LRU", "LRU-K", "2Q", "L", "LIX", "PIX", "P"),
) -> FigureData:
    """All implemented policies head-to-head at the Figure 13 design point.

    Measures §5.5's conjecture that LRU-K/2Q-style recency improvements
    do not close the gap to LIX without the frequency term.
    """
    data = FigureData(
        figure="Extension: Policy zoo",
        title=f"All policies — D5, CacheSize={cache_size}, Δ={delta}, "
        f"Noise={noise:.0%}",
        x_label="policy",
        x_values=list(policies),
    )
    responses = []
    hit_rates = []
    for policy in policies:
        config = ExperimentConfig(
            disk_sizes=_preset_layout("D5"),
            delta=delta,
            cache_size=cache_size,
            policy=policy,
            noise=noise,
            offset=cache_size,
            num_requests=num_requests,
            seed=seed,
            label=f"zoo {policy}",
        )
        result = run_experiment(config)
        responses.append(result.mean_response_time)
        hit_rates.append(result.hit_rate)
    data.add_series("response time", responses)
    data.add_series("hit rate", hit_rates)
    return data


def indexing_tradeoff(
    *, num_data_buckets: int = 1000,
    fanout: int = 8,
    ms: Sequence[int] = (1, 2, 3, 4, 6, 8, 12),
    probes: int = 2_000,
    seed: int = 42,
) -> FigureData:
    """Access-time / tuning-time tradeoff of (1, m) indexing on air.

    The paper broadcasts self-identifying pages, making tuning time equal
    access time; §6/§7 point at [Imie94b]-style indexing as the fix.
    This study sweeps the index replication factor m and reports both
    metrics (simulated), with the no-index carousel as baseline and the
    analytic model alongside.
    """
    from repro.index.analysis import (
        no_index_expectations,
        one_m_expectations,
        optimal_m,
    )
    from repro.index.client import TuningClient
    from repro.index.onem import build_one_m_broadcast

    from repro.sim.rng import RandomStreams

    keys = list(range(num_data_buckets))
    rng = RandomStreams(seed).stream("figures.indexing_tradeoff")
    access_sim, tuning_sim, access_analytic = [], [], []
    for m in ms:
        broadcast = build_one_m_broadcast(keys, m=m, fanout=fanout)
        client = TuningClient(broadcast)
        starts = rng.integers(0, broadcast.cycle_length, size=probes)
        targets = rng.choice(keys, size=probes)
        stats = client.measure(targets, starts)
        expectations = one_m_expectations(num_data_buckets, m, fanout)
        access_sim.append(stats.mean_access_time)
        tuning_sim.append(stats.mean_tuning_time)
        access_analytic.append(expectations["access"])
    flat = no_index_expectations(num_data_buckets)
    data = FigureData(
        figure="Extension: Indexing on air",
        title=f"(1, m) indexing — {num_data_buckets} data buckets, "
        f"fanout {fanout}",
        x_label="m",
        x_values=list(ms),
        notes=(
            f"no-index baseline: access = tuning = {flat['access']:.0f}; "
            f"analytic optimum m* = {optimal_m(num_data_buckets, fanout)}"
        ),
    )
    data.add_series("access (sim)", access_sim)
    data.add_series("access (analytic)", access_analytic)
    data.add_series("tuning (sim)", tuning_sim)
    return data


def volatility_study(
    *, num_requests: int = 5_000,
    seed: int = 42,
    update_intervals: Sequence[float] = (
        10_000_000, 3_000_000, 1_000_000, 300_000, 100_000,
    ),
    report_interval: float = 1_000.0,
    cache_size: int = 500,
    delta: int = 3,
) -> FigureData:
    """Stale reads vs update rate, with and without invalidation reports.

    The §7 what-if: broadcast data now changes over time (periodic
    per-page updates with random phase; intervals are sized against the
    experiment's ~3M-broadcast-unit span, so the sweep covers "pages
    update ~0.3x to ~30x per run").  Without invalidation, cached copies
    silently go stale as volatility rises; listening to a periodic
    invalidation report (one slot per ``report_interval``) bounds
    staleness to the report window at the cost of re-fetching
    invalidated pages.
    """
    import numpy as np

    from repro.updates.engine import VolatileEngine
    from repro.updates.process import PeriodicUpdateModel
    from repro.workload.trace import generate_trace

    base = ExperimentConfig(
        disk_sizes=_preset_layout("D5"),
        delta=delta,
        cache_size=cache_size,
        policy="LIX",
        offset=cache_size,
        num_requests=num_requests,
        seed=seed,
    )
    layout = base.build_layout()
    schedule = base.build_schedule(layout)

    stale_without, stale_with = [], []
    response_without, response_with = [], []
    for interval in update_intervals:
        for with_reports in (False, True):
            streams = base.build_streams()
            mapping = base.build_mapping(layout, streams)
            distribution = base.build_distribution()
            cache = base.build_policy(schedule, mapping, distribution, layout)
            updates = PeriodicUpdateModel.uniform(
                interval,
                layout.total_pages,
                rng=streams.stream("updates"),
            )
            engine = VolatileEngine(
                schedule=schedule,
                mapping=mapping,
                layout=layout,
                cache=cache,
                updates=updates,
                think_time=base.think_time,
                report_interval=report_interval if with_reports else None,
            )
            trace = generate_trace(
                distribution, 2 * num_requests, streams.stream("requests")
            )
            outcome = engine.run_trace(trace, warmup_requests=num_requests)
            if with_reports:
                stale_with.append(outcome.stale_fraction)
                response_with.append(outcome.mean_response_time)
            else:
                stale_without.append(outcome.stale_fraction)
                response_without.append(outcome.mean_response_time)

    data = FigureData(
        figure="Extension: Volatile data",
        title=(
            f"Staleness vs update interval — D5 Δ={delta}, LIX cache "
            f"{cache_size}, reports every {report_interval:.0f} bu"
        ),
        x_label="update interval (bu)",
        x_values=[f"{interval:.0f}" for interval in update_intervals],
    )
    data.add_series("stale frac (no reports)", stale_without)
    data.add_series("stale frac (reports)", stale_with)
    data.add_series("response (no reports)", response_without)
    data.add_series("response (reports)", response_with)
    return data


def indexed_multidisk_study(
    *, seed: int = 42,
    probes: int = 3_000,
) -> FigureData:
    """Indexing the multilevel disk (§7) vs indexing a flat carousel.

    Same database (500 pages), same client workload (Zipf over the
    hottest 100), same dispatch tree; the multidisk variant repeats hot
    pages per the ⟨50,200,250⟩ Δ=4 program and replicates the index to
    match the flat variant's segment spacing.  Expected: identical
    tuning (the tree depth), substantially lower access for the skewed
    workload — the broadcast-disk effect survives the index detour.
    """
    from repro.core.programs import _flat_program, _multidisk_program
    from repro.index.client import TuningClient
    from repro.index.integrate import index_schedule
    from repro.sim.rng import RandomStreams
    from repro.workload.zipf import ZipfRegionDistribution

    layout = DiskLayout.from_delta((50, 200, 250), delta=4)
    variants = {
        "flat + (1,3) index": index_schedule(_flat_program(500), m=3, fanout=8),
        "multidisk + (1,8) index": index_schedule(
            _multidisk_program(layout), m=8, fanout=8
        ),
    }
    distribution = ZipfRegionDistribution(100, 10, 0.95)
    rng = RandomStreams(seed).stream("figures.indexed_multidisk_study")
    targets = distribution.sample(rng, probes)

    names = list(variants)
    access, tuning, cycle = [], [], []
    for name in names:
        broadcast = variants[name]
        starts = rng.integers(0, broadcast.cycle_length, size=probes)
        stats = TuningClient(broadcast).measure(targets, starts)
        access.append(stats.mean_access_time)
        tuning.append(stats.mean_tuning_time)
        cycle.append(float(broadcast.cycle_length))

    data = FigureData(
        figure="Extension: Indexed multidisk",
        title="Index + multilevel disk integration — 500 pages, "
        "Zipf access over the hottest 100",
        x_label="organisation",
        x_values=names,
    )
    data.add_series("access (bu)", access)
    data.add_series("tuning (bu)", tuning)
    data.add_series("cycle length", cycle)
    return data


def drift_study(
    *, num_requests: int = 10_000,
    seed: int = 42,
    rotations_values: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    policies: Sequence[str] = ("PIX", "P", "LIX", "LRU"),
    cache_size: int = 500,
    delta: int = 3,
    noise: float = 0.30,
) -> FigureData:
    """Stale oracles vs adaptive estimates under workload drift (§3).

    The client's hotspot rotates through the access range ``rotations``
    times over the run, but the broadcast and the idealised policies'
    probability oracle stay frozen at the t=0 snapshot (30% noise keeps
    P and PIX distinguishable).  Expected: everyone loses to drift; the
    frozen *probability* signal decays with drift while the frequency
    (cost) signal never does — so P falls furthest, PIX's cost half
    keeps it afloat, and LIX's online estimator tracks PIX far more
    closely than it does at zero drift.
    """
    from repro.cache.base import PolicyContext
    from repro.cache.registry import make_policy
    from repro.experiments.engine import FastEngine
    from repro.workload.drift import DriftingZipfDistribution

    base = ExperimentConfig(
        disk_sizes=_preset_layout("D5"),
        delta=delta,
        cache_size=cache_size,
        offset=cache_size,
        noise=noise,
        num_requests=num_requests,
        seed=seed,
    )
    layout = base.build_layout()
    schedule = base.build_schedule(layout)
    horizon = 3 * num_requests  # warm-up + measurement span

    data = FigureData(
        figure="Extension: Workload drift",
        title=(
            f"Hotspot drift — D5 Δ={delta}, cache {cache_size}, "
            f"noise {noise:.0%}, frozen t=0 oracle for P/PIX"
        ),
        x_label="rotations per run",
        x_values=list(rotations_values),
    )
    for policy_name in policies:
        responses = []
        for rotations in rotations_values:
            streams = base.build_streams()
            mapping = base.build_mapping(layout, streams)
            drifting = DriftingZipfDistribution(
                access_range=base.access_range,
                region_size=base.region_size,
                theta=base.theta,
                horizon=horizon,
                rotations=rotations,
            )
            snapshot = drifting.initial_snapshot()
            context = PolicyContext(
                probability=lambda page, _snap=snapshot: (
                    float(_snap[page]) if page < len(_snap) else 0.0
                ),
                frequency=lambda page: schedule.frequency(
                    mapping.to_physical(page)
                ),
                disk_of=lambda page: layout.disk_of_page(
                    mapping.to_physical(page)
                ),
                num_disks=layout.num_disks,
            )
            cache = make_policy(policy_name, cache_size, context)
            engine = FastEngine(
                schedule=schedule,
                mapping=mapping,
                layout=layout,
                cache=cache,
                think_time=base.think_time,
            )
            trace = drifting.generate_trace(horizon, streams.stream("requests"))
            outcome = engine.run_trace(
                trace, warmup_requests=2 * num_requests
            )
            responses.append(outcome.response.mean)
        data.add_series(policy_name, responses)
    return data


def query_study(
    *, seed: int = 42,
    query_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    trials: int = 800,
    num_pages: int = 500,
) -> FigureData:
    """Broadcast-aware query processing (§7's last future-work item).

    A query needs k pages; the pull-style executor fetches them one at a
    time while the broadcast-native one harvests them in arrival order.
    Expected: opportunistic makespan stays under one cycle and the
    speedup over sequential grows as (k+1)/2 on the flat disk, matching
    the closed form.
    """
    from repro.core.programs import _flat_program
    from repro.query.analysis import opportunistic_expected_makespan_flat
    from repro.sim.rng import RandomStreams
    from repro.query.engine import fetch_opportunistic, fetch_sequential
    from repro.workload.mapping import LogicalPhysicalMapping

    layout = DiskLayout.flat(num_pages)
    schedule = _flat_program(num_pages)
    mapping = LogicalPhysicalMapping(layout)
    rng = RandomStreams(seed).stream("figures.query_study")

    sequential, opportunistic, analytic = [], [], []
    for k in query_sizes:
        seq_total = 0.0
        opp_total = 0.0
        for _trial in range(trials):
            pages = rng.choice(num_pages, size=k, replace=False)
            start = float(rng.uniform(0, num_pages))
            seq_total += fetch_sequential(
                schedule, mapping, pages, start
            ).makespan
            opp_total += fetch_opportunistic(
                schedule, mapping, pages, start
            ).makespan
        sequential.append(seq_total / trials)
        opportunistic.append(opp_total / trials)
        analytic.append(opportunistic_expected_makespan_flat(num_pages, k))

    data = FigureData(
        figure="Extension: Query processing",
        title=f"k-page retrieval on a flat {num_pages}-page broadcast",
        x_label="query size k",
        x_values=list(query_sizes),
    )
    data.add_series("sequential", sequential)
    data.add_series("opportunistic", opportunistic)
    data.add_series("opportunistic (analytic)", analytic)
    return data


def multichannel_study(
    *, num_requests: int = PAPER_REQUESTS,
    seed: int = 42,
    deltas: Sequence[int] = DELTA_RANGE,
    channel_counts: Sequence[int] = (1, 2, 4),
    preset: str = "D5",
    retune_cost: float = 1.0,
    jobs: int = 1,
    engine: str = "fast",
    profile=None,
    monitors=None,
) -> FigureData:
    """Response time and retune rate vs Δ for C parallel channels.

    The Figure-5 protocol (CacheSize=1, Noise=0%, Offset=0) run with the
    server's bandwidth split across C broadcast channels and a
    single-frequency client tuner paying ``retune_cost`` per switch.
    Expected shape: splitting shortens each channel's cycle, so C=2 and
    C=4 sit strictly below the C=1 curve at every Δ; the retune rate
    (retunes per measured request) rises with C and caps at the miss
    rate — a tuner only switches to chase a cache miss.
    """
    data = FigureData(
        figure="Extension: Multi-channel broadcast",
        title=(
            f"Multi-channel performance — Disk {preset}"
            f"<{','.join(str(s) for s in _preset_layout(preset))}>, "
            f"CacheSize=1, retune cost {retune_cost:g}"
        ),
        x_label="delta",
        x_values=list(deltas),
        notes=(
            "Per-channel slot rate is 1/C of the single-channel rate; "
            "retune rate = measured retunes / measured requests."
        ),
    )
    configs = [
        ExperimentConfig(
            disk_sizes=_preset_layout(preset),
            delta=delta,
            cache_size=1,
            noise=0.0,
            offset=0,
            num_requests=num_requests,
            seed=seed,
            channels=channels,
            retune_cost=retune_cost,
            label=f"MC {preset} Δ={delta} C={channels}",
        )
        for channels in channel_counts
        for delta in deltas
    ]
    results = sweep_results(configs, engine=engine, jobs=jobs,
                            profile=profile, monitors=monitors)
    for position, channels in enumerate(channel_counts):
        start = position * len(deltas)
        block = results[start:start + len(deltas)]
        data.add_series(
            f"C={channels}", [r.mean_response_time for r in block]
        )
        data.add_series(
            f"C={channels} retunes/req",
            [r.retunes / r.measured_requests for r in block],
        )
        data.add_series(
            f"C={channels} miss rate",
            [1.0 - r.hit_rate for r in block],
        )
    return data
