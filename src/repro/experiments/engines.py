"""The engine registry: one authoritative table of simulation engines.

Engine choice used to be a pair of magic strings (``"fast"`` /
``"process"``) compared in ``if`` chains scattered over the plan layer,
the runner, and the CLI.  This module replaces the strings with
registered :class:`EngineSpec` entries, so

* validation happens in one place and every rejection lists the valid
  names (``ConfigurationError``);
* the plan layer dispatches through the spec's ``run_plan`` callable
  instead of string-matching;
* engines that do *not* execute :class:`~repro.exec.plan.RunPlan`
  objects — the hybrid push/pull channel and the multi-page query
  studies — are registered alongside, so ``get_engine("hybrid")``
  resolves to its study entry point rather than failing as a typo.

The four built-ins register at import time; extensions call
:func:`register_engine` with their own spec.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EngineSpec:
    """One registered simulation engine.

    ``run_plan`` is the executor-side entry point for plan-capable
    engines: it receives the plan plus the pre-built components and
    returns an :class:`~repro.experiments.engine.EngineOutcome`.
    Study engines leave it ``None`` and carry a ``study`` entry point
    (``"module:callable"``) instead.
    """

    name: str
    summary: str
    executes_plans: bool
    run_plan: Optional[Callable] = field(default=None, compare=False)
    study: Optional[str] = None

    def resolve_study(self) -> Callable:
        """Import and return the study entry point for a study engine."""
        if self.study is None:
            raise ConfigurationError(
                f"engine {self.name!r} has no study entry point"
            )
        module_name, _, attribute = self.study.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, attribute)


_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add ``spec`` to the registry; re-registering a name is an error."""
    if spec.name in _REGISTRY and _REGISTRY[spec.name] != spec:
        raise ConfigurationError(
            f"engine {spec.name!r} is already registered"
        )
    if spec.executes_plans and spec.run_plan is None:
        raise ConfigurationError(
            f"plan engine {spec.name!r} needs a run_plan callable"
        )
    _REGISTRY[spec.name] = spec
    return spec


def engine_names() -> Tuple[str, ...]:
    """Every registered engine name, sorted."""
    return tuple(sorted(_REGISTRY))


def plan_engine_names() -> Tuple[str, ...]:
    """Names of the engines that can execute a RunPlan, sorted."""
    return tuple(
        sorted(name for name, spec in _REGISTRY.items()
               if spec.executes_plans)
    )


def get_engine(name: str) -> EngineSpec:
    """The spec registered under ``name``; unknown names list the valid set."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown engine {name!r}; valid engines: "
            f"{', '.join(engine_names())}"
        )
    return spec


def get_plan_engine(name: str) -> EngineSpec:
    """Like :func:`get_engine`, but the engine must execute RunPlans."""
    spec = get_engine(name)
    if not spec.executes_plans:
        raise ConfigurationError(
            f"engine {name!r} does not execute RunPlans (it is a study "
            f"engine: {spec.study}); plan-capable engines: "
            f"{', '.join(plan_engine_names())}"
        )
    return spec


# ---------------------------------------------------------------------------
# Built-in engines
# ---------------------------------------------------------------------------

def _run_plan_fast(plan, *, config, schedule, mapping, layout, cache, trace,
                   tracer=None, profile=None, channels=1, retune_cost=1.0):
    """Drive the analytic-stepping engine for one plan.

    ``channels``/``retune_cost`` arrive keyword-only from the plan
    executor; ``schedule`` is already the built single-channel schedule
    or C-row program, so ``channels`` is advisory here and
    ``retune_cost`` parameterises the engine's tuner.
    """
    from repro.experiments.engine import FastEngine

    fast = FastEngine(
        schedule=schedule,
        mapping=mapping,
        layout=layout,
        cache=cache,
        think_time=config.think_time,
        tracer=tracer,
        profile=profile,
        retune_cost=retune_cost,
    )
    return fast.run_trace(
        trace,
        warmup_requests=config.warmup_requests,
        collect_responses=plan.collect_responses,
        extra_warmup=config.extra_warmup,
    )


def _run_plan_fast_reference(plan, *, config, schedule, mapping, layout,
                             cache, trace, tracer=None, profile=None,
                             channels=1, retune_cost=1.0):
    """Drive the frozen pre-optimisation fast loop for one plan.

    Same engine object as ``fast`` but through
    :meth:`~repro.experiments.engine.FastEngine.run_trace_reference`:
    the original single general-purpose loop with bisection arithmetic.
    ``benchmarks/bench_engine.py`` runs it as the baseline arm of the
    byte-identity perf gate.
    """
    from repro.experiments.engine import FastEngine

    fast = FastEngine(
        schedule=schedule,
        mapping=mapping,
        layout=layout,
        cache=cache,
        think_time=config.think_time,
        tracer=tracer,
        profile=profile,
        retune_cost=retune_cost,
    )
    return fast.run_trace_reference(
        trace,
        warmup_requests=config.warmup_requests,
        collect_responses=plan.collect_responses,
        extra_warmup=config.extra_warmup,
    )


def _run_plan_process(plan, *, config, schedule, mapping, layout, cache,
                      trace, tracer=None, profile=None, channels=1,
                      retune_cost=1.0):
    """Drive the process-oriented engine for one plan."""
    from repro.experiments.engine import EngineOutcome
    from repro.experiments.simengine import run_single_client

    report = run_single_client(
        schedule=schedule,
        layout=layout,
        mapping=mapping,
        cache=cache,
        trace=trace,
        think_time=config.think_time,
        warmup_requests=config.warmup_requests,
        collect_responses=plan.collect_responses,
        extra_warmup=config.extra_warmup,
        tracer=tracer,
        profile=profile,
        retune_cost=retune_cost,
    )
    return EngineOutcome(
        response=report.response,
        counters=report.counters,
        measured_requests=report.response.count,
        warmup_requests=report.warmup_requests,
        final_time=report.final_time,
        samples=report.samples,
        retunes=report.retunes,
    )


def _run_plan_batch(plan, *, config, schedule, mapping, layout, cache,
                    trace, tracer=None, profile=None, channels=1,
                    retune_cost=1.0):
    """Drive the columnar batch engine for a single plan (N == 1).

    Policies without a columnar formulation fall back to ``fast``; the
    single-client batch loop is byte-identical to it anyway (the
    vectorized tuner covers C-row programs too), so the choice never
    changes results, only the execution strategy.  The plan executor
    passes ``cache=None`` when it can predict the columnar path — the
    batch engine carries its own array-state policy — so the fallback
    rebuilds the scalar cache on demand.
    """
    from repro.batch.engine import build_columnar_engine

    engine = build_columnar_engine(
        config, schedule, layout, mapping.physical_array()[None, :], 1
    )
    if engine is None:
        if cache is None:
            from repro.cache.base import TracedCache

            cache = config.build_policy(
                schedule, mapping, config.build_distribution(), layout
            )
            if tracer is not None and tracer.enabled:
                cache = TracedCache(cache, tracer)
        return _run_plan_fast(
            plan, config=config, schedule=schedule, mapping=mapping,
            layout=layout, cache=cache, trace=trace, tracer=tracer,
            profile=profile, channels=channels, retune_cost=retune_cost,
        )
    outcome = engine.run(
        trace.pages[:, None],
        warmup_requests=config.warmup_requests,
        extra_warmup=config.extra_warmup,
        collect_responses=plan.collect_responses,
        tracer=tracer,
        profile=profile,
    )
    return outcome.to_engine_outcome(0)


register_engine(EngineSpec(
    name="fast",
    summary="analytic-stepping single-client engine (full-scale sweeps)",
    executes_plans=True,
    run_plan=_run_plan_fast,
))

register_engine(EngineSpec(
    name="fast-reference",
    summary="frozen pre-optimisation fast loop (perf-gate baseline)",
    executes_plans=True,
    run_plan=_run_plan_fast_reference,
))

register_engine(EngineSpec(
    name="process",
    summary="process-oriented discrete-event engine (CSIM substitute)",
    executes_plans=True,
    run_plan=_run_plan_process,
))

register_engine(EngineSpec(
    name="batch",
    summary="columnar lockstep engine (fleet-scale batches; "
            "single plans byte-match fast)",
    executes_plans=True,
    run_plan=_run_plan_batch,
))

register_engine(EngineSpec(
    name="hybrid",
    summary="hybrid push/pull channel population study",
    executes_plans=False,
    study="repro.hybrid.study:hybrid_population_study",
))

register_engine(EngineSpec(
    name="query",
    summary="multi-page retrieval (sequential vs opportunistic) study",
    executes_plans=False,
    study="repro.experiments.figures:query_study",
))

register_engine(EngineSpec(
    name="multichannel",
    summary="C-channel bandwidth split with single-frequency tuner study",
    executes_plans=False,
    study="repro.experiments.figures:multichannel_study",
))
