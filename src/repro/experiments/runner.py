"""Build-and-run glue: from an :class:`ExperimentConfig` to a result.

``run_experiment`` assembles the layout, schedule, mapping, workload,
trace, and cache policy a configuration describes, runs the chosen
engine, and returns an :class:`ExperimentResult` carrying the metrics
the paper reports (mean response time in broadcast units, cache hit
rate, per-location access fractions).

``sweep`` runs a family of configurations and tabulates one metric —
the building block every figure reproduction uses.

Observability (see :mod:`repro.obs` and ``docs/OBSERVABILITY.md``):
``run_experiment`` accepts a ``tracer`` (structured event records), a
``metrics`` registry (named counters/gauges snapshotted per run), and a
``manifest`` path (a JSON document pinning config hash, seed, schedule
and metric snapshot).  ``sweep``/``sweep_results`` add an optional
progress callback and sweep-manifest aggregation so bench scripts can
emit machine-readable trajectories.  All of it is pay-for-use: with
everything left at ``None`` the run is byte-identical to an unobserved
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.cache.base import TracedCache
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import EngineOutcome, FastEngine
from repro.obs.clock import perf_counter
from repro.obs.manifest import build_manifest, write_manifest, write_sweep_manifest
from repro.sim.stats import RunningStats
from repro.workload.trace import generate_trace

#: Extra requests drawn beyond the measured count so the warm-up phase
#: (cache fill) never exhausts the trace.  The cache needs at least
#: ``cache_size`` misses to fill; skew makes warm-up take longer, so the
#: allowance is generous and checked after the run.
_WARMUP_ALLOWANCE_FACTOR = 6


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    config: ExperimentConfig
    mean_response_time: float
    response_stats: RunningStats
    hit_rate: float
    access_locations: Dict[str, float]
    measured_requests: int
    warmup_requests: int
    schedule_period: int
    schedule_utilisation: float
    wall_seconds: float
    samples: Optional[List[float]] = None
    #: The run manifest dict, present when ``run_experiment`` was asked
    #: to write one (``manifest=...``).
    manifest: Optional[Dict] = None

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.config.describe()}: "
            f"response={self.mean_response_time:.1f} bu, "
            f"hit_rate={self.hit_rate:.1%}, "
            f"period={self.schedule_period}"
        )


def _warmup_trace_allowance(config: ExperimentConfig) -> int:
    """Requests to draw beyond the measured phase for cache warm-up."""
    if config.warmup_requests is not None:
        return config.warmup_requests
    if not config.has_cache:
        return 8  # a couple of requests fills the 1-page cache
    fill_allowance = max(2_000, _WARMUP_ALLOWANCE_FACTOR * config.cache_size)
    return fill_allowance + config.extra_warmup


def run_experiment(
    config: ExperimentConfig,
    engine: str = "fast",
    collect_responses: bool = False,
    tracer=None,
    metrics=None,
    manifest: Optional[str] = None,
) -> ExperimentResult:
    """Run one fully-specified experiment and return its measurements.

    ``tracer`` attaches a :class:`repro.obs.trace.Tracer` to the engine
    (and, for the process engine, the kernel and channel) and wraps the
    cache in a :class:`~repro.cache.base.TracedCache`.  ``metrics``
    fills a :class:`repro.obs.metrics.MetricsRegistry` with the run's
    headline counters and gauges.  ``manifest`` names a JSON file to
    write the run manifest to (also attached to the result).  All three
    default to off and leave the measured behaviour untouched.
    """
    started = perf_counter()
    layout = config.build_layout()
    schedule = config.build_schedule(layout)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    cache = config.build_policy(schedule, mapping, distribution, layout)

    tracing = tracer is not None and tracer.enabled
    if tracing:
        cache = TracedCache(cache, tracer)

    allowance = _warmup_trace_allowance(config)
    trace = generate_trace(
        distribution,
        config.num_requests + allowance,
        streams.stream("requests"),
    )

    if engine == "fast":
        fast = FastEngine(
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            cache=cache,
            think_time=config.think_time,
            tracer=tracer,
        )
        outcome = fast.run_trace(
            trace,
            warmup_requests=config.warmup_requests,
            collect_responses=collect_responses,
            extra_warmup=config.extra_warmup,
        )
    elif engine == "process":
        from repro.experiments.simengine import run_single_client

        report = run_single_client(
            schedule=schedule,
            layout=layout,
            mapping=mapping,
            cache=cache,
            trace=trace,
            think_time=config.think_time,
            warmup_requests=config.warmup_requests,
            collect_responses=collect_responses,
            extra_warmup=config.extra_warmup,
            tracer=tracer,
        )
        outcome = EngineOutcome(
            response=report.response,
            counters=report.counters,
            measured_requests=report.response.count,
            warmup_requests=report.warmup_requests,
            final_time=0.0,
            samples=report.samples,
        )
    else:
        raise ConfigurationError(
            f"unknown engine {engine!r}; use 'fast' or 'process'"
        )

    if outcome.measured_requests == 0:
        raise ConfigurationError(
            f"warm-up consumed the whole trace for {config.describe()}; "
            "increase num_requests or lower cache_size"
        )

    result = ExperimentResult(
        config=config,
        mean_response_time=outcome.response.mean,
        response_stats=outcome.response,
        hit_rate=outcome.counters.hit_rate,
        access_locations=outcome.counters.access_locations(layout.num_disks),
        measured_requests=outcome.measured_requests,
        warmup_requests=outcome.warmup_requests,
        schedule_period=schedule.period,
        schedule_utilisation=1.0 - schedule.empty_slots / schedule.period,
        wall_seconds=perf_counter() - started,
        samples=outcome.samples,
    )
    if metrics is not None:
        _record_metrics(metrics, result)
    if manifest is not None:
        result.manifest = build_manifest(result, metrics=metrics,
                                         tracer=tracer)
        write_manifest(result.manifest, manifest)
    return result


def _record_metrics(metrics, result: ExperimentResult) -> None:
    """Fold one run's headline measurements into a metrics registry."""
    counters = result.response_stats
    metrics.counter("requests.measured").inc(result.measured_requests)
    metrics.counter("requests.warmup").inc(result.warmup_requests)
    hits = round(result.hit_rate * result.measured_requests)
    metrics.counter("cache.hits").inc(hits)
    metrics.counter("cache.misses").inc(result.measured_requests - hits)
    metrics.gauge("response.mean").set(counters.mean)
    metrics.gauge("response.max").set(
        counters.maximum if counters.count else 0.0
    )
    metrics.gauge("schedule.period").set(float(result.schedule_period))
    metrics.gauge("schedule.utilisation").set(result.schedule_utilisation)
    metrics.counter("runs").inc()


#: Signature of the ``sweep`` progress callback:
#: ``progress(completed, total, result)`` after each configuration.
ProgressCallback = Callable[[int, int, ExperimentResult], None]


def sweep(
    configs: Iterable[ExperimentConfig],
    metric: Callable[[ExperimentResult], float] = (
        lambda result: result.mean_response_time
    ),
    engine: str = "fast",
    progress: Optional[ProgressCallback] = None,
    manifest: Optional[str] = None,
) -> List[float]:
    """Run every configuration; return ``metric`` of each, in order."""
    return [
        metric(result)
        for result in sweep_results(
            configs, engine=engine, progress=progress, manifest=manifest
        )
    ]


def sweep_results(
    configs: Iterable[ExperimentConfig],
    engine: str = "fast",
    progress: Optional[ProgressCallback] = None,
    manifest: Optional[str] = None,
    tracer=None,
    metrics=None,
) -> List[ExperimentResult]:
    """Run every configuration; return the full results, in order.

    ``progress(completed, total, result)`` fires after each run;
    ``manifest`` names a JSON file that receives the aggregated sweep
    manifest (one per-run record per configuration — the
    ``BENCH_*.json``-style trajectory).  ``tracer``/``metrics`` are
    forwarded to every :func:`run_experiment` call.
    """
    configs = list(configs)
    results: List[ExperimentResult] = []
    for index, config in enumerate(configs):
        result = run_experiment(
            config, engine=engine, tracer=tracer, metrics=metrics
        )
        results.append(result)
        if progress is not None:
            progress(index + 1, len(configs), result)
    if manifest is not None:
        write_sweep_manifest(results, manifest, metrics=metrics,
                             tracer=tracer)
    return results
