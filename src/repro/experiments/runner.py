"""Build-and-run glue: from an :class:`ExperimentConfig` to a result.

``run_experiment`` assembles the layout, schedule, mapping, workload,
trace, and cache policy a configuration describes, runs the chosen
engine, and returns an :class:`ExperimentResult` carrying the metrics
the paper reports (mean response time in broadcast units, cache hit
rate, per-location access fractions).

``sweep`` runs a family of configurations and tabulates one metric —
the building block every figure reproduction uses.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import EngineOutcome, FastEngine
from repro.sim.stats import RunningStats
from repro.workload.trace import generate_trace

#: Extra requests drawn beyond the measured count so the warm-up phase
#: (cache fill) never exhausts the trace.  The cache needs at least
#: ``cache_size`` misses to fill; skew makes warm-up take longer, so the
#: allowance is generous and checked after the run.
_WARMUP_ALLOWANCE_FACTOR = 6


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    config: ExperimentConfig
    mean_response_time: float
    response_stats: RunningStats
    hit_rate: float
    access_locations: Dict[str, float]
    measured_requests: int
    warmup_requests: int
    schedule_period: int
    schedule_utilisation: float
    wall_seconds: float
    samples: Optional[List[float]] = None

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.config.describe()}: "
            f"response={self.mean_response_time:.1f} bu, "
            f"hit_rate={self.hit_rate:.1%}, "
            f"period={self.schedule_period}"
        )


def _warmup_trace_allowance(config: ExperimentConfig) -> int:
    """Requests to draw beyond the measured phase for cache warm-up."""
    if config.warmup_requests is not None:
        return config.warmup_requests
    if not config.has_cache:
        return 8  # a couple of requests fills the 1-page cache
    fill_allowance = max(2_000, _WARMUP_ALLOWANCE_FACTOR * config.cache_size)
    return fill_allowance + config.extra_warmup


def run_experiment(
    config: ExperimentConfig,
    engine: str = "fast",
    collect_responses: bool = False,
) -> ExperimentResult:
    """Run one fully-specified experiment and return its measurements."""
    started = _time.perf_counter()
    layout = config.build_layout()
    schedule = config.build_schedule(layout)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    cache = config.build_policy(schedule, mapping, distribution, layout)

    allowance = _warmup_trace_allowance(config)
    trace = generate_trace(
        distribution,
        config.num_requests + allowance,
        streams.stream("requests"),
    )

    if engine == "fast":
        fast = FastEngine(
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            cache=cache,
            think_time=config.think_time,
        )
        outcome = fast.run_trace(
            trace,
            warmup_requests=config.warmup_requests,
            collect_responses=collect_responses,
            extra_warmup=config.extra_warmup,
        )
    elif engine == "process":
        from repro.experiments.simengine import run_single_client

        report = run_single_client(
            schedule=schedule,
            layout=layout,
            mapping=mapping,
            cache=cache,
            trace=trace,
            think_time=config.think_time,
            warmup_requests=config.warmup_requests,
            collect_responses=collect_responses,
            extra_warmup=config.extra_warmup,
        )
        outcome = EngineOutcome(
            response=report.response,
            counters=report.counters,
            measured_requests=report.response.count,
            warmup_requests=report.warmup_requests,
            final_time=0.0,
            samples=report.samples,
        )
    else:
        raise ConfigurationError(
            f"unknown engine {engine!r}; use 'fast' or 'process'"
        )

    if outcome.measured_requests == 0:
        raise ConfigurationError(
            f"warm-up consumed the whole trace for {config.describe()}; "
            "increase num_requests or lower cache_size"
        )

    return ExperimentResult(
        config=config,
        mean_response_time=outcome.response.mean,
        response_stats=outcome.response,
        hit_rate=outcome.counters.hit_rate,
        access_locations=outcome.counters.access_locations(layout.num_disks),
        measured_requests=outcome.measured_requests,
        warmup_requests=outcome.warmup_requests,
        schedule_period=schedule.period,
        schedule_utilisation=1.0 - schedule.empty_slots / schedule.period,
        wall_seconds=_time.perf_counter() - started,
        samples=outcome.samples,
    )


def sweep(
    configs: Iterable[ExperimentConfig],
    metric: Callable[[ExperimentResult], float] = (
        lambda result: result.mean_response_time
    ),
    engine: str = "fast",
) -> List[float]:
    """Run every configuration; return ``metric`` of each, in order."""
    return [metric(run_experiment(config, engine=engine)) for config in configs]


def sweep_results(
    configs: Iterable[ExperimentConfig],
    engine: str = "fast",
) -> List[ExperimentResult]:
    """Run every configuration; return the full results, in order."""
    return [run_experiment(config, engine=engine) for config in configs]
