"""Experiment entry points: thin wrappers over the execution layer.

``run_experiment`` and ``sweep``/``sweep_results`` keep their original
signatures, but the work now flows through :mod:`repro.exec`: each
configuration becomes a frozen :class:`~repro.exec.plan.RunPlan`, and an
:class:`~repro.exec.executor.Executor` runs the plans — serially by
default, or on a process pool when ``jobs > 1``.  Executor choice is a
pure wall-clock optimisation: results are byte-identical regardless of
worker count (see ``docs/ARCHITECTURE.md`` for the contract).

Observability (see :mod:`repro.obs` and ``docs/OBSERVABILITY.md``):
``run_experiment`` accepts a ``tracer`` (structured event records), a
``metrics`` registry (named counters/gauges snapshotted per run), and a
``manifest`` path (a JSON document pinning config hash, seed, schedule
and metric snapshot).  ``sweep``/``sweep_results`` add an optional
progress callback and sweep-manifest aggregation so bench scripts can
emit machine-readable trajectories.  Under parallel execution the
progress callback still fires in plan order and metrics are folded into
the registry in plan order (after execution), so snapshots match the
serial run exactly.  All of it is pay-for-use: with everything left at
``None`` the run is byte-identical to an unobserved one.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterable, List, Optional

from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.executor import Executor, resolve_executor
from repro.exec.plan import plan_for, plan_sweep
from repro.exec.run import (  # noqa: F401 - re-exported for compatibility
    ExperimentResult,
    _warmup_trace_allowance,
    execute_plan,
)
from repro.experiments.config import ExperimentConfig
from repro.obs.manifest import build_manifest, write_manifest, write_sweep_manifest
from repro.obs.profile import record_profile_metrics


def _merge_legacy_positionals(
    function_name: str,
    defaults: Dict[str, object],
    legacy: tuple,
    bound: Dict[str, object],
) -> Dict[str, object]:
    """One-release shim: map deprecated positional option values.

    The public entry points made their option arguments keyword-only in
    repro 1.1; this maps positional values onto the old parameter order,
    warns, and rejects values that were also passed by keyword.  The
    shim (and positional option passing with it) is removed in the next
    release.
    """
    names = list(defaults)
    if len(legacy) > len(names):
        raise TypeError(
            f"{function_name}() takes at most {len(names)} option "
            f"arguments ({len(legacy)} given)"
        )
    warnings.warn(
        f"passing {function_name}() options positionally is deprecated; "
        f"options ({', '.join(names[:len(legacy)])}) are keyword-only "
        "as of repro 1.1 and positional use will be removed in the next "
        "release",
        DeprecationWarning,
        stacklevel=3,
    )
    merged = dict(bound)
    for name, value in zip(names, legacy):
        if merged[name] is not defaults[name]:
            raise TypeError(
                f"{function_name}() got multiple values for argument "
                f"{name!r}"
            )
        merged[name] = value
    return merged


#: Old positional order of the entry points' options (shim bookkeeping).
_RUN_EXPERIMENT_DEFAULTS: Dict[str, object] = {
    "engine": "fast", "collect_responses": False, "tracer": None,
    "metrics": None, "manifest": None,
}


def run_experiment(
    config: ExperimentConfig,
    *legacy,
    engine: str = "fast",
    collect_responses: bool = False,
    tracer=None,
    metrics=None,
    manifest: Optional[str] = None,
    profile=None,
    monitors=None,
) -> ExperimentResult:
    """Run one fully-specified experiment and return its measurements.

    All options are keyword-only.  ``tracer`` attaches a
    :class:`repro.obs.trace.Tracer` to the engine (and, for the process
    engine, the kernel and channel) and wraps the cache in a
    :class:`~repro.cache.base.TracedCache`.  ``metrics`` fills a
    :class:`repro.obs.metrics.MetricsRegistry` with the run's headline
    counters and gauges.  ``manifest`` names a JSON file to write the
    run manifest to (also attached to the result).  ``profile`` attaches
    a :class:`repro.obs.profile.Profiler` (phase timings, engine
    counters, timing-tier attribution); ``monitors`` a
    :class:`repro.obs.monitor.MonitorSuite` checking the paper's
    invariants against the run's trace stream (strict mode raises
    :class:`~repro.errors.MonitorError`).  All default to off and leave
    the measured behaviour untouched.
    """
    if legacy:
        merged = _merge_legacy_positionals(
            "run_experiment", _RUN_EXPERIMENT_DEFAULTS, legacy,
            {"engine": engine, "collect_responses": collect_responses,
             "tracer": tracer, "metrics": metrics, "manifest": manifest},
        )
        engine = merged["engine"]
        collect_responses = merged["collect_responses"]
        tracer = merged["tracer"]
        metrics = merged["metrics"]
        manifest = merged["manifest"]
    plan = plan_for(config, engine=engine, collect_responses=collect_responses)
    result = execute_plan(plan, tracer=tracer, profile=profile,
                          monitors=monitors)
    profiling = profile is not None and profile.enabled
    if profiling:
        profile.start_phase("aggregate")
    if metrics is not None:
        _record_metrics(metrics, result)
        if profiling:
            record_profile_metrics(metrics, profile)
    if manifest is not None:
        result.manifest = build_manifest(result, metrics=metrics,
                                         tracer=tracer, profile=profile,
                                         monitors=monitors)
        write_manifest(result.manifest, manifest)
    if profiling:
        profile.stop_phase("aggregate")
    return result


def _record_metrics(metrics, result: ExperimentResult) -> None:
    """Fold one run's headline measurements into a metrics registry."""
    counters = result.response_stats
    metrics.counter("requests.measured").inc(result.measured_requests)
    metrics.counter("requests.warmup").inc(result.warmup_requests)
    hits = round(result.hit_rate * result.measured_requests)
    metrics.counter("cache.hits").inc(hits)
    metrics.counter("cache.misses").inc(result.measured_requests - hits)
    metrics.gauge("response.mean").set(counters.mean)
    metrics.gauge("response.max").set(
        counters.maximum if counters.count else 0.0
    )
    metrics.gauge("schedule.period").set(float(result.schedule_period))
    metrics.gauge("schedule.utilisation").set(result.schedule_utilisation)
    if result.channel_utilisation is not None:
        metrics.counter("client.retunes").inc(result.retunes)
        for index, value in enumerate(result.channel_utilisation):
            metrics.gauge(f"schedule.utilisation.channel.{index}").set(value)
    metrics.counter("runs").inc()


#: Signature of the ``sweep`` progress callback:
#: ``progress(completed, total, result)`` after each configuration.
ProgressCallback = Callable[[int, int, ExperimentResult], None]


def _mean_response_metric(result: ExperimentResult) -> float:
    """Default ``sweep`` metric: the run's mean response time."""
    return result.mean_response_time


_SWEEP_DEFAULTS: Dict[str, object] = {
    "metric": _mean_response_metric, "engine": "fast", "progress": None,
    "manifest": None, "jobs": 1,
}


def sweep(
    configs: Iterable[ExperimentConfig],
    *legacy,
    metric: Callable[[ExperimentResult], float] = _mean_response_metric,
    engine: str = "fast",
    progress: Optional[ProgressCallback] = None,
    manifest: Optional[str] = None,
    jobs: int = 1,
) -> List[float]:
    """Run every configuration; return ``metric`` of each, in order."""
    if legacy:
        merged = _merge_legacy_positionals(
            "sweep", _SWEEP_DEFAULTS, legacy,
            {"metric": metric, "engine": engine, "progress": progress,
             "manifest": manifest, "jobs": jobs},
        )
        metric = merged["metric"]
        engine = merged["engine"]
        progress = merged["progress"]
        manifest = merged["manifest"]
        jobs = merged["jobs"]
    return [
        metric(result)
        for result in sweep_results(
            configs, engine=engine, progress=progress, manifest=manifest,
            jobs=jobs,
        )
    ]


_SWEEP_RESULTS_DEFAULTS: Dict[str, object] = {
    "engine": "fast", "progress": None, "manifest": None, "tracer": None,
    "metrics": None, "jobs": 1, "collect_responses": False,
    "executor": None, "checkpoint": None,
}


def sweep_results(
    configs: Iterable[ExperimentConfig],
    *legacy,
    engine: str = "fast",
    progress: Optional[ProgressCallback] = None,
    manifest: Optional[str] = None,
    tracer=None,
    metrics=None,
    jobs: int = 1,
    collect_responses: bool = False,
    executor: Optional[Executor] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    profile=None,
    monitors=None,
) -> List[ExperimentResult]:
    """Run every configuration; return the full results, in order.

    ``progress(completed, total, result)`` fires after each run, in
    plan order even under parallel execution; ``manifest`` names a JSON
    file that receives the aggregated sweep manifest (one per-run
    record per configuration — the ``BENCH_*.json``-style trajectory).
    ``tracer``/``metrics`` observe every run; an *enabled* tracer forces
    in-process serial execution so trace records stay in simulation
    order.  ``jobs`` selects the worker count (``executor`` overrides it
    with an explicit strategy), and ``checkpoint`` attaches a
    :class:`~repro.exec.checkpoint.SweepCheckpoint` journal so an
    interrupted sweep resumes without re-running finished points.

    Metrics are folded into the registry in plan order after execution —
    counters commute and gauges keep last-plan-wins semantics, so the
    final snapshot matches a serial in-run recording exactly.

    ``profile`` attaches a :class:`repro.obs.profile.Profiler` and
    ``monitors`` a :class:`repro.obs.monitor.MonitorSuite`; either being
    *enabled* forces in-process serial execution (like an enabled
    tracer), because both accumulate state a worker process could not
    ship back.  With a profiler attached the sweep manifest also embeds
    the executor's build-cache statistics (schedule reuse and
    timing-tier dispatch counts).
    """
    if legacy:
        merged = _merge_legacy_positionals(
            "sweep_results", _SWEEP_RESULTS_DEFAULTS, legacy,
            {"engine": engine, "progress": progress, "manifest": manifest,
             "tracer": tracer, "metrics": metrics, "jobs": jobs,
             "collect_responses": collect_responses, "executor": executor,
             "checkpoint": checkpoint},
        )
        engine = merged["engine"]
        progress = merged["progress"]
        manifest = merged["manifest"]
        tracer = merged["tracer"]
        metrics = merged["metrics"]
        jobs = merged["jobs"]
        collect_responses = merged["collect_responses"]
        executor = merged["executor"]
        checkpoint = merged["checkpoint"]
    plans = plan_sweep(
        list(configs), engine=engine, collect_responses=collect_responses
    )
    runner = executor if executor is not None else resolve_executor(jobs)
    results = runner.run(
        plans, tracer=tracer, progress=progress, checkpoint=checkpoint,
        profile=profile, monitors=monitors,
    )
    profiling = profile is not None and profile.enabled
    if profiling:
        profile.start_phase("aggregate")
    if metrics is not None:
        for result in results:
            _record_metrics(metrics, result)
        if profiling:
            record_profile_metrics(metrics, profile)
    if manifest is not None:
        builds = getattr(runner, "last_builds", None)
        write_sweep_manifest(
            results, manifest, metrics=metrics, tracer=tracer,
            profile=profile, monitors=monitors,
            build_cache=None if builds is None else builds.timing_stats(),
        )
    if profiling:
        profile.stop_phase("aggregate")
    return results
