"""Tabulation of figure data for the bench harness and examples.

The paper presents line plots; the benches print the same information as
aligned ascii tables (one row per x value, one column per curve) so that
"who wins, by roughly what factor, where the crossovers fall" can be read
directly from the bench output, plus a CSV writer for downstream
plotting.
"""

from __future__ import annotations

import csv
import io
from typing import Optional

from repro.experiments.figures import FigureData


def format_table(
    data: FigureData,
    *, float_format: str = "{:.2f}",
    x_width: int = 0,
    min_column: int = 12,
) -> str:
    """Render a :class:`FigureData` as an aligned ascii table.

    Column widths adapt to the longest series name and the x labels, so
    long curve names (e.g. ``D4<300,1200,3500>``) never collide.
    """
    names = list(data.series)
    x_width = max(
        x_width,
        len(data.x_label) + 2,
        *(len(str(x)) + 2 for x in data.x_values),
    )
    widths = {name: max(min_column, len(name) + 2) for name in names}
    out = io.StringIO()
    out.write(f"{data.figure}: {data.title}\n")
    header = f"{data.x_label:<{x_width}}" + "".join(
        f"{name:>{widths[name]}}" for name in names
    )
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for x, row in data.row_iter():
        cells = "".join(
            float_format.format(row[name]).rjust(widths[name])
            for name in names
        )
        out.write(f"{str(x):<{x_width}}" + cells + "\n")
    if data.notes:
        out.write(f"note: {data.notes}\n")
    return out.getvalue()


def write_csv(data: FigureData, path: str) -> None:
    """Write the series to ``path`` as CSV (x column + one per curve)."""
    names = list(data.series)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([data.x_label, *names])
        for x, row in data.row_iter():
            writer.writerow([x, *(row[name] for name in names)])


def csv_string(data: FigureData) -> str:
    """The CSV rendering as a string (used by tests)."""
    names = list(data.series)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([data.x_label, *names])
    for x, row in data.row_iter():
        writer.writerow([x, *(row[name] for name in names)])
    return out.getvalue()


def ascii_chart(
    data: FigureData,
    *, height: int = 12,
    width: int = 64,
) -> str:
    """Render the series as a monochrome ASCII line chart.

    Each curve is drawn with its own marker (the first letter of its
    name, or a digit on collision); x positions map the series' indices
    across ``width`` columns, y is linear from 0 to the maximum value.
    Good enough to eyeball the paper's crossovers in bench output.
    """
    if height < 3 or width < 8:
        raise ValueError("chart needs height >= 3 and width >= 8")
    numeric_series = {
        name: values
        for name, values in data.series.items()
        if values and all(isinstance(v, (int, float)) for v in values)
    }
    if not numeric_series:
        return "(no numeric series to chart)"
    top = max(max(values) for values in numeric_series.values())
    if top <= 0:
        top = 1.0
    points = max(len(values) for values in numeric_series.values())

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    used = set()
    for index, name in enumerate(numeric_series):
        marker = name.strip()[:1].upper() or "?"
        if marker in used:
            marker = str(index % 10)
        used.add(marker)
        markers[name] = marker

    for name, values in numeric_series.items():
        marker = markers[name]
        for position, value in enumerate(values):
            column = (
                0 if points == 1
                else round(position * (width - 1) / (points - 1))
            )
            row = height - 1 - round(value / top * (height - 1))
            row = min(height - 1, max(0, row))
            grid[row][column] = marker

    out = io.StringIO()
    label = f"{top:.0f} bu" if top >= 10 else f"{top:.2f}"
    out.write(f"{data.figure} — ascii view (top = {label})\n")
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    legend = "  ".join(
        f"{marker}={name}" for name, marker in markers.items()
    )
    out.write(f"x: {data.x_label} ({data.x_values[0]} .. {data.x_values[-1]})"
              f"   {legend}\n")
    return out.getvalue()


def summarize_crossovers(
    data: FigureData,
    reference: float,
    series_name: Optional[str] = None,
) -> str:
    """Describe where each curve crosses a reference level.

    Used by the noise-sensitivity benches to report the paper's
    qualitative claim ("P crosses the flat disk near 45% noise") from the
    measured series.
    """
    lines = []
    names = [series_name] if series_name else list(data.series)
    for name in names:
        values = data.series[name]
        crossing = None
        for x, value in zip(data.x_values, values):
            if value > reference:
                crossing = x
                break
        if crossing is None:
            lines.append(f"{name}: stays below {reference:.0f}")
        else:
            lines.append(f"{name}: crosses {reference:.0f} at {crossing}")
    return "\n".join(lines)
