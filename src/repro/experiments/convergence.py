"""Run-length control: measure until the response series is steady.

The paper ran "15,000 or more client page requests (until steady
state)".  :func:`run_until_converged` implements the *or more*: it keeps
extending the measured phase in chunks until recent chunk means
stabilise (the two halves of a sliding window of chunk means agree
within a tolerance), or a request cap is hit.

Useful when the fixed ``steady_state_factor`` heuristic is either
wasteful (fast-mixing configurations) or insufficient (slow estimators
at extreme parameters); the diagnostics say which happened.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import FastEngine
from repro.sim.stats import WindowedSeries
from repro.workload.trace import generate_trace


@dataclass
class ConvergedResult:
    """Outcome of a convergence-controlled run."""

    mean_response_time: float
    requests_measured: int
    converged: bool
    chunks_run: int
    window_mean: float

    def summary(self) -> str:
        """One-line report."""
        status = "converged" if self.converged else "CAP HIT (not converged)"
        return (
            f"{status}: mean={self.mean_response_time:.1f} bu over "
            f"{self.requests_measured} requests "
            f"(recent-window mean {self.window_mean:.1f})"
        )


def run_until_converged(
    config: ExperimentConfig,
    *, chunk: int = 5_000,
    window_chunks: int = 6,
    rtol: float = 0.03,
    max_requests: int = 200_000,
) -> ConvergedResult:
    """Run ``config`` in chunks until chunk-mean response stabilises.

    The cache warms exactly as in
    :func:`~repro.experiments.runner.run_experiment` (fill + the
    config's steady-state shake-out); measurement then proceeds chunk by
    chunk, and after each chunk the sliding window of the last
    ``window_chunks`` chunk means is tested: its two halves must agree
    within ``rtol``.
    """
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    if window_chunks < 2:
        raise ConfigurationError(
            f"window_chunks must be >= 2, got {window_chunks}"
        )
    if max_requests < chunk:
        raise ConfigurationError("max_requests must be at least one chunk")

    layout = config.build_layout()
    schedule = config.build_schedule(layout)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    cache = config.build_policy(schedule, mapping, distribution, layout)
    engine = FastEngine(
        schedule=schedule,
        mapping=mapping,
        layout=layout,
        cache=cache,
        think_time=config.think_time,
    )
    request_stream = streams.stream("requests")

    # Warm-up: the engine's own rule (cache fill + shake-out) on a
    # throwaway trace, so the measured chunks start at steady state.
    if config.cache_size > 1:
        warm_allowance = max(2_000, 6 * config.cache_size) + config.extra_warmup
        warm_trace = generate_trace(distribution, warm_allowance, request_stream)
        engine.run_trace(
            warm_trace,
            warmup_requests=None,
            extra_warmup=config.extra_warmup,
        )

    series = WindowedSeries(window=window_chunks)
    weighted_sum = 0.0
    measured = 0
    chunks = 0
    converged = False
    while measured < max_requests:
        trace = generate_trace(distribution, chunk, request_stream)
        outcome = engine.run_trace(trace, warmup_requests=0)
        chunks += 1
        weighted_sum += outcome.response.mean * outcome.response.count
        measured += outcome.response.count
        series.add(outcome.response.mean)
        if series.is_converged(rtol=rtol):
            converged = True
            break

    tail = series.tail
    return ConvergedResult(
        mean_response_time=weighted_sum / measured if measured else 0.0,
        requests_measured=measured,
        converged=converged,
        chunks_run=chunks,
        window_mean=sum(tail) / len(tail) if tail else 0.0,
    )
